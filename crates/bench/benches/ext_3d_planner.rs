//! Extension study (paper §2.2): composing MeshSlice 2D TP with data and
//! pipeline parallelism into a 3D training cluster. Reproduces the
//! intro's argument that wide 2D TP shrinks per-chip DP traffic and
//! pipeline depth, and shows the planner's chosen composition.

use meshslice::llm::LlmConfig;
use meshslice::memory::dp_traffic_per_chip;
use meshslice::parallelism::{plan_cluster, simulate_plan, PlanOptions};
use meshslice::report::Table;
use meshslice_bench::{banner, quick_mode, sim_config};

fn main() {
    let cfg = sim_config();
    let model = LlmConfig::gpt3();

    banner(
        "Extension (§2.2)",
        "per-chip DP gradient traffic vs TP degree (GPT-3, 128 replicas)",
    );
    let mut t = Table::new(vec![
        "TP degree".into(),
        "DP traffic/chip".into(),
        "vs 8-way".into(),
    ]);
    let base = dp_traffic_per_chip(&model, 8, 128, 2);
    for tp in [8usize, 32, 128, 256] {
        let traffic = dp_traffic_per_chip(&model, tp, 128, 2);
        t.row(vec![
            tp.to_string(),
            format!("{:.0} MB", traffic as f64 / 1e6),
            format!("{:.0}x smaller", base as f64 / traffic as f64),
        ]);
    }
    println!("{t}");
    println!("(paper §2.2: 128-way 2D TP -> 16x smaller per-chip DP traffic)");

    let chips = if quick_mode() { 64 } else { 512 };
    banner(
        "Extension",
        &format!("3D cluster planner: best DP x PP x 2D-TP splits of {chips} chips (GPT-3)"),
    );
    let plans = plan_cluster(
        &model,
        chips,
        chips / 2,
        2048,
        256,
        &cfg,
        &PlanOptions::default(),
    );
    for plan in plans.iter().take(8) {
        println!("  {plan}");
    }
    if plans.is_empty() {
        println!("  (no feasible composition at this scale)");
        return;
    }
    println!();
    println!("validating the top compositions with the event-driven simulator:");
    let opt = PlanOptions::default();
    for plan in plans.iter().take(3) {
        if let Some(t) = simulate_plan(&model, plan, chips / 2, 2048, &cfg, &opt) {
            println!(
                "  DP{} x PP{} x TP{}: estimated {:.1} ms, simulated {:.1} ms",
                plan.dp,
                plan.pp,
                plan.tp_mesh,
                plan.step_time.as_secs() * 1e3,
                t.as_secs() * 1e3
            );
        }
    }
}
