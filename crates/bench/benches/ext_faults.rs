//! Extension study: straggler-severity × slice-count sensitivity of the
//! MeshSlice FC block under seeded fault injection.
//!
//! For each straggler severity, one chip (location drawn per seed) runs
//! its compute that many times slower; every slice count is scored by the
//! p95 simulated makespan across the draws. The grid shows whether the
//! fault-free optimal slice count stays optimal as the cluster gets
//! noisier — i.e. how robust the autotuner's nominal choice is.

use meshslice::autotuner::Autotuner;
use meshslice::experiments::straggler_sensitivity;
use meshslice::llm::TrainingSetup;
use meshslice::report::Table;
use meshslice_bench::{banner, models, quick_mode, save_artifact, sim_config};

fn main() {
    let cfg = sim_config();
    let (chips, seeds) = if quick_mode() { (16, 2) } else { (64, 8) };
    let severities = [1.0, 1.25, 1.5, 2.0, 3.0];
    let s_values = [1usize, 2, 4, 8];
    for model in models() {
        banner(
            "Extension (faults)",
            &format!(
                "straggler sensitivity of the FC block, {chips} chips, {seeds} seeds — {}",
                model.name
            ),
        );
        let tuner = Autotuner::new(cfg.clone());
        let mesh = tuner
            .tune(&model, TrainingSetup::weak_scaling(chips), chips)
            .mesh_shape;
        let grid = straggler_sensitivity(&model, mesh, &s_values, &severities, seeds, 42, &cfg);
        let mut header = vec!["slowdown".to_string()];
        header.extend(s_values.iter().map(|s| format!("S={s} p95 (ms)")));
        let mut table = Table::new(header);
        for row in grid.chunks(s_values.len()) {
            let best = row
                .iter()
                .min_by(|a, b| a.p95.as_secs().total_cmp(&b.p95.as_secs()))
                .map(|p| p.requested_s);
            let mut cells = vec![format!("{:.2}", row[0].severity)];
            cells.extend(row.iter().map(|p| {
                let mark = if Some(p.requested_s) == best { "*" } else { "" };
                format!("{:.3}{mark}", p.p95.as_secs() * 1e3)
            }));
            table.row(cells);
        }
        println!("mesh {mesh} (nominal autotuner choice); '*' = best S per row");
        println!("{table}");
        save_artifact(
            &table,
            &format!("ext_faults_{}", model.name.to_ascii_lowercase()),
        );
    }
}
