//! Ablation: per-pass serial execution (the paper's evaluation model —
//! each FC GeMM finishes before the next starts) vs a *fused* block
//! program where MeshSlice's slicing and partial collectives prefetch
//! across pass boundaries while the partial GeMMs stay in data-flow
//! order. Quantifies how much of MeshSlice's remaining prologue/epilogue
//! exposure cross-pass pipelining could recover.

use meshslice::llm::TrainingSetup;
use meshslice::report::{pct, Table};
use meshslice::training::{simulate_fc_step, simulate_fused_block, Algorithm};
use meshslice_bench::{banner, models, scale_chips, sim_config, WEAK_SCALING_CHIPS};

fn main() {
    let cfg = sim_config();
    for model in models() {
        banner(
            "Ablation",
            &format!(
                "serial passes vs fused cross-pass pipelining — {}",
                model.name
            ),
        );
        let mut table = Table::new(vec![
            "chips".into(),
            "serial util".into(),
            "fused util".into(),
            "fused speedup".into(),
        ]);
        for &chips in scale_chips(&WEAK_SCALING_CHIPS).iter() {
            let setup = TrainingSetup::weak_scaling(chips);
            let serial = simulate_fc_step(&model, setup, chips, Algorithm::MeshSlice, &cfg);
            let fused = simulate_fused_block(&model, setup, chips, &cfg);
            if let (Some(serial), Some(fused)) = (serial, fused) {
                table.row(vec![
                    chips.to_string(),
                    pct(serial.utilization()),
                    pct(fused.utilization()),
                    format!(
                        "{:.1}%",
                        (serial.block_time().as_secs() / fused.block_time().as_secs() - 1.0)
                            * 100.0
                    ),
                ]);
            }
        }
        println!("{table}");
    }
    println!("(fused = one program for all 12 pass GeMMs of a block; comm prefetches");
    println!(" across pass boundaries, GeMMs stay in data-flow order)");
}
