//! Extension study (paper §6, future work): MeshSlice on a *logical* 2D
//! mesh mapped onto a switched GPU-style fabric, where AG/RdS collectives
//! contend for bisection bandwidth instead of owning dedicated torus
//! links.
//!
//! The paper predicts MeshSlice "becomes less efficient because AG/RdS
//! operations will incur network contention that does not exist in
//! physical meshes" — this harness quantifies that with the simulator's
//! shared-fabric fluid model.

use meshslice::experiments::logical_mesh_study;
use meshslice::report::{pct, Table};
use meshslice_bench::{banner, models, scale_cluster, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = scale_cluster();
    for model in models() {
        banner(
            "Extension (§6)",
            &format!(
                "MeshSlice on a logical mesh over a shared fabric, {chips} chips — {}",
                model.name
            ),
        );
        let rows = logical_mesh_study(&model, chips, &[1.0, 0.5, 0.25, 0.125], &cfg);
        let mut table = Table::new(vec!["network".into(), "FC utilization".into()]);
        for r in &rows {
            table.row(vec![r.network.clone(), pct(r.utilization)]);
        }
        println!("{table}");
    }
    println!("(the autotuner still assumes contention-free rings; §6 notes it");
    println!(" would need a contention-aware cost model on logical meshes)");
}
