//! Extension study (paper §6): MeshSlice for autoregressive *decode*
//! inference. Each decode step's FC GeMMs have M = batch rows, so they
//! are memory-bound (full weight shards stream from HBM every step) and
//! the fixed per-operation launch/sync latencies dominate communication —
//! the regime where the paper expects MeshSlice and its autotuner to need
//! adaptation.

use meshslice::experiments::inference_study;
use meshslice::report::Table;
use meshslice_bench::{banner, models, quick_mode, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = if quick_mode() { 16 } else { 64 };
    for model in models() {
        banner(
            "Extension (§6)",
            &format!(
                "decode latency per transformer block on {chips} chips — {}",
                model.name
            ),
        );
        let rows = inference_study(&model, chips, &[32, 128, 512], &cfg);
        let mut table = Table::new(vec![
            "batch".into(),
            "MeshSlice".into(),
            "Collective".into(),
            "Wang".into(),
        ]);
        for r in &rows {
            let mut cells = vec![r.batch.to_string()];
            cells.extend(r.block_latency.iter().map(|(_, t)| {
                t.map(|t| format!("{:.1} us", t * 1e6))
                    .unwrap_or_else(|| "-".into())
            }));
            table.row(cells);
        }
        println!("{table}");
    }
    println!("(decode is weight-streaming-bound: latencies barely grow with batch,");
    println!(" and overlap gains shrink because compute per step is tiny)");
}
