//! Extension study (paper §6): MeshSlice for autoregressive inference,
//! priced per phase. *Prefill* runs the whole prompt in one pass
//! (M = batch × prompt_len), so it behaves like a training forward pass;
//! each *decode* step's FC GeMMs have M = batch rows, so they are
//! memory-bound (full weight shards stream from HBM every step) and the
//! fixed per-operation launch/sync latencies dominate communication —
//! the regime where the paper expects MeshSlice and its autotuner to need
//! adaptation.

use meshslice::experiments::{inference_study, DEFAULT_PROMPT_LEN};
use meshslice::report::Table;
use meshslice_bench::{banner, models, quick_mode, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = if quick_mode() { 16 } else { 64 };
    for model in models() {
        banner(
            "Extension (§6)",
            &format!(
                "prefill & decode latency per transformer block on {chips} chips — {}",
                model.name
            ),
        );
        let rows = inference_study(&model, chips, &[32, 128, 512], DEFAULT_PROMPT_LEN, &cfg);
        let fmt = |lat: &Option<f64>| {
            lat.map(|t| format!("{:.1} us", t * 1e6))
                .unwrap_or_else(|| "-".into())
        };
        let mut table = Table::new(vec![
            "batch".into(),
            "phase".into(),
            "MeshSlice".into(),
            "Collective".into(),
            "Wang".into(),
        ]);
        for r in &rows {
            let mut prefill = vec![r.batch.to_string(), "prefill".into()];
            prefill.extend(r.prefill_latency.iter().map(|(_, t)| fmt(t)));
            table.row(prefill);
            let mut decode = vec![r.batch.to_string(), "decode".into()];
            decode.extend(r.block_latency.iter().map(|(_, t)| fmt(t)));
            table.row(decode);
        }
        println!("{table}");
    }
    println!("(prefill at {DEFAULT_PROMPT_LEN} prompt tokens is compute-bound and scales with");
    println!(" batch; decode is weight-streaming-bound: latencies barely grow with batch,");
    println!(" and overlap gains shrink because compute per step is tiny)");
}
