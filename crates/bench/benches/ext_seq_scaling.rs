//! Extension study: sequence-length scaling. Longer contexts grow the
//! token count (and with it the activation traffic of the 2D GeMMs)
//! linearly while the weights stay fixed, and grow the non-FC attention
//! work quadratically — shifting where the communication bottleneck sits
//! and which mesh shape the autotuner picks.

use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::report::{pct, Table};
use meshslice::training::{end_to_end, simulate_fc_step, Algorithm};
use meshslice_bench::{banner, quick_mode, save_artifact, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = if quick_mode() { 64 } else { 256 };
    let model = LlmConfig::gpt3();
    banner(
        "Extension",
        &format!("sequence-length scaling of MeshSlice vs Wang on {chips} chips — GPT-3"),
    );
    let mut table = Table::new(vec![
        "seq len".into(),
        "mesh".into(),
        "MeshSlice FC util".into(),
        "Wang FC util".into(),
        "FC speedup".into(),
        "non-FC share".into(),
    ]);
    for seq_len in [512usize, 2048, 8192, 32768] {
        // Keep tokens per step constant so per-chip compute is comparable:
        // batch shrinks as the context grows.
        let batch = (chips / 2) * 2048 / seq_len;
        if batch == 0 {
            continue;
        }
        let setup = TrainingSetup { batch, seq_len };
        let ms = simulate_fc_step(&model, setup, chips, Algorithm::MeshSlice, &cfg);
        let wang = simulate_fc_step(&model, setup, chips, Algorithm::Wang, &cfg);
        let (Some(ms), Some(wang)) = (ms, wang) else {
            continue;
        };
        let e2e = end_to_end(&model, setup, chips, &ms, &cfg);
        let non_fc_share =
            e2e.non_fc_block.as_secs() / (e2e.fc_block.as_secs() + e2e.non_fc_block.as_secs());
        table.row(vec![
            seq_len.to_string(),
            ms.mesh_shape.to_string(),
            pct(ms.utilization()),
            pct(wang.utilization()),
            format!(
                "{:.1}%",
                (wang.block_time().as_secs() / ms.block_time().as_secs() - 1.0) * 100.0
            ),
            pct(non_fc_share),
        ]);
    }
    println!("{table}");
    save_artifact(&table, "ext_seq_scaling_gpt-3");
    println!("(tokens per step held constant; at long contexts the quadratic");
    println!(" attention work dominates and FC-layer gains matter less end to end)");
}
