//! Serving fleet harness: races the exhaustive serving tuner against the
//! cached fast path and the successive-halving screened path (gating on
//! identical winners and a >=3x full-scale speedup), sweeps a three-point
//! offered-load ladder through the continuous-batching fleet simulation
//! (plus one chip-death rung at the middle load), drives a long shared
//! trace through the shared-cost-table fleet loop, gates on thread-count
//! determinism, and writes the results to `BENCH_serving.json` at the
//! workspace root.
//!
//! `MESHSLICE_BENCH_SCALE=quick` shrinks the workload (16 chips, short
//! traces) for smoke runs; the committed artifact uses the full workload
//! (GPT-3, 64 chips, three load points, a 100k-request long trace).

use std::sync::Arc;
use std::time::Instant;

use meshslice::autotuner::Autotuner;
use meshslice::llm::LlmConfig;
use meshslice::par;
use meshslice_bench::{banner, quick_mode, sim_config};
use meshslice_faults::FailureSpec;
use meshslice_recovery::RepairModel;
use meshslice_serving::{
    simulate_fleet, simulate_fleet_threads, simulate_fleet_traced, ArrivalSpec, ChaosSpec,
    ChipDeath, CostProfile, CostTableCache, Request, RouterPolicy, ScreenPolicy, ServingSpec,
    ServingTuning, ShedPolicy, TuneMode,
};
use meshslice_telemetry::Json;

struct Workload {
    model: LlmConfig,
    chips: usize,
    replicas: usize,
    qps_points: Vec<f64>,
    requests: usize,
    tune_requests: usize,
    slo_p99_ttft_ms: f64,
    seed: u64,
}

fn workload() -> Workload {
    // GPT-3 weights (~350 GB bf16) need at least 16 TPUv4 chips per
    // replica, so the replica count scales with the pool.
    let (chips, replicas, qps_points, requests, tune_requests) = if quick_mode() {
        (16, 1, vec![5.0, 20.0, 80.0], 60, 24)
    } else {
        (64, 4, vec![5.0, 20.0, 80.0], 300, 64)
    };
    Workload {
        model: LlmConfig::gpt3(),
        chips,
        replicas,
        qps_points,
        requests,
        tune_requests,
        slo_p99_ttft_ms: 500.0,
        seed: 7,
    }
}

/// Times one closure, returning (result, seconds).
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

fn main() {
    let w = workload();
    let scale = if quick_mode() { "quick" } else { "full" };
    banner(
        "Serving",
        &format!(
            "offered load -> goodput/latency, {} on {} chips x {} replicas ({scale})",
            w.model.name, w.chips, w.replicas
        ),
    );
    let cfg = sim_config();
    let tuner = Autotuner::new(cfg.clone());
    let threads = par::threads().max(2);

    // Tuner-speed rung: race the exhaustive reference (per-candidate
    // table builds, per-candidate traces) against the cached fast path
    // and the screened path at the middle load point. The fast path must
    // reproduce the exhaustive candidate list bit for bit, at any thread
    // count; screening must keep the exhaustive winner.
    let mid_qps = w.qps_points[w.qps_points.len() / 2];
    let tune = |mode: TuneMode, th: usize| {
        tuner
            .tune_serving_mode(
                &w.model,
                w.chips,
                Some(w.replicas),
                &ArrivalSpec::poisson(mid_qps),
                w.slo_p99_ttft_ms,
                w.tune_requests,
                w.seed,
                mode,
                th,
            )
            .expect("GPT-3 fits the per-replica meshes")
    };
    // Min-of-reps on every path filters scheduler noise out of the
    // speedup gate, same as the tracing-overhead gate below.
    let tune_reps = 3;
    let race = |mode: TuneMode| {
        let mut best_secs = f64::INFINITY;
        let mut plan = None;
        for _ in 0..tune_reps {
            let (p, secs) = timed(|| tune(mode, threads));
            best_secs = best_secs.min(secs);
            plan = Some(p);
        }
        (plan.expect("at least one rep"), best_secs)
    };
    let (exhaustive, tune_secs_exhaustive) = race(TuneMode::Exhaustive);
    let (fast, tune_secs_fast) = race(TuneMode::Fast);
    let policy = ScreenPolicy::auto(w.tune_requests);
    let (screened, tune_secs_screened) = race(TuneMode::Screened(policy));
    if fast.candidates != exhaustive.candidates {
        eprintln!("FAIL: fast tuner path diverges from the exhaustive candidate list");
        std::process::exit(1);
    }
    if tune(TuneMode::Fast, 1).candidates != fast.candidates {
        eprintln!("FAIL: serial fast tune diverges from parallel fast tune");
        std::process::exit(1);
    }
    if screened.best() != exhaustive.best() {
        eprintln!("FAIL: screened tuner picked a different winner than the exhaustive path");
        std::process::exit(1);
    }
    let tune_speedup = tune_secs_exhaustive / tune_secs_fast;
    let screened_speedup = tune_secs_exhaustive / tune_secs_screened;
    let grid_candidates = screened.candidates.len() + screened.screened_out;
    println!(
        "tuner: exhaustive {tune_secs_exhaustive:.1} s | fast {tune_secs_fast:.1} s \
         ({tune_speedup:.1}x) | screened {tune_secs_screened:.1} s ({screened_speedup:.1}x, \
         {} of {grid_candidates} candidates screened out) — identical winner",
        screened.screened_out
    );
    if !quick_mode() && tune_speedup < 3.0 {
        eprintln!("FAIL: fast tuner speedup {tune_speedup:.2}x is below the 3.0x budget");
        std::process::exit(1);
    }
    let tune_secs = tune_secs_fast;
    let best = *fast.best();
    println!(
        "tuned layout: mesh {} S={} max_batch={} ({tune_secs:.1} s, {threads} threads)",
        best.mesh, best.slice_count, best.max_batch
    );

    let spec_at = |qps: f64, failure: Option<ChipDeath>| ServingSpec {
        slice_count: best.slice_count,
        max_batch: best.max_batch,
        num_requests: w.requests,
        seed: w.seed,
        slo_p99_ttft_ms: w.slo_p99_ttft_ms,
        failure,
        ..ServingSpec::new(w.model.clone(), best.mesh, w.replicas, qps)
    };

    let rung_json = |qps: f64, report: &meshslice_serving::FleetReport, secs: f64| {
        Json::obj(vec![
            ("qps", Json::Num(qps)),
            ("completed", Json::Num(report.completed as f64)),
            ("rejected", Json::Num(report.rejected as f64)),
            ("preemptions", Json::Num(report.preemptions as f64)),
            ("failovers", Json::Num(report.failovers as f64)),
            ("ttft_p50_ms", Json::Num(report.ttft.p50 * 1e3)),
            ("ttft_p99_ms", Json::Num(report.ttft.p99 * 1e3)),
            ("tpot_p50_ms", Json::Num(report.tpot.p50 * 1e3)),
            ("tpot_p99_ms", Json::Num(report.tpot.p99 * 1e3)),
            (
                "goodput_tokens_per_chip_s",
                Json::Num(report.goodput_tokens_per_chip_s),
            ),
            ("slo_attained", Json::Bool(report.slo_attained)),
            ("slo_attainment", Json::Num(report.slo_attainment)),
            ("sim_secs", Json::Num(secs)),
        ])
    };

    let mut rungs = Vec::new();
    for &qps in &w.qps_points {
        let spec = spec_at(qps, None);
        let (serial, serial_secs) = timed(|| simulate_fleet(&spec, &cfg).expect("fleet simulates"));
        let parallel =
            simulate_fleet_threads(&spec, &cfg, threads).expect("parallel fleet simulates");
        if serial != parallel {
            eprintln!("FAIL: parallel fleet sim diverges from serial at {qps} qps");
            std::process::exit(1);
        }
        println!(
            "qps {qps:>6.1}: goodput {:>7.2} tok/chip/s | TTFT p50 {:>9.1} ms p99 {:>9.1} ms | \
             TPOT p50 {:>6.1} ms | SLO {} ({serial_secs:.1} s)",
            serial.goodput_tokens_per_chip_s,
            serial.ttft.p50 * 1e3,
            serial.ttft.p99 * 1e3,
            serial.tpot.p50 * 1e3,
            if serial.slo_attained { "MET" } else { "missed" },
        );
        rungs.push(rung_json(qps, &serial, serial_secs));
    }
    println!("determinism: serial == parallel reports at every rung (bit for bit)");

    // Tracing-overhead gate: recording the full request-lifecycle event
    // stream must cost at most 10% wall clock over the untraced loop,
    // and must leave the report bit-for-bit unchanged. Min-of-reps on
    // each side filters scheduler noise.
    let overhead_spec = spec_at(mid_qps, None);
    let reps = 3;
    let (mut untraced_best, mut traced_best) = (f64::INFINITY, f64::INFINITY);
    let mut trace_events = 0usize;
    for _ in 0..reps {
        let (untraced, plain_secs) =
            timed(|| simulate_fleet_threads(&overhead_spec, &cfg, threads).expect("fleet"));
        let ((traced, trace), traced_secs) =
            timed(|| simulate_fleet_traced(&overhead_spec, &cfg, threads).expect("fleet"));
        if untraced != traced {
            eprintln!("FAIL: tracing perturbed the report at {mid_qps} qps");
            std::process::exit(1);
        }
        untraced_best = untraced_best.min(plain_secs);
        traced_best = traced_best.min(traced_secs);
        trace_events = trace.len();
    }
    let trace_overhead_ratio = traced_best / untraced_best;
    println!(
        "trace overhead: untraced {untraced_best:.2} s vs traced {traced_best:.2} s \
         ({trace_overhead_ratio:.3}x, {trace_events} events)"
    );
    if trace_overhead_ratio > 1.10 {
        eprintln!("FAIL: tracing overhead {trace_overhead_ratio:.3}x exceeds the 1.10x budget");
        std::process::exit(1);
    }

    // One rung through a chip death at the middle load: serving must
    // complete with degraded-but-nonzero goodput.
    let death_spec = spec_at(
        mid_qps,
        Some(ChipDeath {
            replica: 0,
            at_secs: 2.0,
        }),
    );
    let (death, death_secs) =
        timed(|| simulate_fleet_threads(&death_spec, &cfg, threads).expect("fleet survives"));
    if death.failovers != 1 || death.goodput_tokens_per_chip_s <= 0.0 {
        eprintln!("FAIL: chip death rung must fail over once and keep nonzero goodput");
        std::process::exit(1);
    }
    println!(
        "chip death at {mid_qps} qps: goodput {:.2} tok/chip/s, {} preemptions ({death_secs:.1} s)",
        death.goodput_tokens_per_chip_s, death.preemptions
    );

    // Chaos rung: seeded multi-death chaos with failover routing, load
    // shedding, and repair all armed at the middle load. The MTBF is
    // sized so the fleet expects ~4 deaths over the arrival span; the
    // gates are the PR-9 resilience invariants — at least two deaths
    // fire, every request reaches exactly one terminal outcome, goodput
    // stays nonzero, and the report is bit-identical at any thread
    // count.
    let span = w.requests as f64 / mid_qps;
    let chaos_mtbf = span * w.chips as f64 / 4.0;
    let mut chaos_spec = spec_at(mid_qps, None);
    chaos_spec.chaos = Some(
        ChaosSpec::new(
            FailureSpec::chip_mtbf(chaos_mtbf, span),
            w.seed.wrapping_add(11),
        )
        .with_repair(RepairModel::exponential(span / 4.0)),
    );
    chaos_spec.router = Some(RouterPolicy::for_slo(w.slo_p99_ttft_ms / 1e3));
    chaos_spec.shed =
        Some(ShedPolicy::for_queue_depth(64).with_degraded_cap((best.max_batch / 2).max(1)));
    let (chaos, chaos_secs) =
        timed(|| simulate_fleet(&chaos_spec, &cfg).expect("chaos fleet simulates"));
    let chaos_parallel =
        simulate_fleet_threads(&chaos_spec, &cfg, threads).expect("parallel chaos simulates");
    if chaos != chaos_parallel {
        eprintln!("FAIL: chaos rung diverges between serial and parallel runs");
        std::process::exit(1);
    }
    if chaos.failovers < 2 {
        eprintln!(
            "FAIL: chaos rung fired {} deaths, needs at least 2",
            chaos.failovers
        );
        std::process::exit(1);
    }
    if chaos.completed + chaos.rejected + chaos.shed + chaos.timed_out != chaos.offered {
        eprintln!("FAIL: chaos rung stranded requests (outcomes do not partition the load)");
        std::process::exit(1);
    }
    if chaos.goodput_tokens_per_chip_s <= 0.0 {
        eprintln!("FAIL: chaos rung must keep nonzero goodput");
        std::process::exit(1);
    }
    let goodput_retention = chaos.goodput_tokens_per_chip_s / death.goodput_tokens_per_chip_s;
    println!(
        "chaos at {mid_qps} qps (MTBF {chaos_mtbf:.0} s/chip): {} deaths, {} retried \
         ({} redistributed), {} shed, {} timed out | goodput {:.2} tok/chip/s \
         ({goodput_retention:.2}x of the single-death rung, {chaos_secs:.1} s)",
        chaos.failovers,
        chaos.retries,
        chaos.redistributed,
        chaos.shed,
        chaos.timed_out,
        chaos.goodput_tokens_per_chip_s
    );

    // Long-trace rung: one shared Full-profile cost table and one shared
    // arrival draw amortized across a trace far longer than the ladder —
    // the steady-state decode loop allocates nothing per step, so this
    // measures raw event-loop throughput.
    let long_requests = if quick_mode() { 4_000 } else { 100_000 };
    let cache = CostTableCache::new(cfg.clone(), CostProfile::Full);
    let shared_costs = cache
        .replica_costs(&w.model, best.mesh, best.slice_count, best.max_batch)
        .expect("tuned layout prices");
    let long_trace: Arc<[Request]> =
        Arc::from(ArrivalSpec::poisson(mid_qps).generate(long_requests, w.seed));
    let long_spec = ServingSpec {
        slice_count: best.slice_count,
        max_batch: best.max_batch,
        num_requests: long_requests,
        seed: w.seed,
        slo_p99_ttft_ms: w.slo_p99_ttft_ms,
        failure: None,
        shared_costs: Some(shared_costs),
        shared_trace: Some(long_trace),
        ..ServingSpec::new(w.model.clone(), best.mesh, w.replicas, mid_qps)
    };
    let (long, long_secs) =
        timed(|| simulate_fleet_threads(&long_spec, &cfg, threads).expect("long trace simulates"));
    if long.completed + long.rejected != long_requests {
        eprintln!("FAIL: long-trace rung dropped requests");
        std::process::exit(1);
    }
    let long_rps = long_requests as f64 / long_secs;
    println!(
        "long trace: {long_requests} requests in {long_secs:.2} s wall clock \
         ({long_rps:.0} req/s, goodput {:.2} tok/chip/s)",
        long.goodput_tokens_per_chip_s
    );

    let doc = Json::obj(vec![
        ("bench", Json::Str("serving".to_string())),
        ("scale", Json::Str(scale.to_string())),
        (
            "workload",
            Json::obj(vec![
                ("model", Json::Str(w.model.name.to_string())),
                ("chips", Json::Num(w.chips as f64)),
                ("replicas", Json::Num(w.replicas as f64)),
                ("requests", Json::Num(w.requests as f64)),
                ("slo_p99_ttft_ms", Json::Num(w.slo_p99_ttft_ms)),
                ("seed", Json::Num(w.seed as f64)),
            ]),
        ),
        (
            "layout",
            Json::obj(vec![
                ("mesh", Json::Str(best.mesh.to_string())),
                ("slice_count", Json::Num(best.slice_count as f64)),
                ("max_batch", Json::Num(best.max_batch as f64)),
                ("tune_secs", Json::Num(tune_secs)),
            ]),
        ),
        (
            "tune",
            Json::obj(vec![
                ("grid_candidates", Json::Num(grid_candidates as f64)),
                ("screened_out", Json::Num(screened.screened_out as f64)),
                ("tune_secs_exhaustive", Json::Num(tune_secs_exhaustive)),
                ("tune_secs_fast", Json::Num(tune_secs_fast)),
                ("tune_secs_screened", Json::Num(tune_secs_screened)),
                ("tune_speedup", Json::Num(tune_speedup)),
                ("screened_speedup", Json::Num(screened_speedup)),
                ("winner_matches_exhaustive", Json::Bool(true)),
                ("fast_serial_equals_parallel", Json::Bool(true)),
            ]),
        ),
        ("rungs", Json::Arr(rungs)),
        (
            "long_trace",
            Json::obj(vec![
                ("requests", Json::Num(long_requests as f64)),
                ("sim_secs", Json::Num(long_secs)),
                ("requests_per_sec", Json::Num(long_rps)),
                ("completed", Json::Num(long.completed as f64)),
                ("rejected", Json::Num(long.rejected as f64)),
                ("ttft_p99_ms", Json::Num(long.ttft.p99 * 1e3)),
                (
                    "goodput_tokens_per_chip_s",
                    Json::Num(long.goodput_tokens_per_chip_s),
                ),
            ]),
        ),
        ("trace_overhead_ratio", Json::Num(trace_overhead_ratio)),
        ("trace_events", Json::Num(trace_events as f64)),
        ("chip_death", rung_json(mid_qps, &death, death_secs)),
        (
            "chaos",
            Json::obj(vec![
                ("qps", Json::Num(mid_qps)),
                ("mtbf_secs_per_chip", Json::Num(chaos_mtbf)),
                ("failovers", Json::Num(chaos.failovers as f64)),
                ("retries", Json::Num(chaos.retries as f64)),
                ("redistributed", Json::Num(chaos.redistributed as f64)),
                ("shed", Json::Num(chaos.shed as f64)),
                ("timed_out", Json::Num(chaos.timed_out as f64)),
                ("degraded_secs", Json::Num(chaos.degraded_secs)),
                (
                    "goodput_tokens_per_chip_s",
                    Json::Num(chaos.goodput_tokens_per_chip_s),
                ),
                (
                    "goodput_retention_vs_single_death",
                    Json::Num(goodput_retention),
                ),
                ("sim_secs", Json::Num(chaos_secs)),
            ]),
        ),
        (
            "determinism",
            Json::obj(vec![("serial_equals_parallel", Json::Bool(true))]),
        ),
        ("parallel_threads", Json::Num(threads as f64)),
    ]);

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_serving.json");
    let mut text = doc.to_string_pretty();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => println!(
            "(written to {})",
            path.canonicalize().unwrap_or(path.clone()).display()
        ),
        Err(e) => {
            eprintln!("FAIL: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
