//! Figure 4: comparing the execution timelines of the five 2D GeMM
//! algorithms on the same problem — Cannon's skew prologue, SUMMA's
//! fine-grain pipelines, Collective's exposed communication, Wang's
//! one-direction overlap, and MeshSlice's two-direction overlap.
//!
//! Regenerated from the simulator's per-op traces: for chip (0, 0) each
//! operation is plotted at its completion time; `=` rows are GeMMs, `-`
//! rows are communication.

use meshslice::{
    Cannon, Collective, Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice,
    SimConfig, Summa, Wang,
};
use meshslice_bench::banner;
use meshslice_mesh::{ChipId, Torus2d};
use meshslice_sim::OpKind;

fn main() {
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let shape = GemmShape::new(16_384, 16_384, 16_384);
    let problem = GemmProblem::new(shape, Dataflow::Os);
    let algos: Vec<(&str, Box<dyn DistributedGemm>)> = vec![
        ("Cannon", Box::new(Cannon)),
        ("SUMMA", Box::new(Summa::new(8))),
        ("Collective", Box::new(Collective)),
        ("Wang", Box::new(Wang::new().with_unroll(8))),
        ("MeshSlice", Box::new(MeshSlice::new(8, 8))),
    ];
    banner(
        "Figure 4",
        &format!("timelines of the five 2D GeMM algorithms ({shape} on 4x4)"),
    );

    // Common scale: the slowest algorithm's makespan.
    let mut results = Vec::new();
    let mut worst = 0.0f64;
    for (name, algo) in &algos {
        let program = algo.schedule(&mesh, problem, cfg.elem_bytes).unwrap();
        let (report, traces) = Engine::new(mesh.clone(), cfg.clone()).run_traced(&program);
        worst = worst.max(report.makespan().as_secs());
        results.push((*name, program, report, traces));
    }

    let width = 72usize;
    for (name, program, report, traces) in &results {
        let makespan = report.makespan().as_secs();
        // Bucket chip-0 op completions into compute vs comm columns.
        let mut compute = vec![false; width + 1];
        let mut comm = vec![false; width + 1];
        for t in traces.iter().filter(|t| t.chip == ChipId(0)) {
            let pos = ((t.completed.as_secs() / worst) * width as f64).round() as usize;
            let pos = pos.min(width);
            match program.ops()[t.op.index()].kind {
                OpKind::Gemm { .. } => compute[pos] = true,
                OpKind::SliceCopy { .. } => {}
                _ => comm[pos] = true,
            }
        }
        let render = |marks: &[bool], glyph: char| -> String {
            let end = ((makespan / worst) * width as f64).round() as usize;
            (0..=width)
                .map(|i| {
                    if marks[i] {
                        glyph
                    } else if i <= end {
                        '.'
                    } else {
                        ' '
                    }
                })
                .collect()
        };
        println!(
            "{name:>10} | {:>8.2} ms | util {:>5.1}%",
            makespan * 1e3,
            report.flop_utilization() * 100.0
        );
        println!("   compute | {}", render(&compute, '='));
        println!("      comm | {}", render(&comm, '-'));
        println!();
    }
    println!("(each mark is an op completion on chip (0,0); the dotted span is the");
    println!(" algorithm's makespan relative to the slowest algorithm)");
}
