//! Figure 9: FLOP utilization of the FC layers with different distributed
//! GeMM algorithms under weak scaling (batch = chips/2, sequence 2048).
//!
//! Prints one table per model: rows are cluster sizes, columns the seven
//! algorithms. The headline numbers to compare against the paper: at 256
//! chips MeshSlice leads Wang by ≈13.8% (GPT-3) and ≈26.0% (Megatron) in
//! FC-layer speed, and end-to-end by ≈12.0% / ≈23.4%.

use meshslice::experiments::weak_scaling;
use meshslice::llm::TrainingSetup;
use meshslice::report::{pct_opt, Table};
use meshslice::training::{end_to_end, simulate_fc_step, Algorithm};
use meshslice_bench::{banner, models, save_artifact, scale_chips, sim_config, WEAK_SCALING_CHIPS};

fn main() {
    let cfg = sim_config();
    let chips = scale_chips(&WEAK_SCALING_CHIPS);
    for model in models() {
        banner(
            "Figure 9",
            &format!("weak-scaling FC FLOP utilization — {}", model.name),
        );
        let points = weak_scaling(&model, &chips, &cfg);
        let mut headers = vec!["chips".to_string()];
        headers.extend(Algorithm::ALL.iter().map(|a| a.name().to_string()));
        let mut table = Table::new(headers);
        for p in &points {
            let mut row = vec![p.chips.to_string()];
            row.extend(p.utilization.iter().map(|(_, u)| pct_opt(*u)));
            table.row(row);
        }
        println!("{table}");
        save_artifact(
            &table,
            &format!("fig09_weak_scaling_{}", model.name.to_lowercase()),
        );

        // The paper's headline comparison at the largest cluster.
        if let Some(&largest) = chips.last() {
            let setup = TrainingSetup::weak_scaling(largest);
            let ms = simulate_fc_step(&model, setup, largest, Algorithm::MeshSlice, &cfg);
            let wang = simulate_fc_step(&model, setup, largest, Algorithm::Wang, &cfg);
            if let (Some(ms), Some(wang)) = (ms, wang) {
                let fc_speedup = wang.block_time().as_secs() / ms.block_time().as_secs() - 1.0;
                let e2e_ms = end_to_end(&model, setup, largest, &ms, &cfg);
                let e2e_wang = end_to_end(&model, setup, largest, &wang, &cfg);
                let e2e_speedup = e2e_wang.step.as_secs() / e2e_ms.step.as_secs() - 1.0;
                println!(
                    "MeshSlice vs Wang at {largest} chips: FC speedup {:.1}%, \
                     end-to-end speedup {:.1}% (paper: 13.8%/12.0% GPT-3, 26.0%/23.4% Megatron)",
                    fc_speedup * 100.0,
                    e2e_speedup * 100.0
                );
                println!(
                    "MeshSlice mesh {}, Wang mesh {}",
                    ms.mesh_shape, wang.mesh_shape
                );
            }
        }
    }
}
