//! Figure 10: breakdown of the communication time in the FC layers for
//! the different algorithms, relative to each algorithm's own computation
//! time, at 256 chips.
//!
//! The paper's qualitative findings to look for: Collective has the least
//! communication time; Wang adds launch overhead (many SendRecvs);
//! MeshSlice adds synchronization (more AG/RdS invocations); SUMMA is
//! dominated by synchronization; Cannon and the 1D baselines pay heavy
//! transfer (traffic) costs.

use meshslice::experiments::comm_breakdown;
use meshslice::report::Table;
use meshslice_bench::{banner, models, scale_cluster, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = scale_cluster();
    for model in models() {
        banner(
            "Figure 10",
            &format!(
                "communication time relative to compute time at {chips} chips — {}",
                model.name
            ),
        );
        let rows = comm_breakdown(&model, chips, &cfg);
        let mut table = Table::new(vec![
            "algorithm".into(),
            "launch".into(),
            "transfer".into(),
            "sync".into(),
            "total".into(),
        ]);
        for r in &rows {
            table.row(vec![
                r.algorithm.name().to_string(),
                format!("{:.3}", r.launch),
                format!("{:.3}", r.transfer),
                format!("{:.3}", r.sync),
                format!("{:.3}", r.total()),
            ]);
        }
        println!("{table}");
        println!("(values are fractions of the algorithm's own GeMM compute time;");
        println!(" a total below 1.0 is theoretically fully hideable by overlap)");
    }
}
