//! Figure 11: FLOP utilization of the distinct FC GeMM shapes (eight per
//! model, sixteen total) for the five 2D GeMM algorithms at 256 chips.
//!
//! Paper headline: MeshSlice is fastest on all sixteen GeMMs, on average
//! 27.8% over Collective and 19.1% over Wang, with larger wins on larger
//! GeMMs.

use meshslice::experiments::matrix_shapes;
use meshslice::report::{pct_opt, Table};
use meshslice::training::Algorithm;
use meshslice_bench::{banner, models, scale_cluster, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = scale_cluster();
    let mut ms_over_coll: Vec<f64> = Vec::new();
    let mut ms_over_wang: Vec<f64> = Vec::new();
    for model in models() {
        banner(
            "Figure 11",
            &format!(
                "per-GeMM FLOP utilization of 2D algorithms at {chips} chips — {}",
                model.name
            ),
        );
        let rows = matrix_shapes(&model, chips, &cfg);
        let mut headers = vec!["GeMM (MxNxK)".to_string()];
        headers.extend(Algorithm::TWO_D.iter().map(|a| a.name().to_string()));
        let mut table = Table::new(headers);
        for r in &rows {
            let mut cells = vec![r.shape.to_string()];
            cells.extend(r.utilization.iter().map(|(_, u)| pct_opt(*u)));
            table.row(cells);
            let get = |a: Algorithm| {
                r.utilization
                    .iter()
                    .find(|(x, _)| *x == a)
                    .and_then(|(_, u)| *u)
            };
            if let (Some(ms), Some(coll), Some(wang)) = (
                get(Algorithm::MeshSlice),
                get(Algorithm::Collective),
                get(Algorithm::Wang),
            ) {
                ms_over_coll.push(ms / coll - 1.0);
                ms_over_wang.push(ms / wang - 1.0);
            }
        }
        println!("{table}");
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    println!(
        "average MeshSlice speedup: {:.1}% over Collective, {:.1}% over Wang \
         (paper: 27.8% and 19.1%)",
        avg(&ms_over_coll),
        avg(&ms_over_wang)
    );
}
