//! Figure 12: FLOP utilization of the FC layers under strong scaling —
//! the global batch is fixed at 32 while the cluster grows, so per-chip
//! compute shrinks and communication comes to dominate.
//!
//! Paper headline: at 16 chips everything is compute-bound and all
//! algorithms do well; at 256 chips MeshSlice's overlap gain diminishes
//! (nothing left to hide behind) and it converges towards Collective and
//! Wang, while still beating SUMMA and 1D TP. FSDP cannot strong-scale.

use meshslice::experiments::strong_scaling;
use meshslice::report::{pct_opt, Table};
use meshslice::training::Algorithm;
use meshslice_bench::{
    banner, models, save_artifact, scale_chips, sim_config, STRONG_SCALING_CHIPS,
};

fn main() {
    let cfg = sim_config();
    let chips = scale_chips(&STRONG_SCALING_CHIPS);
    for model in models() {
        banner(
            "Figure 12",
            &format!(
                "strong-scaling FC FLOP utilization (batch = 32) — {}",
                model.name
            ),
        );
        let points = strong_scaling(&model, &chips, &cfg);
        let mut headers = vec!["chips".to_string()];
        headers.extend(Algorithm::ALL.iter().map(|a| a.name().to_string()));
        let mut table = Table::new(headers);
        for p in &points {
            let mut row = vec![p.chips.to_string()];
            row.extend(p.utilization.iter().map(|(_, u)| pct_opt(*u)));
            table.row(row);
        }
        println!("{table}");
        save_artifact(
            &table,
            &format!("fig12_strong_scaling_{}", model.name.to_lowercase()),
        );
    }
}
