//! Figure 13: FLOP utilization estimated by the autotuner's cost models
//! vs the utilization obtained through simulation, across every mesh
//! shape of a 256-chip cluster.
//!
//! What matters is that the cost model ranks configurations correctly —
//! in particular that it identifies the same optimal mesh shape as the
//! simulator. The paper observes up to a 2.4× gap between the best and
//! worst shapes for GPT-3.

use meshslice::experiments::mesh_shape_sweep;
use meshslice::report::{pct_opt, Table};
use meshslice_bench::{banner, models, save_artifact, scale_cluster, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = scale_cluster();
    for model in models() {
        banner(
            "Figure 13",
            &format!(
                "estimated vs simulated utilization across {chips}-chip mesh shapes — {}",
                model.name
            ),
        );
        let rows = mesh_shape_sweep(&model, chips, &cfg);
        let mut table = Table::new(vec!["mesh".into(), "estimated".into(), "simulated".into()]);
        for r in &rows {
            table.row(vec![
                r.mesh.to_string(),
                pct_opt(r.estimated),
                pct_opt(r.simulated),
            ]);
        }
        println!("{table}");
        save_artifact(
            &table,
            &format!("fig13_mesh_shapes_{}", model.name.to_lowercase()),
        );
        let best = |f: fn(&meshslice::experiments::MeshShapePoint) -> Option<f64>| {
            rows.iter()
                .filter_map(|r| f(r).map(|u| (r.mesh, u)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
        };
        if let (Some((em, _)), Some((sm, su))) = (best(|r| r.estimated), best(|r| r.simulated)) {
            let worst = rows
                .iter()
                .filter_map(|r| r.simulated)
                .min_by(f64::total_cmp)
                .unwrap_or(su);
            println!(
                "cost model picks {em}, simulation picks {sm} ({}) | best/worst simulated = {:.2}x",
                if em == sm { "MATCH" } else { "MISMATCH" },
                su / worst
            );
        }
    }
}
