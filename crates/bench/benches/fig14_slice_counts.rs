//! Figure 14: FLOP utilization estimated by the cost models vs obtained
//! with simulation, for different slice counts S on a 32×8 mesh.
//!
//! Paper headline: the optimal slice counts found by the cost models are
//! the same ones the simulation finds — small S leaves the prologue and
//! epilogue exposed, large S pays launch/synchronization overhead and
//! fine-grain GeMM inefficiency.

use meshslice::experiments::slice_count_sweep;
use meshslice::report::{pct, Table};
use meshslice::MeshShape;
use meshslice_bench::{banner, models, quick_mode, save_artifact, sim_config};

fn main() {
    let cfg = sim_config();
    let mesh = if quick_mode() {
        MeshShape::new(8, 8)
    } else {
        MeshShape::new(32, 8)
    };
    let s_values = [1usize, 2, 4, 8, 16, 32, 64];
    for model in models() {
        banner(
            "Figure 14",
            &format!(
                "estimated vs simulated utilization across slice counts on {mesh} — {}",
                model.name
            ),
        );
        let rows = slice_count_sweep(&model, mesh, &s_values, &cfg);
        let mut table = Table::new(vec!["S".into(), "estimated".into(), "simulated".into()]);
        for r in &rows {
            table.row(vec![
                r.requested_s.to_string(),
                pct(r.estimated),
                pct(r.simulated),
            ]);
        }
        println!("{table}");
        save_artifact(
            &table,
            &format!("fig14_slice_counts_{}", model.name.to_lowercase()),
        );
        let argmax = |f: fn(&meshslice::experiments::SliceCountPoint) -> f64| {
            rows.iter()
                .max_by(|a, b| f(a).total_cmp(&f(b)))
                .map(|r| r.requested_s)
                .unwrap_or(1)
        };
        let (e, s) = (argmax(|r| r.estimated), argmax(|r| r.simulated));
        println!(
            "cost model optimum S = {e}, simulated optimum S = {s} ({})",
            if e == s { "MATCH" } else { "MISMATCH" }
        );
    }
}
