//! Figure 15: estimated vs measured total communication times of the
//! eight FC layers (four per model) in MeshSlice, on the 4×4 cluster.
//!
//! The paper reports an average estimation error of 5.1%; ring AG/RdS
//! suffer no network contention, so the linear cost model fits well. Our
//! "measured" times come from the event-driven simulator, which adds HBM
//! contention and queueing the cost model does not know about.

use meshslice::experiments::comm_model_validation;
use meshslice::report::Table;
use meshslice_bench::{banner, models, sim_config};

fn main() {
    let cfg = sim_config();
    banner(
        "Figure 15",
        "estimated vs measured FC-layer communication times (MeshSlice)",
    );
    let rows = comm_model_validation(&models(), &cfg);
    let mut table = Table::new(vec![
        "FC layer".into(),
        "estimated".into(),
        "measured".into(),
        "error".into(),
    ]);
    let mut errs = Vec::new();
    for r in &rows {
        errs.push(r.error());
        table.row(vec![
            r.label.clone(),
            format!("{:.3} ms", r.estimated * 1e3),
            format!("{:.3} ms", r.simulated * 1e3),
            format!("{:.1}%", r.error() * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "average estimation error: {:.1}% (paper: 5.1%)",
        errs.iter().sum::<f64>() / errs.len().max(1) as f64 * 100.0
    );
}
