//! Criterion microbenchmarks of the core primitives: blocked slicing,
//! dense GeMM kernels, functional collectives, and the event-driven
//! simulation engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meshslice::autotuner::{Autotuner, RobustObjective};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice_collectives::{all_gather, reduce_scatter};
use meshslice_faults::FaultSpec;
use meshslice_gemm::{Collective, Dataflow, DistributedGemm, GemmProblem, MeshSlice};
use meshslice_mesh::{CommAxis, Torus2d};
use meshslice_sim::{Engine, RunScratch, SimConfig};
use meshslice_tensor::gemm::matmul;
use meshslice_tensor::slice::{slice_cols, SliceSpec};
use meshslice_tensor::{GemmShape, Matrix};

fn bench_slicing(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocked_slicing");
    for s in [2usize, 8] {
        let x = Matrix::random(256, 1024, 7);
        let spec = SliceSpec::new(s, 8);
        group.bench_with_input(BenchmarkId::new("slice_cols_256x1024", s), &s, |b, _| {
            b.iter(|| slice_cols(std::hint::black_box(&x), spec, 0))
        });
    }
    group.finish();
}

fn bench_gemm_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_gemm");
    for n in [64usize, 128] {
        let a = Matrix::random(n, n, 1);
        let b = Matrix::random(n, n, 2);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mesh = Torus2d::new(4, 4);
    let shards: Vec<Matrix> = (0..16).map(|i| Matrix::random(64, 64, i)).collect();
    c.bench_function("functional_all_gather_4x4_64x64", |b| {
        b.iter(|| all_gather(&mesh, CommAxis::InterRow, std::hint::black_box(&shards)))
    });
    let partials: Vec<Matrix> = (0..16).map(|i| Matrix::random(64, 64, i + 50)).collect();
    c.bench_function("functional_reduce_scatter_4x4_64x64", |b| {
        b.iter(|| reduce_scatter(&mesh, CommAxis::InterCol, std::hint::black_box(&partials)))
    });
}

fn bench_functional_meshslice(c: &mut Criterion) {
    let mesh = Torus2d::new(2, 2);
    let problem = GemmProblem::new(GemmShape::new(64, 64, 64), Dataflow::Os);
    let (a, b) = problem.random_inputs(&mesh, 3);
    let algo = MeshSlice::new(4, 8);
    c.bench_function("functional_meshslice_2x2_64cubed_s4", |bch| {
        bch.iter(|| algo.execute(&mesh, problem, &a, &b).unwrap())
    });
}

fn bench_sim_engine(c: &mut Criterion) {
    // Simulation throughput: one MeshSlice GeMM on a 16-chip cluster.
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let problem = GemmProblem::new(GemmShape::new(8192, 8192, 8192), Dataflow::Os);
    let ms_prog = MeshSlice::new(8, 8).schedule(&mesh, problem, 2).unwrap();
    let coll_prog = Collective.schedule(&mesh, problem, 2).unwrap();
    c.bench_function("sim_meshslice_4x4_s8", |b| {
        b.iter(|| Engine::new(mesh.clone(), cfg.clone()).run(std::hint::black_box(&ms_prog)))
    });
    c.bench_function("sim_collective_4x4", |b| {
        b.iter(|| Engine::new(mesh.clone(), cfg.clone()).run(std::hint::black_box(&coll_prog)))
    });
}

fn bench_scratch_reuse(c: &mut Criterion) {
    // The sweep hot path: the same program replayed with allocations
    // recycled across runs (and, for the lowered variant, the program
    // graph lowered once up front).
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let problem = GemmProblem::new(GemmShape::new(8192, 8192, 8192), Dataflow::Os);
    let prog = MeshSlice::new(8, 8).schedule(&mesh, problem, 2).unwrap();
    let engine = Engine::new(mesh, cfg);
    let lowered = engine.lower_program(&prog);
    let mut group = c.benchmark_group("scratch_reuse");
    group.bench_function("run_fresh", |b| {
        b.iter(|| engine.run(std::hint::black_box(&prog)))
    });
    let mut scratch = RunScratch::new();
    group.bench_function("run_with_scratch", |b| {
        b.iter(|| engine.run_with_scratch(std::hint::black_box(&prog), &mut scratch))
    });
    group.bench_function("run_lowered_with_scratch", |b| {
        b.iter(|| engine.run_lowered_with_scratch(std::hint::black_box(&lowered), &mut scratch))
    });
    group.finish();
}

fn bench_robust_tuning(c: &mut Criterion) {
    // End-to-end robust sweep on a tiny model: schedules, lowers, and
    // replays every (mesh, S) candidate across two fault draws.
    let model = LlmConfig {
        name: "Tiny".to_string(),
        hidden: 256,
        heads: 4,
        layers: 2,
        ffn_mult: 4,
    };
    let chips = 4;
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(SimConfig::tpu_v4());
    let profiles = FaultSpec::stragglers(1, 1.5).sample_profiles(chips, 42, 2);
    c.bench_function("tune_robust_tiny_4chips_2draws", |b| {
        b.iter(|| {
            tuner.tune_robust_threads(
                &model,
                setup,
                chips,
                &[1, 2, 4],
                std::hint::black_box(&profiles),
                RobustObjective::P95,
                1,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_slicing,
    bench_gemm_kernel,
    bench_collectives,
    bench_functional_meshslice,
    bench_sim_engine,
    bench_scratch_reuse,
    bench_robust_tuning
);
criterion_main!(benches);
