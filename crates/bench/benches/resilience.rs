//! Resilience performance harness: sweeps a chip-MTBF ladder through
//! `tune_resilient` (joint plan + Young–Daly checkpoint-interval choice),
//! replays one seeded failure draw per rung through checkpoint/restart,
//! gates on thread-count determinism, and writes the MTBF→goodput
//! trajectory to `BENCH_resilience.json` at the workspace root.
//!
//! `MESHSLICE_BENCH_SCALE=quick` shrinks the workload (16 chips, 3 MTBF
//! rungs) for smoke runs; the committed artifact uses the full workload
//! (GPT-3, 64 chips, 5 rungs).

use std::time::Instant;

use meshslice::autotuner::Autotuner;
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::par;
use meshslice_bench::{banner, quick_mode, sim_config};
use meshslice_faults::FailureSpec;
use meshslice_recovery::{simulate_recovery, RecoveryParams, ResilientTuning, DEFAULT_DETECT_SECS};
use meshslice_telemetry::Json;

struct Workload {
    model: LlmConfig,
    chips: usize,
    steps: usize,
    s_values: [usize; 4],
    mtbf_hours: Vec<f64>,
    seed: u64,
}

fn workload() -> Workload {
    let (chips, steps, mtbf_hours) = if quick_mode() {
        (16, 50, vec![24.0, 6.0, 1.5])
    } else {
        (64, 500, vec![96.0, 24.0, 6.0, 1.5, 0.5])
    };
    Workload {
        model: LlmConfig::gpt3(),
        chips,
        steps,
        s_values: [1, 2, 4, 8],
        mtbf_hours,
        seed: 42,
    }
}

/// Times one closure, returning (result, seconds).
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

fn main() {
    let w = workload();
    let scale = if quick_mode() { "quick" } else { "full" };
    banner(
        "Resilience",
        &format!(
            "MTBF -> goodput sweep, {} on {} chips, {}-step runs ({scale})",
            w.model.name, w.chips, w.steps
        ),
    );
    let tuner = Autotuner::new(sim_config());
    let setup = TrainingSetup::weak_scaling(w.chips);
    let threads = par::threads().max(2);

    // The failure-free plan prices the modeled horizon: `steps` nominal
    // training steps.
    let calm = tuner.tune_resilient_threads(
        &w.model,
        setup,
        w.chips,
        &w.s_values,
        &FailureSpec::none(),
        threads,
    );
    let step0 = calm.best().nominal_block.as_secs() * w.model.layers as f64;
    let horizon = (w.steps as f64 * step0).max(1.0);
    println!("nominal run: {horizon:.1} s ({step0:.3} s/step)");

    let mut rungs = Vec::new();
    for &hours in &w.mtbf_hours {
        let spec = FailureSpec::chip_mtbf(hours * 3600.0, horizon);
        let (serial, serial_secs) =
            timed(|| tuner.tune_resilient_threads(&w.model, setup, w.chips, &w.s_values, &spec, 1));
        let (parallel, parallel_secs) = timed(|| {
            tuner.tune_resilient_threads(&w.model, setup, w.chips, &w.s_values, &spec, threads)
        });
        if serial != parallel {
            eprintln!("FAIL: parallel resilient sweep diverges from serial at MTBF {hours} h");
            std::process::exit(1);
        }
        let best = serial.best();
        let step_secs = best.nominal_block.as_secs() * w.model.layers as f64;
        let ckpt_every = if best.checkpoint_interval_secs.is_finite() && step_secs > 0.0 {
            ((best.checkpoint_interval_secs / step_secs).round() as usize).max(1)
        } else {
            0
        };
        let params = RecoveryParams {
            step_secs,
            degraded_step_secs: (best.degraded_block.as_secs() * w.model.layers as f64)
                .max(step_secs),
            num_steps: w.steps,
            checkpoint_every: ckpt_every,
            checkpoint_secs: best.checkpoint_secs,
            restore_secs: best.checkpoint_secs,
            detect_secs: DEFAULT_DETECT_SECS,
        };
        let draw = spec.sample(best.mesh_shape.num_chips(), w.seed);
        let report = simulate_recovery(&params, &draw);
        println!(
            "MTBF {hours:>6.2} h: mesh {} S={} ckpt every {ckpt_every:>3} steps | \
             expected {:.4} simulated {:.4} ({} failures) | tune {serial_secs:.2} s / \
             {parallel_secs:.2} s ({threads} threads)",
            best.mesh_shape,
            best.requested_s,
            best.expected_goodput,
            report.goodput(),
            report.failures_hit,
        );
        rungs.push(Json::obj(vec![
            ("mtbf_hours", Json::Num(hours)),
            ("mesh", Json::Str(best.mesh_shape.to_string())),
            ("s", Json::Num(best.requested_s as f64)),
            (
                "checkpoint_interval_s",
                Json::Num(best.checkpoint_interval_secs),
            ),
            ("checkpoint_write_s", Json::Num(best.checkpoint_secs)),
            ("checkpoint_every_steps", Json::Num(ckpt_every as f64)),
            ("expected_goodput", Json::Num(best.expected_goodput)),
            ("simulated_goodput", Json::Num(report.goodput())),
            ("failures_hit", Json::Num(report.failures_hit as f64)),
            ("tune_serial_secs", Json::Num(serial_secs)),
            ("tune_parallel_secs", Json::Num(parallel_secs)),
        ]));
    }
    println!("determinism: serial == parallel plans at every rung (bit for bit)");

    let doc = Json::obj(vec![
        ("bench", Json::Str("resilience".to_string())),
        ("scale", Json::Str(scale.to_string())),
        (
            "workload",
            Json::obj(vec![
                ("model", Json::Str(w.model.name.to_string())),
                ("chips", Json::Num(w.chips as f64)),
                ("steps", Json::Num(w.steps as f64)),
                (
                    "s_values",
                    Json::Arr(w.s_values.iter().map(|&s| Json::Num(s as f64)).collect()),
                ),
                ("seed", Json::Num(w.seed as f64)),
                ("horizon_s", Json::Num(horizon)),
                ("detect_s", Json::Num(DEFAULT_DETECT_SECS)),
            ]),
        ),
        ("rungs", Json::Arr(rungs)),
        (
            "determinism",
            Json::obj(vec![("serial_equals_parallel", Json::Bool(true))]),
        ),
        ("parallel_threads", Json::Num(threads as f64)),
    ]);

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_resilience.json");
    let mut text = doc.to_string_pretty();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => println!(
            "(written to {})",
            path.canonicalize().unwrap_or(path.clone()).display()
        ),
        Err(e) => {
            eprintln!("FAIL: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
