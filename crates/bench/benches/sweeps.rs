//! Sweep-path performance harness: times the robustness-aware autotuner
//! end to end against the legacy per-draw loop it replaced, checks that
//! parallel and serial sweeps produce bit-identical plans, and writes the
//! numbers to `BENCH_sweeps.json` at the workspace root.
//!
//! The legacy loop below re-schedules and re-lowers every pass for every
//! fault draw with a fresh engine per run — the algorithm the seed's
//! `tune_robust` used. The tuned path (`tune_robust_threads`) lowers each
//! distinct pass spec once per candidate, replays the lowered graphs
//! across draws with recycled run state, and fans candidates out across
//! worker threads. Both paths must agree bit for bit; any divergence
//! exits nonzero so CI can gate on it.
//!
//! `MESHSLICE_BENCH_SCALE=quick` shrinks the workload (16 chips, 2 draws)
//! for smoke runs; the committed artifact uses the full workload (GPT-3,
//! 64 chips, 8 draws).

use std::time::Instant;

use meshslice::autotuner::{Autotuner, RobustObjective, RobustPlan};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::par;
use meshslice_bench::{banner, quick_mode, sim_config};
use meshslice_faults::{FaultSpec, JitterModel};
use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, MeshSlice};
use meshslice_mesh::{MeshShape, Torus2d};
use meshslice_sim::{ClusterProfile, Duration, Engine, RunScratch};
use meshslice_telemetry::Json;
use meshslice_tensor::GemmShape;

/// Wall-clock of `tune_robust` on this workload at the v0 seed commit
/// (2209972), measured on the same container as the committed artifact.
/// The in-binary legacy loop below under-states the seed's cost because
/// it shares the engine-level improvements (wake queue, event layout);
/// this constant is the honest "before".
const SEED_WALL_SECS: f64 = 15.62;

struct Workload {
    model: LlmConfig,
    chips: usize,
    draws: usize,
    s_values: [usize; 4],
    profiles: Vec<ClusterProfile>,
}

fn workload() -> Workload {
    let (chips, draws) = if quick_mode() { (16, 2) } else { (64, 8) };
    let spec = FaultSpec::stragglers(1, 1.5)
        .with_jitter(JitterModel::LogNormal { sigma: 0.05 })
        .with_link_degradation(0.25, 0.7);
    Workload {
        model: LlmConfig::gpt3(),
        chips,
        draws,
        s_values: [1, 2, 4, 8],
        profiles: spec.sample_profiles(chips, 42, draws),
    }
}

/// The seed's algorithm: schedule + lower + fresh engine for every
/// (candidate, draw) pair. Returns the same per-candidate scores as
/// `tune_robust` for the cross-check.
fn legacy_scores(
    tuner: &Autotuner,
    w: &Workload,
) -> Vec<(MeshShape, usize, Duration, Vec<Duration>)> {
    let setup = TrainingSetup::weak_scaling(w.chips);
    let base = tuner.cost_model().config().clone();
    let mut scores = Vec::new();
    for mesh in Autotuner::candidate_meshes(w.chips) {
        for &s in &w.s_values {
            let Some(nominal) = tuner.simulate_block(&w.model, setup, mesh, s, &base) else {
                continue;
            };
            let per_draw: Vec<_> = w
                .profiles
                .iter()
                .map(|p| {
                    let cfg = base.clone().with_faults(p.clone());
                    tuner
                        .simulate_block(&w.model, setup, mesh, s, &cfg)
                        .expect("feasible under the nominal config implies feasible under faults")
                        .makespan()
                })
                .collect();
            scores.push((mesh, s, nominal.makespan(), per_draw));
        }
    }
    scores
}

/// Dies with a nonzero exit if the tuned plan disagrees with the legacy
/// scores or with a plan computed at a different thread count.
fn check_determinism(
    legacy: &[(MeshShape, usize, Duration, Vec<Duration>)],
    serial: &RobustPlan,
    parallel: &RobustPlan,
) {
    if serial != parallel {
        eprintln!("FAIL: parallel sweep diverges from the serial sweep");
        std::process::exit(1);
    }
    let mut cands = serial.candidates.clone();
    cands.sort_by(|a, b| {
        (a.mesh_shape.rows(), a.mesh_shape.cols(), a.requested_s).cmp(&(
            b.mesh_shape.rows(),
            b.mesh_shape.cols(),
            b.requested_s,
        ))
    });
    let mut legacy = legacy.to_vec();
    legacy.sort_by_key(|a| (a.0.rows(), a.0.cols(), a.1));
    if legacy.len() != cands.len() {
        eprintln!(
            "FAIL: candidate count mismatch (legacy {}, tuned {})",
            legacy.len(),
            cands.len()
        );
        std::process::exit(1);
    }
    for ((mesh, s, nominal, per_draw), cand) in legacy.iter().zip(cands.iter()) {
        if (*mesh, *s) != (cand.mesh_shape, cand.requested_s)
            || *nominal != cand.nominal
            || *per_draw != cand.per_draw
        {
            eprintln!("FAIL: tuned sweep diverges from the legacy loop at mesh {mesh} S={s}");
            std::process::exit(1);
        }
    }
}

/// Times one closure, returning (result, seconds).
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// Engine-level scratch microbench: the same program run with a fresh
/// engine per run, with recycled run state, and with recycled run state
/// on a pre-lowered graph.
fn scratch_microbench(iters: usize) -> Json {
    let mesh = Torus2d::new(4, 4);
    let cfg = sim_config();
    let problem = GemmProblem::new(GemmShape::new(8192, 8192, 8192), Dataflow::Os);
    let program = MeshSlice::new(8, 8)
        .schedule(&mesh, problem, cfg.elem_bytes)
        .expect("8192^3 divides a 4x4 mesh");
    let engine = Engine::new(mesh, cfg);
    let lowered = engine.lower_program(&program);
    let mut scratch = RunScratch::new();

    let (fresh_report, fresh) = timed(|| {
        let mut last = engine.run(&program);
        for _ in 1..iters {
            last = engine.run(&program);
        }
        last
    });
    let (scratch_report, with_scratch) = timed(|| {
        let mut last = engine.run_with_scratch(&program, &mut scratch);
        for _ in 1..iters {
            last = engine.run_with_scratch(&program, &mut scratch);
        }
        last
    });
    let (lowered_report, prelowered) = timed(|| {
        let mut last = engine.run_lowered_with_scratch(&lowered, &mut scratch);
        for _ in 1..iters {
            last = engine.run_lowered_with_scratch(&lowered, &mut scratch);
        }
        last
    });
    if scratch_report != fresh_report || lowered_report != fresh_report {
        eprintln!("FAIL: scratch-reuse run diverges from a fresh run");
        std::process::exit(1);
    }
    Json::obj(vec![
        ("iters", Json::Num(iters as f64)),
        ("fresh_run_secs", Json::Num(fresh)),
        ("run_with_scratch_secs", Json::Num(with_scratch)),
        ("run_lowered_with_scratch_secs", Json::Num(prelowered)),
    ])
}

fn main() {
    let w = workload();
    let scale = if quick_mode() { "quick" } else { "full" };
    banner(
        "Sweeps",
        &format!(
            "robust-autotune throughput, {} on {} chips, {} draws ({scale})",
            w.model.name, w.chips, w.draws
        ),
    );
    let tuner = Autotuner::new(sim_config());
    let setup = TrainingSetup::weak_scaling(w.chips);

    let (legacy, legacy_secs) = timed(|| legacy_scores(&tuner, &w));
    println!("legacy per-draw loop:      {legacy_secs:.2} s");

    let (serial, serial_secs) = timed(|| {
        tuner.tune_robust_threads(
            &w.model,
            setup,
            w.chips,
            &w.s_values,
            &w.profiles,
            RobustObjective::P95,
            1,
        )
    });
    println!("tune_robust (1 thread):    {serial_secs:.2} s");

    let threads = par::threads().max(2);
    let (parallel, parallel_secs) = timed(|| {
        tuner.tune_robust_threads(
            &w.model,
            setup,
            w.chips,
            &w.s_values,
            &w.profiles,
            RobustObjective::P95,
            threads,
        )
    });
    println!("tune_robust ({threads} threads):   {parallel_secs:.2} s");

    check_determinism(&legacy, &serial, &parallel);
    println!("determinism: serial == parallel == legacy scores (bit for bit)");

    let micro = scratch_microbench(if quick_mode() { 5 } else { 20 });

    let doc = Json::obj(vec![
        ("bench", Json::Str("sweeps".to_string())),
        ("scale", Json::Str(scale.to_string())),
        (
            "workload",
            Json::obj(vec![
                ("model", Json::Str(w.model.name.to_string())),
                ("chips", Json::Num(w.chips as f64)),
                ("draws", Json::Num(w.draws as f64)),
                (
                    "s_values",
                    Json::Arr(w.s_values.iter().map(|&s| Json::Num(s as f64)).collect()),
                ),
                ("objective", Json::Str("p95".to_string())),
            ]),
        ),
        (
            "seed_baseline",
            Json::obj(vec![
                ("wall_secs", Json::Num(SEED_WALL_SECS)),
                (
                    "note",
                    Json::Str(
                        "tune_robust wall-clock at the v0 seed commit on the full \
                         workload; valid comparison point for full scale only"
                            .to_string(),
                    ),
                ),
            ]),
        ),
        (
            "runs",
            Json::obj(vec![
                ("legacy_per_draw_secs", Json::Num(legacy_secs)),
                ("tuned_serial_secs", Json::Num(serial_secs)),
                ("tuned_parallel_secs", Json::Num(parallel_secs)),
                ("parallel_threads", Json::Num(threads as f64)),
            ]),
        ),
        (
            "speedup",
            Json::obj(vec![
                (
                    "tuned_vs_legacy_in_binary",
                    Json::Num(legacy_secs / serial_secs),
                ),
                (
                    "tuned_vs_seed_recorded",
                    if quick_mode() {
                        Json::Null
                    } else {
                        Json::Num(SEED_WALL_SECS / serial_secs)
                    },
                ),
            ]),
        ),
        ("scratch_microbench", micro),
        (
            "determinism",
            Json::obj(vec![
                ("serial_equals_parallel", Json::Bool(true)),
                ("tuned_equals_legacy", Json::Bool(true)),
            ]),
        ),
    ]);

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_sweeps.json");
    let mut text = doc.to_string_pretty();
    text.push('\n');
    match std::fs::write(&path, text) {
        Ok(()) => println!(
            "(written to {})",
            path.canonicalize().unwrap_or(path.clone()).display()
        ),
        Err(e) => {
            eprintln!("FAIL: could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
