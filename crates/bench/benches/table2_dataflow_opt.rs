//! Table 2: FC-layer FLOP utilization without and with the MeshSlice
//! autotuner's dataflow optimization, at 256 chips.
//!
//! "Not optimized" forces the default Y-stationary dataflows (no matrix
//! transpositions); "optimized" lets phase 1 keep the largest matrix of
//! every FC layer stationary. Paper: 55.6% → 67.4% (+21.2%) for GPT-3 and
//! 78.2% → 82.2% (+5.1%) for Megatron.

use meshslice::experiments::dataflow_ablation;
use meshslice::report::{pct, Table};
use meshslice_bench::{banner, models, scale_cluster, sim_config};

fn main() {
    let cfg = sim_config();
    let chips = scale_cluster();
    banner(
        "Table 2",
        &format!("FC utilization without/with dataflow optimization at {chips} chips"),
    );
    let mut table = Table::new(vec![
        "LLM".into(),
        "Not optimized".into(),
        "Optimized".into(),
        "Speedup".into(),
    ]);
    for model in models() {
        let row = dataflow_ablation(&model, chips, &cfg);
        table.row(vec![
            row.model.clone(),
            pct(row.not_optimized),
            pct(row.optimized),
            format!("{:.1}%", row.speedup() * 100.0),
        ]);
    }
    println!("{table}");
    println!("(paper: GPT-3 55.6% -> 67.4% (+21.2%), Megatron 78.2% -> 82.2% (+5.1%))");
}
