//! Table 3: FC-layer FLOP utilization on a real 4×4 TPUv4 cluster, where
//! the runtime cannot overlap AG/RdS collectives with computation and only
//! the uni-directional half of each ICI link is utilized.
//!
//! In this regime MeshSlice cannot benefit from overlap, so it runs
//! slightly *slower* than Collective — the paper measures ≈4.5% overhead,
//! mostly from fine-grain partial GeMMs and partial collectives, with only
//! ≈1.3% from the slicing copies themselves. The last column estimates
//! what MeshSlice would achieve if overlap were supported.

use meshslice::experiments::real_hw;
use meshslice::report::{pct, Table};
use meshslice::SimConfig;
use meshslice_bench::{banner, models};

fn main() {
    let cfg = SimConfig::tpu_v4_real_hw();
    banner(
        "Table 3",
        "FC utilization on a real 4x4 TPUv4 (no AG/RdS overlap)",
    );
    let mut table = Table::new(vec![
        "LLM".into(),
        "Collective".into(),
        "Wang".into(),
        "MeshSlice".into(),
        "MeshSlice-Overlap (estim.)".into(),
    ]);
    let mut overheads = Vec::new();
    for model in models() {
        let row = real_hw(&model, &cfg);
        overheads.push(row.collective / row.meshslice - 1.0);
        table.row(vec![
            row.model.clone(),
            pct(row.collective),
            pct(row.wang),
            pct(row.meshslice),
            pct(row.meshslice_overlap_estimate),
        ]);
    }
    println!("{table}");
    println!(
        "MeshSlice overhead vs Collective without overlap: {:.1}% / {:.1}% (paper: ~4.5%)",
        overheads[0] * 100.0,
        overheads.get(1).copied().unwrap_or(0.0) * 100.0
    );
    println!("(paper: GPT-3 47.4/47.7/45.5/65.7, Megatron 49.4/46.4/47.1/65.6)");
}
