//! §7 discussion example: per-chip communication traffic of 2.5D GeMM vs
//! MeshSlice + data parallelism on a 1024-chip 3D cluster, for GPT-3's
//! FF2 layer with (M, N, K) = (1024K, 12K, 48K).
//!
//! Paper: the Cannon-based 2.5D algorithm is stuck with a 16×16×4 torus
//! and moves ≈1.6 GB per chip, while MeshSlice+DP can pick 32×8×4 and
//! moves only ≈336 MB.

use meshslice::experiments::traffic_25d_example;
use meshslice::report::Table;
use meshslice_bench::banner;

fn main() {
    banner(
        "Section 7",
        "per-chip traffic: 2.5D GeMM vs MeshSlice+DP on 1024 chips (GPT-3 FF2)",
    );
    let rows = traffic_25d_example(2);
    let mut table = Table::new(vec![
        "method".into(),
        "3D torus".into(),
        "traffic/chip".into(),
    ]);
    for r in &rows {
        table.row(vec![
            r.method.clone(),
            r.torus.clone(),
            format!("{:.0} MB", r.per_chip_bytes as f64 / 1e6),
        ]);
    }
    println!("{table}");
    let ratio = rows[0].per_chip_bytes as f64 / rows[1].per_chip_bytes as f64;
    println!("reduction: {ratio:.1}x (paper: 1.6 GB vs 336 MB, ~4.8x)");
}
