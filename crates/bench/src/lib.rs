//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each `benches/*.rs` target (built with `harness = false`) prints the
//! rows/series of one paper table or figure; `cargo bench --workspace`
//! regenerates the full evaluation. `benches/microbench.rs` holds the
//! criterion microbenchmarks of the core primitives.

use meshslice::llm::LlmConfig;
use meshslice::SimConfig;

/// The chip counts of the weak-scaling study (Figure 9).
pub const WEAK_SCALING_CHIPS: [usize; 5] = [16, 32, 64, 128, 256];

/// The chip counts of the strong-scaling study (Figure 12).
pub const STRONG_SCALING_CHIPS: [usize; 3] = [16, 64, 256];

/// The cluster size of the single-point studies (Figures 10, 11, 13;
/// Table 2).
pub const LARGE_CLUSTER: usize = 256;

/// The two target models of the evaluation.
pub fn models() -> Vec<LlmConfig> {
    vec![LlmConfig::gpt3(), LlmConfig::megatron_nlg()]
}

/// The simulated TPUv4 configuration used throughout §5.1–§5.2.
pub fn sim_config() -> SimConfig {
    SimConfig::tpu_v4()
}

/// Reads `MESHSLICE_BENCH_SCALE` to optionally shrink long-running
/// sweeps: `full` (default) runs the paper's configurations, `quick` caps
/// cluster sizes at 64 chips for smoke-testing the harnesses.
pub fn quick_mode() -> bool {
    std::env::var("MESHSLICE_BENCH_SCALE")
        .map(|v| v == "quick")
        .unwrap_or(false)
}

/// Applies [`quick_mode`] to a chip-count list.
pub fn scale_chips(chips: &[usize]) -> Vec<usize> {
    if quick_mode() {
        chips.iter().copied().filter(|&c| c <= 64).collect()
    } else {
        chips.to_vec()
    }
}

/// The single-point cluster size under [`quick_mode`].
pub fn scale_cluster() -> usize {
    if quick_mode() {
        64
    } else {
        LARGE_CLUSTER
    }
}

/// Writes a table as a CSV artifact under `target/experiments/` and
/// prints where it went; harnesses call this so plotted series are easy
/// to consume downstream.
pub fn save_artifact(table: &meshslice::report::Table, name: &str) {
    // Bench binaries run with the package directory as CWD; anchor the
    // artifacts at the workspace root instead.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("target/experiments").join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!(
            "(series written to {})",
            path.canonicalize().unwrap_or(path.clone()).display()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Prints the standard banner of a regenerated figure/table.
pub fn banner(id: &str, caption: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {caption}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_the_papers_two() {
        let m = models();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].name, "GPT-3");
        assert_eq!(m[1].name, "Megatron-NLG");
    }

    #[test]
    fn scale_chips_filters_in_quick_mode() {
        // Not setting the env var here; just exercise the full path.
        assert_eq!(scale_chips(&[16, 256]).len(), 2);
    }
}
