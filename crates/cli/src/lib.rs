//! Command-line interface to the MeshSlice reproduction.
//!
//! The `meshslice` binary exposes the autotuner, the cluster simulator,
//! and the 3D-parallelism planner without writing any Rust:
//!
//! ```text
//! meshslice autotune gpt3 256
//! meshslice compare megatron 64
//! meshslice sweep-mesh gpt3 256
//! meshslice sweep-slice gpt3 32x8
//! meshslice plan3d gpt3 512 256
//! meshslice traffic
//! ```
//!
//! Command parsing and execution live in this library so they are
//! unit-testable; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use meshslice::autotuner::Autotuner;
use meshslice::experiments::{mesh_shape_sweep, slice_count_sweep, traffic_25d_example};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::parallelism::{plan_cluster, PlanOptions};
use meshslice::report::{pct, pct_opt, Table};
use meshslice::training::{end_to_end, simulate_fc_step, Algorithm};
use meshslice::{MeshShape, SimConfig};

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `autotune <model> <chips>`: run both autotuner phases and print
    /// the plan.
    Autotune {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `compare <model> <chips>`: simulate one block with every algorithm.
    Compare {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `sweep-mesh <model> <chips>`: estimated vs simulated utilization
    /// across mesh shapes (Figure 13).
    SweepMesh {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `sweep-slice <model> <RxC>`: estimated vs simulated utilization
    /// across slice counts (Figure 14).
    SweepSlice {
        /// Target model.
        model: Model,
        /// Mesh shape, e.g. `32x8`.
        mesh: MeshShape,
    },
    /// `plan3d <model> <chips> <global_batch>`: best DP × PP × 2D-TP
    /// compositions.
    Plan3d {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
        /// Global batch size.
        batch: usize,
    },
    /// `memory <model> <chips>`: per-chip training memory footprint.
    Memory {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `inference <model> <chips>`: decode latency per block vs batch.
    Inference {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `traffic`: the §7 2.5D-vs-MeshSlice+DP traffic example.
    Traffic,
    /// `help`: usage text.
    Help,
}

/// The models the CLI knows about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// OpenAI GPT-3 (175B).
    Gpt3,
    /// NVIDIA Megatron-NLG (530B).
    Megatron,
}

impl Model {
    fn config(self) -> LlmConfig {
        match self {
            Model::Gpt3 => LlmConfig::gpt3(),
            Model::Megatron => LlmConfig::megatron_nlg(),
        }
    }
}

/// Errors produced while parsing a command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl Error for UsageError {}

/// The usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
meshslice — 2D tensor parallelism autotuner & cluster simulator

USAGE:
    meshslice autotune    <gpt3|megatron> <chips>
    meshslice compare     <gpt3|megatron> <chips>
    meshslice sweep-mesh  <gpt3|megatron> <chips>
    meshslice sweep-slice <gpt3|megatron> <RxC>
    meshslice plan3d      <gpt3|megatron> <chips> <global_batch>
    meshslice memory      <gpt3|megatron> <chips>
    meshslice inference   <gpt3|megatron> <chips>
    meshslice traffic
    meshslice help";

fn parse_model(s: &str) -> Result<Model, UsageError> {
    match s.to_ascii_lowercase().as_str() {
        "gpt3" | "gpt-3" => Ok(Model::Gpt3),
        "megatron" | "megatron-nlg" => Ok(Model::Megatron),
        other => Err(UsageError(format!("unknown model '{other}'"))),
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("invalid {what} '{s}'")))
}

fn parse_mesh(s: &str) -> Result<MeshShape, UsageError> {
    let (r, c) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| UsageError(format!("mesh shape '{s}' is not of the form RxC")))?;
    Ok(MeshShape::new(
        parse_usize(r, "mesh rows")?.max(1),
        parse_usize(c, "mesh cols")?.max(1),
    ))
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the problem plus the usage text.
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("help");
    let mut need = |what: &str| -> Result<&str, UsageError> {
        it.next()
            .ok_or_else(|| UsageError(format!("missing argument: {what}")))
    };
    match cmd {
        "autotune" => Ok(Command::Autotune {
            model: parse_model(need("model")?)?,
            chips: parse_usize(need("chips")?, "chip count")?,
        }),
        "compare" => Ok(Command::Compare {
            model: parse_model(need("model")?)?,
            chips: parse_usize(need("chips")?, "chip count")?,
        }),
        "sweep-mesh" => Ok(Command::SweepMesh {
            model: parse_model(need("model")?)?,
            chips: parse_usize(need("chips")?, "chip count")?,
        }),
        "sweep-slice" => Ok(Command::SweepSlice {
            model: parse_model(need("model")?)?,
            mesh: parse_mesh(need("mesh shape")?)?,
        }),
        "plan3d" => Ok(Command::Plan3d {
            model: parse_model(need("model")?)?,
            chips: parse_usize(need("chips")?, "chip count")?,
            batch: parse_usize(need("global batch")?, "batch size")?,
        }),
        "memory" => Ok(Command::Memory {
            model: parse_model(need("model")?)?,
            chips: parse_usize(need("chips")?, "chip count")?,
        }),
        "inference" => Ok(Command::Inference {
            model: parse_model(need("model")?)?,
            chips: parse_usize(need("chips")?, "chip count")?,
        }),
        "traffic" => Ok(Command::Traffic),
        "help" | "-h" | "--help" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command '{other}'"))),
    }
}

/// Executes a parsed command, writing human-readable output to stdout.
pub fn execute(cmd: Command) {
    let cfg = SimConfig::tpu_v4();
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::Autotune { model, chips } => {
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let tuner = Autotuner::new(cfg.clone());
            let plan = tuner.tune(&model, setup, chips);
            println!("{model} on {chips} chips -> mesh {}", plan.mesh_shape);
            let mut t = Table::new(vec![
                "layer".into(),
                "pass".into(),
                "dataflow".into(),
                "S".into(),
            ]);
            for layer in &plan.layers {
                for pass in &layer.passes {
                    t.row(vec![
                        layer.layer.name.into(),
                        pass.pass.to_string(),
                        pass.problem.dataflow.to_string(),
                        pass.slice_count.to_string(),
                    ]);
                }
            }
            println!("{t}");
            println!(
                "estimated FC block time {:.3} ms",
                plan.estimated_block_time.as_secs() * 1e3
            );
        }
        Command::Compare { model, chips } => {
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let mut t = Table::new(vec![
                "algorithm".into(),
                "mesh".into(),
                "FC util".into(),
                "step".into(),
            ]);
            for algo in Algorithm::ALL {
                match simulate_fc_step(&model, setup, chips, algo, &cfg) {
                    Some(r) => {
                        let e2e = end_to_end(&model, setup, chips, &r, &cfg);
                        t.row(vec![
                            algo.name().into(),
                            r.mesh_shape.to_string(),
                            pct(r.utilization()),
                            format!("{:.1} ms", e2e.step.as_secs() * 1e3),
                        ]);
                    }
                    None => t.row(vec![algo.name().into(), "-".into(), "-".into(), "-".into()]),
                }
            }
            println!("{t}");
        }
        Command::SweepMesh { model, chips } => {
            let model = model.config();
            let mut t = Table::new(vec!["mesh".into(), "estimated".into(), "simulated".into()]);
            for p in mesh_shape_sweep(&model, chips, &cfg) {
                t.row(vec![
                    p.mesh.to_string(),
                    pct_opt(p.estimated),
                    pct_opt(p.simulated),
                ]);
            }
            println!("{t}");
        }
        Command::SweepSlice { model, mesh } => {
            let model = model.config();
            let mut t = Table::new(vec!["S".into(), "estimated".into(), "simulated".into()]);
            for p in slice_count_sweep(&model, mesh, &[1, 2, 4, 8, 16, 32, 64], &cfg) {
                t.row(vec![
                    p.requested_s.to_string(),
                    pct(p.estimated),
                    pct(p.simulated),
                ]);
            }
            println!("{t}");
        }
        Command::Plan3d {
            model,
            chips,
            batch,
        } => {
            let model = model.config();
            let plans = plan_cluster(
                &model,
                chips,
                batch,
                2048,
                256,
                &cfg,
                &PlanOptions::default(),
            );
            if plans.is_empty() {
                println!("no feasible DP x PP x TP composition for {chips} chips");
            }
            for p in plans.iter().take(10) {
                println!("{p}");
            }
        }
        Command::Memory { model, chips } => {
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let tuner = Autotuner::new(cfg.clone());
            let plan = tuner.tune(&model, setup, chips);
            let f = meshslice::memory::training_footprint(&model, setup, plan.mesh_shape, 8);
            let gib = |b: u64| format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64);
            let mut t = Table::new(vec!["state".into(), "per chip".into()]);
            t.row(vec!["weights (bf16)".into(), gib(f.weights)]);
            t.row(vec!["weight grads (bf16)".into(), gib(f.weight_grads)]);
            t.row(vec!["optimizer (fp32 x3)".into(), gib(f.optimizer)]);
            t.row(vec!["activations (ckpt)".into(), gib(f.activations)]);
            t.row(vec!["MeshSlice workspace".into(), gib(f.workspace)]);
            t.row(vec!["total".into(), gib(f.total())]);
            println!("{model} on {chips} chips (mesh {}):", plan.mesh_shape);
            println!("{t}");
            println!(
                "fits a 32 GiB TPUv4 HBM: {}",
                if f.total() <= 32 << 30 { "yes" } else { "NO" }
            );
        }
        Command::Inference { model, chips } => {
            let model = model.config();
            let rows =
                meshslice::experiments::inference_study(&model, chips, &[32, 128, 512], &cfg);
            let mut t = Table::new(vec![
                "batch".into(),
                "MeshSlice".into(),
                "Collective".into(),
                "Wang".into(),
            ]);
            for r in &rows {
                let mut cells = vec![r.batch.to_string()];
                cells.extend(r.block_latency.iter().map(|(_, lat)| {
                    lat.map(|x| format!("{:.1} us", x * 1e6))
                        .unwrap_or_else(|| "-".into())
                }));
                t.row(cells);
            }
            println!("decode latency per transformer block, {model} on {chips} chips:");
            println!("{t}");
        }
        Command::Traffic => {
            let mut t = Table::new(vec!["method".into(), "torus".into(), "traffic/chip".into()]);
            for r in traffic_25d_example(cfg.elem_bytes) {
                t.row(vec![
                    r.method,
                    r.torus,
                    format!("{:.0} MB", r.per_chip_bytes as f64 / 1e6),
                ]);
            }
            println!("{t}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_all_commands() {
        assert_eq!(
            parse(&args("autotune gpt3 256")).unwrap(),
            Command::Autotune {
                model: Model::Gpt3,
                chips: 256
            }
        );
        assert_eq!(
            parse(&args("compare megatron 64")).unwrap(),
            Command::Compare {
                model: Model::Megatron,
                chips: 64
            }
        );
        assert_eq!(
            parse(&args("sweep-slice gpt3 32x8")).unwrap(),
            Command::SweepSlice {
                model: Model::Gpt3,
                mesh: MeshShape::new(32, 8)
            }
        );
        assert_eq!(
            parse(&args("plan3d gpt3 512 256")).unwrap(),
            Command::Plan3d {
                model: Model::Gpt3,
                chips: 512,
                batch: 256
            }
        );
        assert_eq!(parse(&args("traffic")).unwrap(), Command::Traffic);
        assert_eq!(
            parse(&args("memory gpt3 256")).unwrap(),
            Command::Memory {
                model: Model::Gpt3,
                chips: 256
            }
        );
        assert_eq!(
            parse(&args("inference megatron 64")).unwrap(),
            Command::Inference {
                model: Model::Megatron,
                chips: 64
            }
        );
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_bad_input_with_usage() {
        let err = parse(&args("autotune gpt5 16")).unwrap_err();
        assert!(err.to_string().contains("unknown model"));
        assert!(err.to_string().contains("USAGE"));
        assert!(parse(&args("autotune gpt3")).is_err());
        assert!(parse(&args("sweep-slice gpt3 328")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
    }

    #[test]
    fn model_names_are_case_insensitive() {
        assert_eq!(
            parse(&args("compare GPT3 4")).unwrap(),
            Command::Compare {
                model: Model::Gpt3,
                chips: 4
            }
        );
        assert_eq!(
            parse(&args("compare Megatron-NLG 4")).unwrap(),
            Command::Compare {
                model: Model::Megatron,
                chips: 4
            }
        );
    }

    #[test]
    fn executes_cheap_commands() {
        // Smoke: these must not panic.
        execute(Command::Help);
        execute(Command::Traffic);
    }
}
