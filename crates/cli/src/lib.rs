//! Command-line interface to the MeshSlice reproduction.
//!
//! The `meshslice` binary exposes the autotuner, the cluster simulator,
//! and the 3D-parallelism planner without writing any Rust:
//!
//! ```text
//! meshslice autotune gpt3 256
//! meshslice compare megatron 64
//! meshslice compare baseline.json tuned.json
//! meshslice sweep-mesh gpt3 256
//! meshslice sweep-slice gpt3 32x8
//! meshslice plan3d gpt3 512 256
//! meshslice memory gpt3 256
//! meshslice inference megatron 64
//! meshslice serve --model gpt3 --replicas 2 --qps 40 --slo-p99-ms 500 --seed 7
//! meshslice faults --model gpt3 --chips 64 --straggler 1.5 --seeds 8
//! meshslice resilience --model gpt3 --chips 64 --mtbf 24 --steps 200
//! meshslice trace --model gpt3 --mesh 4x4 --out trace.json --sort
//! meshslice metrics --model gpt3 --mesh 4x4 --format json --out run.json
//! meshslice traffic
//! ```
//!
//! Command parsing and execution live in this library so they are
//! unit-testable; `main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use meshslice::autotuner::Autotuner;
use meshslice::experiments::{
    mesh_shape_sweep, slice_count_sweep, straggler_sensitivity, traffic_25d_example,
};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::parallelism::{plan_cluster, PlanOptions};
use meshslice::report::{pct, pct_opt, Table};
use meshslice::training::{end_to_end, simulate_fc_step, Algorithm};
use meshslice::{
    Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshShape, MeshSlice, SimConfig,
};
use meshslice_faults::FailureSpec;
use meshslice_mesh::{MeshView, Torus2d};
use meshslice_recovery::{
    simulate_recovery, RecoveryParams, RepairModel, ResilientTuning, DEFAULT_DETECT_SECS,
};
use meshslice_serving::{
    simulate_fleet_threads, simulate_fleet_traced, ArrivalSpec, ChaosSpec, ChipDeath, Request,
    RouterPolicy, ScreenPolicy, ServingSpec, ServingTuning, ShedPolicy, TuneMode,
    DEFAULT_SEGMENT_SECS,
};
use meshslice_sim::{NodeSpan, OpKind, Program};
use meshslice_telemetry::{
    is_serving_artifact, FleetDiff, Json, PathKind, RunDiff, RunMetrics, BUCKET_LABELS,
};

/// A parsed CLI invocation.
// One Command exists per process and lives on the stack for the length
// of `execute`; the size skew from Serve's many optional flags is
// irrelevant, and boxing them would noise up every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `autotune <model> <chips>`: run both autotuner phases and print
    /// the plan.
    Autotune {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `compare <model> <chips>`: simulate one block with every algorithm.
    Compare {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `sweep-mesh <model> <chips>`: estimated vs simulated utilization
    /// across mesh shapes (Figure 13).
    SweepMesh {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `sweep-slice <model> <RxC>`: estimated vs simulated utilization
    /// across slice counts (Figure 14).
    SweepSlice {
        /// Target model.
        model: Model,
        /// Mesh shape, e.g. `32x8`.
        mesh: MeshShape,
    },
    /// `plan3d <model> <chips> <global_batch>`: best DP × PP × 2D-TP
    /// compositions.
    Plan3d {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
        /// Global batch size.
        batch: usize,
    },
    /// `memory <model> <chips>`: per-chip training memory footprint.
    Memory {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `inference <model> <chips>`: decode latency per block vs batch.
    Inference {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
    },
    /// `serve [--model M] [--chips N] [--replicas R] [--qps F]
    /// [--trace FILE] [--slo-p99-ms F] [--seed K] [--requests N]
    /// [--fail-at SECS] [--chaos-mtbf SECS] [--repair SECS] [--retries N]
    /// [--shed DEPTH] [--mesh RxC] [--s N] [--max-batch N] [--screen]
    /// [--format text|json|prometheus] [--out FILE] [--trace-out FILE]
    /// [--trace-chrome FILE] [--explain] [--explain-out FILE]
    /// [--threads N]`: simulate a continuous-batching serving fleet and
    /// report TTFT/TPOT percentiles and goodput-per-chip against the
    /// SLO. `--chaos-mtbf` draws seeded multi-death fault injection per
    /// replica (the serving analog of the `resilience` MTBF ladder);
    /// `--retries`/`--shed` enable cross-replica failover routing and
    /// SLO-aware load shedding. The trace/explain flags record the
    /// request-lifecycle event stream (observation-only — the report is
    /// bit-identical with or without them) and decompose tail TTFT into
    /// blame components.
    Serve {
        /// Target model.
        model: Model,
        /// Total chips in the fleet (split across replicas).
        chips: usize,
        /// Replica count; must divide the chip pool.
        replicas: usize,
        /// Mean offered load, requests per second.
        qps: f64,
        /// Rate-multiplier trace file replayed cyclically (one
        /// multiplier per line); steady Poisson when absent.
        trace: Option<String>,
        /// TTFT p99 target, milliseconds.
        slo_p99_ms: f64,
        /// Arrival-draw seed.
        seed: u64,
        /// Request-trace length.
        requests: usize,
        /// Inject a chip death in replica 0 at this time, seconds.
        fail_at: Option<f64>,
        /// Chaos mode: per-chip MTBF, seconds — every replica draws
        /// seeded exponential chip/link deaths over the arrival-trace
        /// span. Mutually exclusive with `--fail-at`.
        chaos_mtbf: Option<f64>,
        /// Mean exponential repair time after a chaos death, seconds;
        /// requires `--chaos-mtbf`. Dead replicas stay degraded forever
        /// when absent.
        repair: Option<f64>,
        /// Cross-replica failover routing with this retry budget:
        /// requests stranded in a blackout window back off and land on
        /// survivor replicas.
        retries: Option<usize>,
        /// SLO-aware load shedding above this waiting-queue depth, with
        /// a halved degraded batch cap while overloaded.
        shed: Option<usize>,
        /// Pin the per-replica mesh, skipping the serving tuner.
        mesh: Option<MeshShape>,
        /// Slice count used with `--mesh` (tuned when `--mesh` absent).
        s: usize,
        /// Decode batch cap used with `--mesh` (tuned when absent).
        max_batch: usize,
        /// Tune with successive-halving screening (prefix-trace
        /// elimination) instead of the full fast path; ignored with
        /// `--mesh`.
        screen: bool,
        /// Output format for the artifact.
        format: ServeFormat,
        /// Also write the JSON artifact here.
        out: Option<String>,
        /// Write the request-lifecycle event stream here as JSONL
        /// (`schemas/serving_trace.schema.json`).
        trace_out: Option<String>,
        /// Write the event stream here as chrome trace-event JSON
        /// (open in Perfetto / `chrome://tracing`).
        trace_chrome: Option<String>,
        /// Print the TTFT blame table (queueing / prefill / preemption /
        /// failover per percentile bucket).
        explain: bool,
        /// Write the blame report here as JSON.
        explain_out: Option<String>,
        /// Worker threads for tuning and replica simulation;
        /// `MESHSLICE_THREADS` or the machine's parallelism when absent.
        /// Results are identical at any count.
        threads: Option<usize>,
    },
    /// `faults [--model M] [--chips N] [--straggler F] [--seeds K]
    /// [--threads N]`: straggler-severity × slice-count sensitivity grid
    /// under seeded fault injection.
    Faults {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
        /// Compute slowdown of the injected straggler (>= 1).
        straggler: f64,
        /// Number of seeded fault draws per grid cell.
        seeds: usize,
        /// Sweep worker threads; `MESHSLICE_THREADS` or the machine's
        /// parallelism when absent. Results are identical at any count.
        threads: Option<usize>,
    },
    /// `resilience [--model M] [--chips N] [--mtbf HOURS] [--steps N]
    /// [--seed K] [--threads N]`: sweep a chip-MTBF ladder, jointly
    /// tuning the plan and the Young–Daly checkpoint interval per rung,
    /// and replay one seeded failure draw through checkpoint/restart.
    Resilience {
        /// Target model.
        model: Model,
        /// Cluster size.
        chips: usize,
        /// Per-chip MTBF at the center of the ladder, hours.
        mtbf_hours: f64,
        /// Training steps of the modeled run.
        steps: usize,
        /// Seed of the failure draw the simulated column replays.
        seed: u64,
        /// Sweep worker threads; `MESHSLICE_THREADS` or the machine's
        /// parallelism when absent. Results are identical at any count.
        threads: Option<usize>,
    },
    /// `trace [--model M] [--mesh RxC] [--out FILE] [--sort]`: run one FC
    /// GeMM with span collection and emit Chrome trace-event JSON.
    Trace {
        /// Target model.
        model: Model,
        /// Mesh shape, e.g. `4x4`.
        mesh: MeshShape,
        /// Output file; stdout when absent.
        out: Option<String>,
        /// Emit events in canonical `(chip, lane, start)` order so two
        /// runs of the same schedule produce byte-identical traces.
        sort: bool,
    },
    /// `metrics [--model M] [--mesh RxC] [--s N] [--windows N]
    /// [--format F] [--out FILE] [--tunelog FILE] [--threads N]`:
    /// instrument one FC GeMM and report critical-path attribution,
    /// overlap efficiency, and per-lane utilization.
    Metrics {
        /// Target model.
        model: Model,
        /// Mesh shape, e.g. `4x4`.
        mesh: MeshShape,
        /// Slice count to instrument; the analytical best when absent.
        s: Option<usize>,
        /// Number of utilization time-series windows.
        windows: usize,
        /// Output format for the artifact.
        format: MetricsFormat,
        /// Also write the JSON artifact here.
        out: Option<String>,
        /// Run the logged autotuner and write the candidate log here.
        tunelog: Option<String>,
        /// Sweep worker threads; `MESHSLICE_THREADS` or the machine's
        /// parallelism when absent. Results are identical at any count.
        threads: Option<usize>,
    },
    /// `compare <runA.json> <runB.json>`: diff two metric artifacts
    /// written by `metrics --out`.
    CompareRuns {
        /// Baseline artifact path.
        a: String,
        /// Candidate artifact path.
        b: String,
    },
    /// `traffic`: the §7 2.5D-vs-MeshSlice+DP traffic example.
    Traffic,
    /// `mesh <chips> [--max-rank N] [--shape AxB[xC[xD]]]
    /// [--format text|json]`: list the N-D mesh factorizations of a chip
    /// count, or (with `--shape`) every 2D plane view of one N-D shape.
    Mesh {
        /// Cluster size to factor.
        chips: usize,
        /// Largest factorization rank to enumerate (2..=4).
        max_rank: usize,
        /// List the 2D plane views of this shape instead of the
        /// factorization table; its chip product must equal `chips`.
        shape: Option<MeshShape>,
        /// Output format.
        format: MeshListFormat,
    },
    /// `help`: usage text.
    Help,
}

/// The models the CLI knows about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// OpenAI GPT-3 (175B).
    Gpt3,
    /// NVIDIA Megatron-NLG (530B).
    Megatron,
    /// The tiny smoke-test model (fits a handful of chips; used by CI
    /// fast-tune smoke runs).
    Tiny,
}

impl Model {
    fn config(self) -> LlmConfig {
        match self {
            Model::Gpt3 => LlmConfig::gpt3(),
            Model::Megatron => LlmConfig::megatron_nlg(),
            Model::Tiny => LlmConfig::tiny(),
        }
    }

    /// The canonical CLI spelling, used as the `model` meta label.
    pub fn name(self) -> &'static str {
        match self {
            Model::Gpt3 => "gpt3",
            Model::Megatron => "megatron",
            Model::Tiny => "tiny",
        }
    }
}

/// Output format of the `metrics` subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Human-readable tables.
    Text,
    /// The JSON artifact (`schemas/metrics.schema.json`).
    Json,
    /// Prometheus text exposition format.
    Prometheus,
}

/// Output format of the `serve` subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFormat {
    /// Human-readable tables.
    Text,
    /// The JSON artifact (`schemas/serving.schema.json`) — the default,
    /// so piping `serve` output yields a schema-valid document.
    Json,
    /// Prometheus text exposition format.
    Prometheus,
}

/// Output format of the `mesh` subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MeshListFormat {
    /// Human-readable tables.
    Text,
    /// A JSON document with the same content.
    Json,
}

/// Errors produced while parsing a command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl Error for UsageError {}

/// Every subcommand the CLI dispatches on, in the order [`USAGE`] lists
/// them. The help-coverage test asserts each one is both parseable and
/// documented, so this list cannot drift from [`parse`].
pub const SUBCOMMANDS: [&str; 15] = [
    "autotune",
    "compare",
    "sweep-mesh",
    "sweep-slice",
    "plan3d",
    "memory",
    "inference",
    "serve",
    "faults",
    "resilience",
    "trace",
    "metrics",
    "traffic",
    "mesh",
    "help",
];

/// The usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
meshslice — 2D tensor parallelism autotuner & cluster simulator

USAGE:
    meshslice autotune    <gpt3|megatron> <chips>
    meshslice compare     <gpt3|megatron> <chips>
    meshslice compare     <runA.json> <runB.json>
    meshslice sweep-mesh  <gpt3|megatron> <chips>
    meshslice sweep-slice <gpt3|megatron> <RxC>
    meshslice plan3d      <gpt3|megatron> <chips> <global_batch>
    meshslice memory      <gpt3|megatron> <chips>
    meshslice inference   <gpt3|megatron> <chips>
    meshslice serve       [--model gpt3|megatron|tiny] [--chips N] [--replicas R] [--qps F]
                          [--trace FILE] [--slo-p99-ms F] [--seed K] [--requests N]
                          [--fail-at SECS] [--chaos-mtbf SECS] [--repair SECS]
                          [--retries N] [--shed DEPTH]
                          [--mesh RxC] [--s N] [--max-batch N] [--screen]
                          [--format text|json|prometheus] [--out FILE]
                          [--trace-out FILE] [--trace-chrome FILE]
                          [--explain] [--explain-out FILE] [--threads N]
    meshslice faults      [--model gpt3|megatron] [--chips N] [--straggler F] [--seeds K]
                          [--threads N]
    meshslice resilience  [--model gpt3|megatron] [--chips N] [--mtbf HOURS] [--steps N]
                          [--seed K] [--threads N]
    meshslice trace       [--model gpt3|megatron] [--mesh RxC] [--out FILE] [--sort]
    meshslice metrics     [--model gpt3|megatron] [--mesh RxC] [--s N] [--windows N]
                          [--format text|json|prometheus] [--out FILE] [--tunelog FILE]
                          [--threads N]
    meshslice traffic
    meshslice mesh        <chips> [--max-rank N] [--shape AxB[xC[xD]]] [--format text|json]
    meshslice help

Sweeping subcommands (faults, resilience, metrics --tunelog) evaluate candidates on
--threads N worker threads; the MESHSLICE_THREADS environment variable is
the fallback when the flag is absent, then the machine's parallelism.
Output is bit-identical at any thread count.

compare on two .json files diffs either two training metrics artifacts or two
serving artifacts (headline scalars + per-window fleet strips); mixing the two
kinds is an error.";

fn parse_model(s: &str) -> Result<Model, UsageError> {
    match s.to_ascii_lowercase().as_str() {
        "gpt3" | "gpt-3" => Ok(Model::Gpt3),
        "megatron" | "megatron-nlg" => Ok(Model::Megatron),
        "tiny" => Ok(Model::Tiny),
        other => Err(UsageError(format!("unknown model '{other}'"))),
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("invalid {what} '{s}'")))
}

fn parse_mesh(s: &str) -> Result<MeshShape, UsageError> {
    let (r, c) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| UsageError(format!("mesh shape '{s}' is not of the form RxC")))?;
    let rows = parse_usize(r, "mesh rows")?;
    let cols = parse_usize(c, "mesh cols")?;
    if rows == 0 || cols == 0 {
        return Err(UsageError(format!(
            "mesh shape '{s}' has a zero dimension; both must be positive"
        )));
    }
    Ok(MeshShape::new(rows, cols))
}

/// Parses an N-D mesh shape like `4x4x2`, surfacing the mesh crate's
/// typed validation ([`MeshError`](meshslice_mesh::MeshError)) as a
/// usage error.
fn parse_shape_nd(s: &str) -> Result<MeshShape, UsageError> {
    let sizes: Vec<usize> = s
        .split(['x', 'X'])
        .map(|part| parse_usize(part, "axis size"))
        .collect::<Result<_, _>>()?;
    MeshShape::from_sizes(&sizes).map_err(|e| UsageError(format!("invalid shape '{s}': {e}")))
}

fn parse_mesh_list(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter().map(String::as_str);
    let chips = parse_chips(
        it.next()
            .ok_or_else(|| UsageError("missing argument: chips".into()))?,
    )?;
    let mut max_rank = 3usize;
    let mut shape = None;
    let mut format = MeshListFormat::Text;
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| UsageError(format!("flag {flag} needs a value")))
        };
        match flag {
            "--max-rank" => {
                max_rank = parse_usize(value(flag)?, "max rank")?;
                if !(2..=meshslice_mesh::MAX_AXES).contains(&max_rank) {
                    return Err(UsageError(format!(
                        "max rank must be between 2 and {}",
                        meshslice_mesh::MAX_AXES
                    )));
                }
            }
            "--shape" => shape = Some(parse_shape_nd(value(flag)?)?),
            "--format" => {
                format = match value(flag)? {
                    "text" => MeshListFormat::Text,
                    "json" => MeshListFormat::Json,
                    other => return Err(UsageError(format!("unknown format '{other}'"))),
                }
            }
            other => return Err(UsageError(format!("unknown flag '{other}'"))),
        }
    }
    if let Some(shape) = shape {
        if shape.num_chips() != chips {
            return Err(UsageError(format!(
                "shape {shape} has {} chips, not {chips}",
                shape.num_chips()
            )));
        }
    }
    Ok(Command::Mesh {
        chips,
        max_rank,
        shape,
        format,
    })
}

fn parse_chips(s: &str) -> Result<usize, UsageError> {
    let n = parse_usize(s, "chip count")?;
    if n == 0 {
        return Err(UsageError("chip count must be positive".into()));
    }
    Ok(n)
}

fn parse_f64(s: &str, what: &str) -> Result<f64, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("invalid {what} '{s}'")))
}

fn parse_threads(s: &str) -> Result<usize, UsageError> {
    let n = parse_usize(s, "thread count")?;
    if n == 0 {
        return Err(UsageError("thread count must be positive".into()));
    }
    Ok(n)
}

fn parse_faults(args: &[String]) -> Result<Command, UsageError> {
    let (mut model, mut chips, mut straggler, mut seeds) = (Model::Gpt3, 16, 2.0, 4);
    let mut threads = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| UsageError(format!("flag {flag} needs a value")))?;
        match flag {
            "--model" => model = parse_model(value)?,
            "--chips" => chips = parse_chips(value)?,
            "--straggler" => straggler = parse_f64(value, "straggler slowdown")?,
            "--seeds" => seeds = parse_usize(value, "seed count")?,
            "--threads" => threads = Some(parse_threads(value)?),
            other => return Err(UsageError(format!("unknown flag '{other}'"))),
        }
    }
    if straggler.is_nan() || straggler < 1.0 {
        return Err(UsageError(format!(
            "straggler slowdown must be >= 1, got {straggler}"
        )));
    }
    if seeds == 0 {
        return Err(UsageError("seed count must be positive".into()));
    }
    Ok(Command::Faults {
        model,
        chips,
        straggler,
        seeds,
        threads,
    })
}

fn parse_resilience(args: &[String]) -> Result<Command, UsageError> {
    let (mut model, mut chips, mut mtbf_hours) = (Model::Gpt3, 16, 24.0);
    let (mut steps, mut seed, mut threads) = (200usize, 42u64, None);
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| UsageError(format!("flag {flag} needs a value")))?;
        match flag {
            "--model" => model = parse_model(value)?,
            "--chips" => chips = parse_chips(value)?,
            "--mtbf" => mtbf_hours = parse_f64(value, "MTBF")?,
            "--steps" => steps = parse_usize(value, "step count")?,
            "--seed" => {
                seed = value
                    .parse()
                    .map_err(|_| UsageError(format!("invalid seed '{value}'")))?
            }
            "--threads" => threads = Some(parse_threads(value)?),
            other => return Err(UsageError(format!("unknown flag '{other}'"))),
        }
    }
    if mtbf_hours.is_nan() || mtbf_hours <= 0.0 || mtbf_hours.is_infinite() {
        return Err(UsageError(format!(
            "MTBF must be a positive number of hours, got {mtbf_hours}"
        )));
    }
    if steps == 0 {
        return Err(UsageError("step count must be positive".into()));
    }
    Ok(Command::Resilience {
        model,
        chips,
        mtbf_hours,
        steps,
        seed,
        threads,
    })
}

fn parse_trace(args: &[String]) -> Result<Command, UsageError> {
    let (mut model, mut mesh, mut out, mut sort) = (Model::Gpt3, MeshShape::new(4, 4), None, false);
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        if flag == "--sort" {
            sort = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| UsageError(format!("flag {flag} needs a value")))?;
        match flag {
            "--model" => model = parse_model(value)?,
            "--mesh" => mesh = parse_mesh(value)?,
            "--out" => out = Some(value.to_string()),
            other => return Err(UsageError(format!("unknown flag '{other}'"))),
        }
    }
    Ok(Command::Trace {
        model,
        mesh,
        out,
        sort,
    })
}

fn parse_metrics(args: &[String]) -> Result<Command, UsageError> {
    let mut model = Model::Gpt3;
    let mut mesh = MeshShape::new(4, 4);
    let mut s = None;
    let mut windows = 16;
    let mut format = MetricsFormat::Text;
    let mut out = None;
    let mut tunelog = None;
    let mut threads = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| UsageError(format!("flag {flag} needs a value")))?;
        match flag {
            "--model" => model = parse_model(value)?,
            "--mesh" => mesh = parse_mesh(value)?,
            "--s" => s = Some(parse_usize(value, "slice count")?),
            "--windows" => windows = parse_usize(value, "window count")?,
            "--format" => {
                format = match value {
                    "text" => MetricsFormat::Text,
                    "json" => MetricsFormat::Json,
                    "prometheus" | "prom" => MetricsFormat::Prometheus,
                    other => return Err(UsageError(format!("unknown format '{other}'"))),
                }
            }
            "--out" => out = Some(value.to_string()),
            "--tunelog" => tunelog = Some(value.to_string()),
            "--threads" => threads = Some(parse_threads(value)?),
            other => return Err(UsageError(format!("unknown flag '{other}'"))),
        }
    }
    if windows == 0 {
        return Err(UsageError("window count must be positive".into()));
    }
    if s == Some(0) {
        return Err(UsageError("slice count must be positive".into()));
    }
    Ok(Command::Metrics {
        model,
        mesh,
        s,
        windows,
        format,
        out,
        tunelog,
        threads,
    })
}

fn parse_serve(args: &[String]) -> Result<Command, UsageError> {
    let (mut model, mut chips, mut replicas) = (Model::Gpt3, 32usize, 2usize);
    let (mut qps, mut slo_p99_ms) = (40.0f64, 500.0f64);
    let (mut trace, mut seed, mut requests) = (None, 0u64, 200usize);
    let (mut fail_at, mut mesh, mut s, mut max_batch) = (None, None, 4usize, 32usize);
    let (mut chaos_mtbf, mut repair, mut retries, mut shed) = (None, None, None, None);
    let (mut format, mut out, mut threads) = (ServeFormat::Json, None, None);
    let (mut trace_out, mut trace_chrome) = (None, None);
    let (mut explain, mut explain_out) = (false, None);
    let mut screen = false;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        // `--explain` and `--screen` are the boolean flags; everything
        // else takes a value.
        if flag == "--explain" {
            explain = true;
            continue;
        }
        if flag == "--screen" {
            screen = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| UsageError(format!("flag {flag} needs a value")))?;
        match flag {
            "--model" => model = parse_model(value)?,
            "--chips" => chips = parse_chips(value)?,
            "--replicas" => replicas = parse_usize(value, "replica count")?,
            "--qps" => qps = parse_f64(value, "offered load")?,
            "--trace" => trace = Some(value.to_string()),
            "--slo-p99-ms" => slo_p99_ms = parse_f64(value, "SLO target")?,
            "--seed" => {
                seed = value
                    .parse()
                    .map_err(|_| UsageError(format!("invalid seed '{value}'")))?
            }
            "--requests" => requests = parse_usize(value, "request count")?,
            "--fail-at" => fail_at = Some(parse_f64(value, "failure time")?),
            "--chaos-mtbf" => chaos_mtbf = Some(parse_f64(value, "chaos MTBF")?),
            "--repair" => repair = Some(parse_f64(value, "repair time")?),
            "--retries" => retries = Some(parse_usize(value, "retry budget")?),
            "--shed" => shed = Some(parse_usize(value, "shed queue depth")?),
            "--mesh" => mesh = Some(parse_mesh(value)?),
            "--s" => s = parse_usize(value, "slice count")?,
            "--max-batch" => max_batch = parse_usize(value, "batch cap")?,
            "--format" => {
                format = match value {
                    "text" => ServeFormat::Text,
                    "json" => ServeFormat::Json,
                    "prometheus" | "prom" => ServeFormat::Prometheus,
                    other => return Err(UsageError(format!("unknown format '{other}'"))),
                }
            }
            "--out" => out = Some(value.to_string()),
            "--trace-out" => trace_out = Some(value.to_string()),
            "--trace-chrome" => trace_chrome = Some(value.to_string()),
            "--explain-out" => explain_out = Some(value.to_string()),
            "--threads" => threads = Some(parse_threads(value)?),
            other => return Err(UsageError(format!("unknown flag '{other}'"))),
        }
    }
    if !(qps.is_finite() && qps > 0.0) {
        return Err(UsageError(format!(
            "offered load must be a positive number of requests/s, got {qps}"
        )));
    }
    if !(slo_p99_ms.is_finite() && slo_p99_ms > 0.0) {
        return Err(UsageError(format!(
            "SLO target must be a positive number of milliseconds, got {slo_p99_ms}"
        )));
    }
    if replicas == 0 {
        return Err(UsageError("replica count must be positive".into()));
    }
    if requests == 0 {
        return Err(UsageError("request count must be positive".into()));
    }
    if s == 0 {
        return Err(UsageError("slice count must be positive".into()));
    }
    if max_batch == 0 {
        return Err(UsageError("batch cap must be positive".into()));
    }
    if let Some(at) = fail_at {
        if !(at.is_finite() && at >= 0.0) {
            return Err(UsageError(format!(
                "failure time must be finite and non-negative, got {at}"
            )));
        }
    }
    if let Some(mtbf) = chaos_mtbf {
        if !(mtbf.is_finite() && mtbf > 0.0) {
            return Err(UsageError(format!(
                "chaos MTBF must be finite and positive, got {mtbf}"
            )));
        }
        if fail_at.is_some() {
            return Err(UsageError(
                "--fail-at and --chaos-mtbf are mutually exclusive".into(),
            ));
        }
    }
    if let Some(mean) = repair {
        if chaos_mtbf.is_none() {
            return Err(UsageError("--repair requires --chaos-mtbf".into()));
        }
        if !(mean.is_finite() && mean > 0.0) {
            return Err(UsageError(format!(
                "repair time must be finite and positive, got {mean}"
            )));
        }
    }
    if retries == Some(0) {
        return Err(UsageError("retry budget must be positive".into()));
    }
    if shed == Some(0) {
        return Err(UsageError("shed queue depth must be positive".into()));
    }
    Ok(Command::Serve {
        model,
        chips,
        replicas,
        qps,
        trace,
        slo_p99_ms,
        seed,
        requests,
        fail_at,
        chaos_mtbf,
        repair,
        retries,
        shed,
        mesh,
        s,
        max_batch,
        screen,
        format,
        out,
        trace_out,
        trace_chrome,
        explain,
        explain_out,
        threads,
    })
}

/// Rejects a `--fail-at` time strictly past the end of the arrival
/// trace: the death would never fire and the run would silently equal a
/// failure-free one. A death at exactly the last arrival still fires
/// (work is pending when the clock reaches it), so it is allowed.
///
/// # Errors
///
/// Returns a [`UsageError`] naming the horizon when `fail_at` is past
/// the last arrival.
fn check_fail_at_horizon(fail_at: Option<f64>, trace: &[Request]) -> Result<(), UsageError> {
    let (Some(at), Some(last)) = (fail_at, trace.last()) else {
        return Ok(());
    };
    if at > last.arrival_secs {
        return Err(UsageError(format!(
            "--fail-at {at} is past the end of the arrival trace (last arrival at \
             {:.3} s); the death would never fire — lower --fail-at or raise --requests",
            last.arrival_secs
        )));
    }
    Ok(())
}

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the problem plus the usage text.
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    match args.first().map(String::as_str) {
        Some("serve") => return parse_serve(&args[1..]),
        Some("faults") => return parse_faults(&args[1..]),
        Some("resilience") => return parse_resilience(&args[1..]),
        Some("trace") => return parse_trace(&args[1..]),
        Some("metrics") => return parse_metrics(&args[1..]),
        Some("mesh") => return parse_mesh_list(&args[1..]),
        _ => {}
    }
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("help");
    let mut need = |what: &str| -> Result<&str, UsageError> {
        it.next()
            .ok_or_else(|| UsageError(format!("missing argument: {what}")))
    };
    match cmd {
        "autotune" => Ok(Command::Autotune {
            model: parse_model(need("model")?)?,
            chips: parse_chips(need("chips")?)?,
        }),
        // `compare` is overloaded: two model/chips positionals simulate
        // the algorithm comparison; two non-model arguments are treated
        // as metric-artifact paths and diffed.
        "compare" => {
            let first = need("model or run file")?;
            let second = need("chips or run file")?;
            match parse_model(first) {
                Ok(model) => Ok(Command::Compare {
                    model,
                    chips: parse_chips(second)?,
                }),
                Err(_) => Ok(Command::CompareRuns {
                    a: first.to_string(),
                    b: second.to_string(),
                }),
            }
        }
        "sweep-mesh" => Ok(Command::SweepMesh {
            model: parse_model(need("model")?)?,
            chips: parse_chips(need("chips")?)?,
        }),
        "sweep-slice" => Ok(Command::SweepSlice {
            model: parse_model(need("model")?)?,
            mesh: parse_mesh(need("mesh shape")?)?,
        }),
        "plan3d" => {
            let model = parse_model(need("model")?)?;
            let chips = parse_chips(need("chips")?)?;
            let batch = parse_usize(need("global batch")?, "batch size")?;
            if batch == 0 {
                return Err(UsageError("global batch must be positive".into()));
            }
            Ok(Command::Plan3d {
                model,
                chips,
                batch,
            })
        }
        "memory" => Ok(Command::Memory {
            model: parse_model(need("model")?)?,
            chips: parse_chips(need("chips")?)?,
        }),
        "inference" => Ok(Command::Inference {
            model: parse_model(need("model")?)?,
            chips: parse_chips(need("chips")?)?,
        }),
        "traffic" => Ok(Command::Traffic),
        "help" | "-h" | "--help" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown command '{other}'"))),
    }
}

/// Executes a parsed command, writing human-readable output to stdout.
///
/// # Errors
///
/// Returns a human-readable message — never panics — when the command
/// cannot run to completion: an artifact fails to load or write, or the
/// requested model has no legal schedule on the requested mesh. `main`
/// maps the error to a nonzero exit code.
pub fn execute(cmd: Command) -> Result<(), String> {
    let cfg = SimConfig::tpu_v4();
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::Autotune { model, chips } => {
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let tuner = Autotuner::new(cfg.clone());
            let plan = tuner.tune(&model, setup, chips);
            println!("{model} on {chips} chips -> mesh {}", plan.mesh_shape);
            let mut t = Table::new(vec![
                "layer".into(),
                "pass".into(),
                "dataflow".into(),
                "S".into(),
            ]);
            for layer in &plan.layers {
                for pass in &layer.passes {
                    t.row(vec![
                        layer.layer.name.into(),
                        pass.pass.to_string(),
                        pass.problem.dataflow.to_string(),
                        pass.slice_count.to_string(),
                    ]);
                }
            }
            println!("{t}");
            println!(
                "estimated FC block time {:.3} ms",
                plan.estimated_block_time.as_secs() * 1e3
            );
        }
        Command::Compare { model, chips } => {
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let mut t = Table::new(vec![
                "algorithm".into(),
                "mesh".into(),
                "FC util".into(),
                "step".into(),
            ]);
            for algo in Algorithm::ALL {
                match simulate_fc_step(&model, setup, chips, algo, &cfg) {
                    Some(r) => {
                        let e2e = end_to_end(&model, setup, chips, &r, &cfg);
                        t.row(vec![
                            algo.name().into(),
                            r.mesh_shape.to_string(),
                            pct(r.utilization()),
                            format!("{:.1} ms", e2e.step.as_secs() * 1e3),
                        ]);
                    }
                    None => t.row(vec![algo.name().into(), "-".into(), "-".into(), "-".into()]),
                }
            }
            println!("{t}");
        }
        Command::SweepMesh { model, chips } => {
            let model = model.config();
            let mut t = Table::new(vec!["mesh".into(), "estimated".into(), "simulated".into()]);
            for p in mesh_shape_sweep(&model, chips, &cfg) {
                t.row(vec![
                    p.mesh.to_string(),
                    pct_opt(p.estimated),
                    pct_opt(p.simulated),
                ]);
            }
            println!("{t}");
        }
        Command::SweepSlice { model, mesh } => {
            let model = model.config();
            let mut t = Table::new(vec!["S".into(), "estimated".into(), "simulated".into()]);
            for p in slice_count_sweep(&model, mesh, &[1, 2, 4, 8, 16, 32, 64], &cfg) {
                t.row(vec![
                    p.requested_s.to_string(),
                    pct(p.estimated),
                    pct(p.simulated),
                ]);
            }
            println!("{t}");
        }
        Command::Plan3d {
            model,
            chips,
            batch,
        } => {
            let model = model.config();
            let plans = plan_cluster(
                &model,
                chips,
                batch,
                2048,
                256,
                &cfg,
                &PlanOptions::default(),
            );
            if plans.is_empty() {
                println!("no feasible DP x PP x TP composition for {chips} chips");
            }
            for p in plans.iter().take(10) {
                println!("{p}");
            }
        }
        Command::Memory { model, chips } => {
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let tuner = Autotuner::new(cfg.clone());
            let plan = tuner.tune(&model, setup, chips);
            let f = meshslice::memory::training_footprint(&model, setup, plan.mesh_shape, 8);
            let gib = |b: u64| format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64);
            let mut t = Table::new(vec!["state".into(), "per chip".into()]);
            t.row(vec!["weights (bf16)".into(), gib(f.weights)]);
            t.row(vec!["weight grads (bf16)".into(), gib(f.weight_grads)]);
            t.row(vec!["optimizer (fp32 x3)".into(), gib(f.optimizer)]);
            t.row(vec!["activations (ckpt)".into(), gib(f.activations)]);
            t.row(vec!["MeshSlice workspace".into(), gib(f.workspace)]);
            t.row(vec!["total".into(), gib(f.total())]);
            println!("{model} on {chips} chips (mesh {}):", plan.mesh_shape);
            println!("{t}");
            println!(
                "fits a 32 GiB TPUv4 HBM: {}",
                if f.total() <= 32 << 30 { "yes" } else { "NO" }
            );
        }
        Command::Inference { model, chips } => {
            let model = model.config();
            let prompt_len = meshslice::experiments::DEFAULT_PROMPT_LEN;
            let rows = meshslice::experiments::inference_study(
                &model,
                chips,
                &[32, 128, 512],
                prompt_len,
                &cfg,
            );
            let fmt = |lat: &Option<f64>| {
                lat.map(|x| format!("{:.1} us", x * 1e6))
                    .unwrap_or_else(|| "-".into())
            };
            let mut t = Table::new(vec![
                "batch".into(),
                "phase".into(),
                "MeshSlice".into(),
                "Collective".into(),
                "Wang".into(),
            ]);
            for r in &rows {
                let mut prefill = vec![r.batch.to_string(), "prefill".into()];
                prefill.extend(r.prefill_latency.iter().map(|(_, lat)| fmt(lat)));
                t.row(prefill);
                let mut decode = vec![r.batch.to_string(), "decode".into()];
                decode.extend(r.block_latency.iter().map(|(_, lat)| fmt(lat)));
                t.row(decode);
            }
            println!(
                "per-block latency, {model} on {chips} chips \
                 (prefill at {prompt_len} prompt tokens; decode per step):"
            );
            println!("{t}");
        }
        Command::Serve {
            model,
            chips,
            replicas,
            qps,
            trace,
            slo_p99_ms,
            seed,
            requests,
            fail_at,
            chaos_mtbf,
            repair,
            retries,
            shed,
            mesh,
            s,
            max_batch,
            screen,
            format,
            out,
            trace_out,
            trace_chrome,
            explain,
            explain_out,
            threads,
        } => {
            if let Some(n) = threads {
                meshslice::par::set_threads(n);
            }
            let workers = meshslice::par::threads();
            let config = model.config();
            let arrivals = match &trace {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    let mut multipliers = Vec::new();
                    for (lineno, line) in text.lines().enumerate() {
                        let line = line.trim();
                        if line.is_empty() || line.starts_with('#') {
                            continue;
                        }
                        let m: f64 = line.parse().map_err(|_| {
                            format!("{path}:{}: invalid rate multiplier '{line}'", lineno + 1)
                        })?;
                        multipliers.push(m);
                    }
                    ArrivalSpec::replay(qps, multipliers, DEFAULT_SEGMENT_SECS)
                }
                None => ArrivalSpec::poisson(qps),
            };
            arrivals.validate().map_err(|e| match &trace {
                Some(path) => format!("{path}: {e}"),
                None => e,
            })?;
            // `--mesh` pins the layout; otherwise the serving tuner picks
            // mesh shape x slice count x batch policy for the pinned
            // replica count on a short evaluation trace.
            let (mesh, s, max_batch, tuned) = match mesh {
                Some(m) => (m, s, max_batch, false),
                None => {
                    let tuner = Autotuner::new(cfg.clone());
                    let tune_requests = requests.min(64);
                    // `--screen` eliminates most of the grid on a prefix
                    // trace; the default fast path fully evaluates it
                    // (bit-identical to the exhaustive reference).
                    let mode = if screen {
                        TuneMode::Screened(ScreenPolicy::auto(tune_requests))
                    } else {
                        TuneMode::Fast
                    };
                    let plan = tuner.tune_serving_mode(
                        &config,
                        chips,
                        Some(replicas),
                        &arrivals,
                        slo_p99_ms,
                        tune_requests,
                        seed,
                        mode,
                        workers,
                    )?;
                    let best = plan.best();
                    if screen {
                        eprintln!(
                            "screening: {} candidates fully evaluated, {} screened out",
                            plan.candidates.len(),
                            plan.screened_out
                        );
                    }
                    (best.mesh, best.slice_count, best.max_batch, true)
                }
            };
            // Pre-draw the arrival trace: the chaos horizon and the
            // `--fail-at` range check both need to know when it ends.
            // Sharing the draw with the simulation is neutral — the
            // fleet would draw the identical trace itself.
            let arrival_trace: Arc<[Request]> = Arc::from(arrivals.generate(requests, seed));
            check_fail_at_horizon(fail_at, &arrival_trace).map_err(|e| e.to_string())?;
            let horizon = arrival_trace.last().map_or(0.0, |r| r.arrival_secs);
            let slo_secs = slo_p99_ms / 1e3;
            let spec = ServingSpec {
                model: config.clone(),
                mesh,
                slice_count: s,
                replicas,
                max_batch,
                arrivals,
                num_requests: requests,
                seed,
                slo_p99_ttft_ms: slo_p99_ms,
                failure: fail_at.map(|at_secs| ChipDeath {
                    replica: 0,
                    at_secs,
                }),
                chaos: chaos_mtbf.map(|mtbf| {
                    let mut chaos = ChaosSpec::new(FailureSpec::chip_mtbf(mtbf, horizon), seed);
                    if let Some(mean) = repair {
                        chaos = chaos.with_repair(RepairModel::exponential(mean));
                    }
                    chaos
                }),
                router: retries.map(|max_retries| RouterPolicy {
                    max_retries,
                    ..RouterPolicy::for_slo(slo_secs)
                }),
                shed: shed.map(|depth| {
                    ShedPolicy::for_queue_depth(depth).with_degraded_cap((max_batch / 2).max(1))
                }),
                shared_costs: None,
                shared_trace: Some(arrival_trace),
            };
            // Any trace/explain flag turns on event recording; the
            // report is bit-identical either way (tracing is
            // observation-only by construction — a property test in
            // `tests/serving_properties.rs` holds the line).
            let tracing =
                trace_out.is_some() || trace_chrome.is_some() || explain || explain_out.is_some();
            let (report, recorded) = if tracing {
                let (report, trace) = simulate_fleet_traced(&spec, &cfg, workers)?;
                (report, Some(trace))
            } else {
                (simulate_fleet_threads(&spec, &cfg, workers)?, None)
            };
            let json = report.to_json();
            match format {
                ServeFormat::Json => println!("{}", json.to_string_pretty()),
                ServeFormat::Prometheus => print!("{}", report.to_prometheus()),
                ServeFormat::Text => {
                    println!(
                        "{config} fleet: {replicas} x {mesh} mesh, S = {s}, batch <= {max_batch}{}",
                        if tuned { " (tuned)" } else { "" }
                    );
                    println!(
                        "offered {} req @ {qps:.1} req/s (seed {seed}): {} completed, \
                         {} rejected, {} preemptions, {} failovers",
                        report.offered,
                        report.completed,
                        report.rejected,
                        report.preemptions,
                        report.failovers
                    );
                    if report.shed + report.timed_out + report.retries > 0 {
                        println!(
                            "resilience: {} shed, {} timed out, {} retried \
                             ({} redistributed), {:.1} s degraded-cap",
                            report.shed,
                            report.timed_out,
                            report.retries,
                            report.redistributed,
                            report.degraded_secs
                        );
                    }
                    let mut t = Table::new(vec![
                        "metric".into(),
                        "p50".into(),
                        "p95".into(),
                        "p99".into(),
                        "mean".into(),
                    ]);
                    for (name, l) in [("TTFT", &report.ttft), ("TPOT", &report.tpot)] {
                        t.row(vec![
                            name.into(),
                            format!("{:.1} ms", l.p50 * 1e3),
                            format!("{:.1} ms", l.p95 * 1e3),
                            format!("{:.1} ms", l.p99 * 1e3),
                            format!("{:.1} ms", l.mean * 1e3),
                        ]);
                    }
                    println!("{t}");
                    println!(
                        "goodput {:.1} tokens/chip/s over {:.1} s ({} tokens, {} chips)",
                        report.goodput_tokens_per_chip_s,
                        report.makespan_secs,
                        report.generated_tokens,
                        report.total_chips()
                    );
                    println!(
                        "SLO p99 TTFT <= {slo_p99_ms:.0} ms: {} (attainment {})",
                        if report.slo_attained { "MET" } else { "MISSED" },
                        pct(report.slo_attainment)
                    );
                    println!(
                        "KV peak {:.2} GiB of {:.2} GiB budget per chip",
                        report.kv_peak_bytes as f64 / (1u64 << 30) as f64,
                        report.kv_budget_bytes as f64 / (1u64 << 30) as f64
                    );
                }
            }
            if let Some(path) = out {
                std::fs::write(&path, json.to_string_pretty())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("serving artifact -> {path}");
            }
            if let Some(trace) = recorded {
                if let Some(path) = trace_out {
                    std::fs::write(&path, trace.to_jsonl())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("serving trace -> {path} ({} events)", trace.len());
                }
                if let Some(path) = trace_chrome {
                    std::fs::write(&path, trace.to_chrome_trace())
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    eprintln!("chrome trace -> {path}");
                }
                if explain || explain_out.is_some() {
                    let blame = trace.blame();
                    if explain {
                        print!("{}", blame.render_text());
                    }
                    if let Some(path) = explain_out {
                        std::fs::write(&path, blame.to_json().to_string_pretty())
                            .map_err(|e| format!("cannot write {path}: {e}"))?;
                        eprintln!("blame report -> {path}");
                    }
                }
            }
        }
        Command::Faults {
            model,
            chips,
            straggler,
            seeds,
            threads,
        } => {
            if let Some(n) = threads {
                meshslice::par::set_threads(n);
            }
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let tuner = Autotuner::new(cfg.clone());
            let mesh = tuner.tune(&model, setup, chips).mesh_shape;
            // A severity ladder around the requested slowdown, so the
            // table shows where the simulated-optimal S starts to shift.
            let mut severities = vec![
                1.0,
                1.0 + (straggler - 1.0) / 2.0,
                straggler,
                1.0 + 2.0 * (straggler - 1.0),
            ];
            severities.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
            let s_values = [1usize, 2, 4, 8];
            let grid = straggler_sensitivity(&model, mesh, &s_values, &severities, seeds, 42, &cfg);
            println!(
                "{model} on {chips} chips (mesh {mesh}), one straggler chip, {seeds} seeded draws:"
            );
            let mut header = vec!["slowdown".to_string()];
            header.extend(s_values.iter().map(|s| format!("S={s}")));
            let mut t = Table::new(header);
            for row in grid.chunks(s_values.len()) {
                let best = row
                    .iter()
                    .min_by(|a, b| a.p95.as_secs().total_cmp(&b.p95.as_secs()))
                    .map(|p| p.requested_s);
                let mut cells = vec![format!("{:.2}x", row[0].severity)];
                cells.extend(row.iter().map(|p| {
                    let mark = if Some(p.requested_s) == best { "*" } else { "" };
                    format!("{:.3} ms{mark}", p.p95.as_secs() * 1e3)
                }));
                t.row(cells);
            }
            println!("{t}");
            println!("p95 FC-block makespan; '*' marks the best slice count per row.");
        }
        Command::Resilience {
            model,
            chips,
            mtbf_hours,
            steps,
            seed,
            threads,
        } => {
            if let Some(n) = threads {
                meshslice::par::set_threads(n);
            }
            let model = model.config();
            let setup = TrainingSetup::weak_scaling(chips);
            let tuner = Autotuner::new(cfg.clone());
            let s_values = [1usize, 2, 4, 8];
            // The failure-free plan prices the modeled run length (the
            // horizon failures are drawn over): `steps` nominal steps.
            let calm = tuner.tune_resilient(&model, setup, chips, &s_values, &FailureSpec::none());
            let step0 = calm.best().nominal_block.as_secs() * model.layers as f64;
            let horizon = (steps as f64 * step0).max(1.0);
            println!(
                "{model} on {chips} chips, {steps}-step run ({:.1} s nominal), seed {seed}:",
                steps as f64 * step0
            );
            let mut t = Table::new(vec![
                "chip MTBF".into(),
                "mesh".into(),
                "S".into(),
                "checkpoint".into(),
                "expected".into(),
                "simulated".into(),
                "failures".into(),
            ]);
            // An MTBF ladder around the requested value, so the table
            // shows goodput falling as failures get more frequent.
            for factor in [4.0, 2.0, 1.0, 0.5, 0.25] {
                let hours = mtbf_hours * factor;
                let spec = FailureSpec::chip_mtbf(hours * 3600.0, horizon);
                let plan = tuner.tune_resilient(&model, setup, chips, &s_values, &spec);
                let best = plan.best();
                let step_secs = best.nominal_block.as_secs() * model.layers as f64;
                let ckpt_every = if best.checkpoint_interval_secs.is_finite() && step_secs > 0.0 {
                    (best.checkpoint_interval_secs / step_secs).round().max(1.0) as usize
                } else {
                    0
                };
                let params = RecoveryParams {
                    step_secs,
                    degraded_step_secs: (best.degraded_block.as_secs() * model.layers as f64)
                        .max(step_secs),
                    num_steps: steps,
                    checkpoint_every: ckpt_every,
                    checkpoint_secs: best.checkpoint_secs,
                    restore_secs: best.checkpoint_secs,
                    detect_secs: DEFAULT_DETECT_SECS,
                };
                let draw = spec.sample(best.mesh_shape.num_chips(), seed);
                let r = simulate_recovery(&params, &draw);
                t.row(vec![
                    format!("{hours:.2} h"),
                    best.mesh_shape.to_string(),
                    best.requested_s.to_string(),
                    if ckpt_every == 0 {
                        "never".into()
                    } else {
                        format!("every {ckpt_every}")
                    },
                    pct(best.expected_goodput),
                    pct(r.goodput()),
                    r.failures_hit.to_string(),
                ]);
            }
            println!("{t}");
            println!(
                "expected: Young–Daly goodput model; simulated: one seeded failure draw \
                 replayed through checkpoint/restart on the tuned plan."
            );
        }
        Command::Trace {
            model,
            mesh,
            out,
            sort,
        } => {
            let model = model.config();
            let torus = Torus2d::from_shape(mesh);
            let problem = fc1_problem(&model, mesh);
            let mut scheduled = None;
            for s in [8usize, 4, 2, 1] {
                if let Some(p) = schedule_fc1_at(&torus, problem, s, cfg.elem_bytes) {
                    scheduled = Some((p, s));
                    break;
                }
            }
            let Some((program, s_used)) = scheduled else {
                return Err(format!(
                    "no legal MeshSlice schedule for {model} FC1 on mesh {mesh}"
                ));
            };
            let (report, spans) = Engine::new(torus, cfg.clone()).run_spans(&program);
            let json = if sort {
                chrome_trace_json_sorted(&program, &spans)
            } else {
                chrome_trace_json(&program, &spans)
            };
            match out {
                Some(path) => {
                    std::fs::write(&path, &json)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!(
                        "{model} FC1 on mesh {mesh}, S = {s_used}: {} spans, makespan {:.3} ms -> {path}",
                        spans.len(),
                        report.makespan().as_secs() * 1e3
                    );
                }
                None => println!("{json}"),
            }
        }
        Command::Metrics {
            model,
            mesh,
            s,
            windows,
            format,
            out,
            tunelog,
            threads,
        } => {
            if let Some(n) = threads {
                meshslice::par::set_threads(n);
            }
            let config = model.config();
            let problem = fc1_problem(&config, mesh);
            let tuner = Autotuner::new(cfg.clone());
            let (best_s, _) = tuner.best_slice_count(mesh, problem, cfg.elem_bytes);
            let s_used = s.unwrap_or(best_s);
            let Some(m) = fc1_metrics(model, mesh, s_used, windows, &cfg) else {
                return Err(format!(
                    "no legal MeshSlice schedule for {config} FC1 at S = {s_used} on mesh {mesh}"
                ));
            };
            match format {
                MetricsFormat::Json => println!("{}", m.to_json().to_string_pretty()),
                MetricsFormat::Prometheus => print!("{}", m.to_prometheus()),
                MetricsFormat::Text => {
                    println!(
                        "{config} FC1 on mesh {mesh}, S = {s_used} (analytical best {best_s})"
                    );
                    println!(
                        "makespan {:.3} ms | flop util {} | overlap {}",
                        m.makespan * 1e3,
                        pct(m.flop_utilization),
                        pct(m.overlap_efficiency)
                    );
                    let mut svals = tuner.legal_slice_counts(mesh, problem);
                    if !svals.contains(&1) {
                        svals.insert(0, 1);
                    }
                    let mut t = Table::new(vec![
                        "S".into(),
                        "makespan".into(),
                        "overlap".into(),
                        "FC util".into(),
                    ]);
                    for cand in svals {
                        if let Some(cm) = fc1_metrics(model, mesh, cand, 1, &cfg) {
                            let mark = if cand == best_s { "*" } else { "" };
                            t.row(vec![
                                format!("{cand}{mark}"),
                                format!("{:.3} ms", cm.makespan * 1e3),
                                pct(cm.overlap_efficiency),
                                pct(cm.flop_utilization),
                            ]);
                        }
                    }
                    println!("\noverlap vs slice count ('*' = analytical best):");
                    println!("{t}");
                    let mut t = Table::new(vec![
                        "kind".into(),
                        "cluster busy".into(),
                        "critical path".into(),
                    ]);
                    for (i, label) in BUCKET_LABELS.iter().enumerate() {
                        t.row(vec![
                            label.to_string(),
                            format!("{:.3} ms", m.buckets[i] * 1e3),
                            format!("{:.3} ms", m.critical_path.get(PathKind::ALL[i]) * 1e3),
                        ]);
                    }
                    println!("busy time & critical-path attribution:");
                    println!("{t}");
                    println!(
                        "critical path total {:.3} ms (makespan {:.3} ms)",
                        m.critical_path.total() * 1e3,
                        m.makespan * 1e3
                    );
                    println!("\ntop hotspots (critical-path time per chip & kind):");
                    for h in m.hotspots.iter().take(5) {
                        println!(
                            "  chip {:>3} {:<13} {:.3} ms",
                            h.chip,
                            h.kind.label(),
                            h.seconds * 1e3
                        );
                    }
                    println!(
                        "op slack min/mean/max: {:.3} / {:.3} / {:.3} ms",
                        m.slack.0 * 1e3,
                        m.slack.1 * 1e3,
                        m.slack.2 * 1e3
                    );
                }
            }
            if let Some(path) = out {
                std::fs::write(&path, m.to_json().to_string_pretty())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("metrics artifact -> {path}");
            }
            if let Some(path) = tunelog {
                let setup = TrainingSetup::weak_scaling(mesh.num_chips());
                let (_, log) =
                    tuner
                        .tune_on_mesh_logged(&config, setup, mesh)
                        .ok_or_else(|| {
                            format!("cannot tune: a pass does not divide over mesh {mesh}")
                        })?;
                println!("\n{log}");
                std::fs::write(&path, log.to_json().to_string_pretty())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                println!("tune log -> {path}");
            }
        }
        Command::CompareRuns { a, b } => {
            let ja = load_json(&a).map_err(|e| format!("cannot load {a}: {e}"))?;
            let jb = load_json(&b).map_err(|e| format!("cannot load {b}: {e}"))?;
            match (is_serving_artifact(&ja), is_serving_artifact(&jb)) {
                (true, true) => print!("{}", FleetDiff::new(&ja, &jb)?),
                (false, false) => {
                    let ma = RunMetrics::from_json(&ja).map_err(|e| format!("{a}: {e}"))?;
                    let mb = RunMetrics::from_json(&jb).map_err(|e| format!("{b}: {e}"))?;
                    print!("{}", RunDiff::new(ma, mb));
                }
                (sa, _) => {
                    let (serving, training) = if sa { (&a, &b) } else { (&b, &a) };
                    return Err(format!(
                        "cannot compare a serving artifact ({serving}) against a training \
                         metrics artifact ({training}); diff two of the same kind"
                    ));
                }
            }
        }
        Command::Traffic => {
            let mut t = Table::new(vec!["method".into(), "torus".into(), "traffic/chip".into()]);
            for r in traffic_25d_example(cfg.elem_bytes) {
                t.row(vec![
                    r.method,
                    r.torus,
                    format!("{:.0} MB", r.per_chip_bytes as f64 / 1e6),
                ]);
            }
            println!("{t}");
        }
        Command::Mesh {
            chips,
            max_rank,
            shape,
            format,
        } => match shape {
            None => {
                let shapes = Autotuner::candidate_meshes_nd(chips, max_rank);
                match format {
                    MeshListFormat::Text => {
                        println!("{chips} chips, factorizations up to rank {max_rank}:");
                        let mut t = Table::new(vec![
                            "shape".into(),
                            "rank".into(),
                            "axes".into(),
                            "2D planes".into(),
                        ]);
                        for s in &shapes {
                            t.row(vec![
                                s.to_string(),
                                s.rank().to_string(),
                                s.axes()
                                    .iter()
                                    .map(|a| format!("{}={}", a.name(), a.size()))
                                    .collect::<Vec<_>>()
                                    .join(","),
                                MeshView::full(*s).planes().len().to_string(),
                            ]);
                        }
                        println!("{t}");
                    }
                    MeshListFormat::Json => {
                        let arr = shapes
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("shape", Json::Str(s.to_string())),
                                    ("rank", Json::Num(s.rank() as f64)),
                                    (
                                        "axes",
                                        Json::Arr(
                                            s.axes()
                                                .iter()
                                                .map(|a| {
                                                    Json::obj(vec![
                                                        ("name", Json::Str(a.name().to_string())),
                                                        ("size", Json::Num(a.size() as f64)),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "planes",
                                        Json::Num(MeshView::full(*s).planes().len() as f64),
                                    ),
                                ])
                            })
                            .collect();
                        let doc = Json::obj(vec![
                            ("chips", Json::Num(chips as f64)),
                            ("max_rank", Json::Num(max_rank as f64)),
                            ("factorizations", Json::Arr(arr)),
                        ]);
                        println!("{}", doc.to_string_pretty());
                    }
                }
            }
            Some(shape) => {
                let planes = MeshView::full(shape).planes();
                match format {
                    MeshListFormat::Text => {
                        println!("shape {shape}: {} 2D plane views", planes.len());
                        let mut t =
                            Table::new(vec!["plane".into(), "logical".into(), "chips".into()]);
                        for p in &planes {
                            let chips = p.view.chips();
                            let preview = if chips.len() <= 8 {
                                chips
                                    .iter()
                                    .map(|c| c.0.to_string())
                                    .collect::<Vec<_>>()
                                    .join(",")
                            } else {
                                format!("{} chips from {}", chips.len(), chips[0].0)
                            };
                            t.row(vec![
                                p.to_string(),
                                format!(
                                    "{}x{}",
                                    p.view.axis_len(p.row_axis).unwrap_or(0),
                                    p.view.axis_len(p.col_axis).unwrap_or(0)
                                ),
                                preview,
                            ]);
                        }
                        println!("{t}");
                    }
                    MeshListFormat::Json => {
                        let arr = planes
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("plane", Json::Str(p.to_string())),
                                    ("row_axis", Json::Str(p.row_axis.to_string())),
                                    ("col_axis", Json::Str(p.col_axis.to_string())),
                                    (
                                        "fixed",
                                        Json::Arr(
                                            p.fixed
                                                .iter()
                                                .map(|(name, i)| {
                                                    Json::obj(vec![
                                                        ("axis", Json::Str(name.to_string())),
                                                        ("index", Json::Num(*i as f64)),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "chips",
                                        Json::Arr(
                                            p.view
                                                .chips()
                                                .iter()
                                                .map(|c| Json::Num(c.0 as f64))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect();
                        let doc = Json::obj(vec![
                            ("shape", Json::Str(shape.to_string())),
                            ("planes", Json::Arr(arr)),
                        ]);
                        println!("{}", doc.to_string_pretty());
                    }
                }
            }
        },
    }
    Ok(())
}

/// The FC1 forward GeMM of `model` under weak scaling on `mesh` — the
/// problem the observability commands (`trace`, `metrics`) instrument.
fn fc1_problem(model: &LlmConfig, mesh: MeshShape) -> GemmProblem {
    let setup = TrainingSetup::weak_scaling(mesh.num_chips());
    GemmProblem::new(
        GemmShape::new(setup.tokens(), model.ffn_mult * model.hidden, model.hidden),
        Dataflow::Os,
    )
}

/// Schedules `problem` at slice count `s`, preferring the sliced block
/// size and falling back to `block = 1`.
fn schedule_fc1_at(
    torus: &Torus2d,
    problem: GemmProblem,
    s: usize,
    elem_bytes: usize,
) -> Option<Program> {
    [8usize, 1].iter().find_map(|&block| {
        MeshSlice::new(s, block)
            .schedule(torus, problem, elem_bytes)
            .ok()
    })
}

/// Instruments one FC1 forward GeMM of `model` on `mesh` at slice count
/// `s` and collects the metric artifact, labeled with model, mesh, and
/// slice count. Returns `None` when no MeshSlice schedule is legal.
pub fn fc1_metrics(
    model: Model,
    mesh: MeshShape,
    s: usize,
    windows: usize,
    cfg: &SimConfig,
) -> Option<RunMetrics> {
    let config = model.config();
    let torus = Torus2d::from_shape(mesh);
    let problem = fc1_problem(&config, mesh);
    let program = schedule_fc1_at(&torus, problem, s, cfg.elem_bytes)?;
    let (report, spans, timeline) = Engine::new(torus, cfg.clone()).run_instrumented(&program);
    Some(
        RunMetrics::collect(&report, &spans, &timeline, program.len(), windows)
            .with_meta("model", model.name())
            .with_meta("mesh", &mesh.to_string())
            .with_meta("slice_count", &s.to_string()),
    )
}

/// Reads a metric artifact written by `metrics --out`.
fn load_json(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    Json::parse(&text)
}

#[cfg(test)]
fn load_metrics(path: &str) -> Result<RunMetrics, String> {
    RunMetrics::from_json(&load_json(path)?)
}

/// Renders engine spans as Chrome trace-event JSON (the `chrome://tracing`
/// / Perfetto format): one process per chip, one thread per execution lane
/// (compute, the four link directions, host), and one complete (`"X"`)
/// event per busy interval, labeled with the program op it belongs to.
pub fn chrome_trace_json(program: &Program, spans: &[NodeSpan]) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let label = |span: &NodeSpan| -> String {
        let idx = span.op.index();
        if idx >= program.len() {
            return span.kind.name().to_string();
        }
        match &program.ops()[idx].kind {
            OpKind::Gemm { shape } => format!("gemm {shape:?}"),
            OpKind::SliceCopy { bytes } => format!("slice {bytes} B"),
            OpKind::Collective { kind, axis, .. } => format!("{kind:?} {axis}"),
            OpKind::SendRecv { dir, .. } => format!("sendrecv {dir:?}"),
            OpKind::PipelinedBcast { axis, .. } => format!("bcast {axis}"),
        }
    };
    let mut events = Vec::new();
    let mut lanes: Vec<(usize, usize, &'static str)> = spans
        .iter()
        .map(|s| (s.chip.index(), s.track.lane(), s.track.name()))
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut last_chip = usize::MAX;
    for (chip, lane, name) in lanes {
        if chip != last_chip {
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{chip},\"args\":{{\"name\":\"chip {chip}\"}}}}"
            ));
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":{chip},\"args\":{{\"sort_index\":{chip}}}}}"
            ));
            last_chip = chip;
        }
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{chip},\"tid\":{lane},\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":{chip},\"tid\":{lane},\"args\":{{\"sort_index\":{lane}}}}}"
        ));
    }
    for span in spans {
        let ts = span.start.as_secs() * 1e6;
        let dur = (span.end.as_secs() - span.start.as_secs()) * 1e6;
        events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{ts},\"dur\":{dur}}}",
            escape(&label(span)),
            span.kind.name(),
            span.chip.index(),
            span.track.lane(),
        ));
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

/// Like [`chrome_trace_json`], but with duration events in canonical
/// `(chip, lane, start, end, op)` order rather than engine completion
/// order, so two runs of the same schedule serialize byte-identically.
pub fn chrome_trace_json_sorted(program: &Program, spans: &[NodeSpan]) -> String {
    let mut sorted = spans.to_vec();
    sorted.sort_by(|a, b| {
        (a.chip.index(), a.track.lane())
            .cmp(&(b.chip.index(), b.track.lane()))
            .then(a.start.as_secs().total_cmp(&b.start.as_secs()))
            .then(a.end.as_secs().total_cmp(&b.end.as_secs()))
            .then(a.op.index().cmp(&b.op.index()))
    });
    chrome_trace_json(program, &sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_all_commands() {
        assert_eq!(
            parse(&args("autotune gpt3 256")).unwrap(),
            Command::Autotune {
                model: Model::Gpt3,
                chips: 256
            }
        );
        assert_eq!(
            parse(&args("compare megatron 64")).unwrap(),
            Command::Compare {
                model: Model::Megatron,
                chips: 64
            }
        );
        assert_eq!(
            parse(&args("sweep-slice gpt3 32x8")).unwrap(),
            Command::SweepSlice {
                model: Model::Gpt3,
                mesh: MeshShape::new(32, 8)
            }
        );
        assert_eq!(
            parse(&args("plan3d gpt3 512 256")).unwrap(),
            Command::Plan3d {
                model: Model::Gpt3,
                chips: 512,
                batch: 256
            }
        );
        assert_eq!(parse(&args("traffic")).unwrap(), Command::Traffic);
        assert_eq!(
            parse(&args("memory gpt3 256")).unwrap(),
            Command::Memory {
                model: Model::Gpt3,
                chips: 256
            }
        );
        assert_eq!(
            parse(&args("inference megatron 64")).unwrap(),
            Command::Inference {
                model: Model::Megatron,
                chips: 64
            }
        );
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_bad_input_with_usage() {
        let err = parse(&args("autotune gpt5 16")).unwrap_err();
        assert!(err.to_string().contains("unknown model"));
        assert!(err.to_string().contains("USAGE"));
        assert!(parse(&args("autotune gpt3")).is_err());
        assert!(parse(&args("sweep-slice gpt3 328")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
    }

    #[test]
    fn model_names_are_case_insensitive() {
        assert_eq!(
            parse(&args("compare GPT3 4")).unwrap(),
            Command::Compare {
                model: Model::Gpt3,
                chips: 4
            }
        );
        assert_eq!(
            parse(&args("compare Megatron-NLG 4")).unwrap(),
            Command::Compare {
                model: Model::Megatron,
                chips: 4
            }
        );
    }

    #[test]
    fn executes_cheap_commands() {
        // Smoke: these must not panic or error.
        execute(Command::Help).unwrap();
        execute(Command::Traffic).unwrap();
    }

    #[test]
    fn parses_faults_flags_in_any_order() {
        assert_eq!(
            parse(&args(
                "faults --seeds 8 --model megatron --straggler 1.5 --chips 64"
            ))
            .unwrap(),
            Command::Faults {
                model: Model::Megatron,
                chips: 64,
                straggler: 1.5,
                seeds: 8,
                threads: None
            }
        );
        // Defaults apply when flags are omitted.
        assert_eq!(
            parse(&args("faults")).unwrap(),
            Command::Faults {
                model: Model::Gpt3,
                chips: 16,
                straggler: 2.0,
                seeds: 4,
                threads: None
            }
        );
        assert_eq!(
            parse(&args("faults --threads 2")).unwrap(),
            Command::Faults {
                model: Model::Gpt3,
                chips: 16,
                straggler: 2.0,
                seeds: 4,
                threads: Some(2)
            }
        );
        assert!(parse(&args("faults --straggler 0.5")).is_err());
        assert!(parse(&args("faults --seeds 0")).is_err());
        assert!(parse(&args("faults --threads 0")).is_err());
        assert!(parse(&args("faults --chips")).is_err());
        assert!(parse(&args("faults --frobnicate 3")).is_err());
    }

    #[test]
    fn parses_trace_flags() {
        assert_eq!(
            parse(&args("trace --model gpt3 --mesh 2x4 --out /tmp/t.json")).unwrap(),
            Command::Trace {
                model: Model::Gpt3,
                mesh: MeshShape::new(2, 4),
                out: Some("/tmp/t.json".into()),
                sort: false
            }
        );
        assert_eq!(
            parse(&args("trace")).unwrap(),
            Command::Trace {
                model: Model::Gpt3,
                mesh: MeshShape::new(4, 4),
                out: None,
                sort: false
            }
        );
        // --sort takes no value and composes with other flags.
        assert_eq!(
            parse(&args("trace --sort --mesh 2x2")).unwrap(),
            Command::Trace {
                model: Model::Gpt3,
                mesh: MeshShape::new(2, 2),
                out: None,
                sort: true
            }
        );
        assert!(parse(&args("trace --mesh 44")).is_err());
    }

    #[test]
    fn parses_metrics_flags() {
        assert_eq!(
            parse(&args("metrics")).unwrap(),
            Command::Metrics {
                model: Model::Gpt3,
                mesh: MeshShape::new(4, 4),
                s: None,
                windows: 16,
                format: MetricsFormat::Text,
                out: None,
                tunelog: None,
                threads: None
            }
        );
        assert_eq!(
            parse(&args(
                "metrics --model megatron --mesh 2x4 --s 4 --windows 8 \
                 --format json --out /tmp/m.json --tunelog /tmp/t.json --threads 4"
            ))
            .unwrap(),
            Command::Metrics {
                model: Model::Megatron,
                mesh: MeshShape::new(2, 4),
                s: Some(4),
                windows: 8,
                format: MetricsFormat::Json,
                out: Some("/tmp/m.json".into()),
                tunelog: Some("/tmp/t.json".into()),
                threads: Some(4)
            }
        );
        assert!(parse(&args("metrics --format yaml")).is_err());
        assert!(parse(&args("metrics --windows 0")).is_err());
        assert!(parse(&args("metrics --s 0")).is_err());
        assert!(parse(&args("metrics --threads 0")).is_err());
        assert!(parse(&args("metrics --out")).is_err());
    }

    #[test]
    fn compare_dispatches_on_the_first_argument() {
        assert_eq!(
            parse(&args("compare gpt3 16")).unwrap(),
            Command::Compare {
                model: Model::Gpt3,
                chips: 16
            }
        );
        assert_eq!(
            parse(&args("compare a.json b.json")).unwrap(),
            Command::CompareRuns {
                a: "a.json".into(),
                b: "b.json".into()
            }
        );
        // A model with a malformed chip count is still a usage error,
        // not a silent fall-through to the run diff.
        assert!(parse(&args("compare gpt3 b.json")).is_err());
        assert!(parse(&args("compare a.json")).is_err());
    }

    #[test]
    fn mesh_subcommand_parses_and_validates() {
        assert_eq!(
            parse(&args("mesh 64")).unwrap(),
            Command::Mesh {
                chips: 64,
                max_rank: 3,
                shape: None,
                format: MeshListFormat::Text,
            }
        );
        assert_eq!(
            parse(&args("mesh 16 --max-rank 4 --shape 4x2x2 --format json")).unwrap(),
            Command::Mesh {
                chips: 16,
                max_rank: 4,
                shape: Some(MeshShape::from_sizes(&[4, 2, 2]).unwrap()),
                format: MeshListFormat::Json,
            }
        );
        // UsageError hardening: every malformed input is a typed usage
        // error, never a panic.
        assert!(parse(&args("mesh")).is_err());
        assert!(parse(&args("mesh 0")).is_err());
        assert!(parse(&args("mesh 64 --max-rank 1")).is_err());
        assert!(parse(&args("mesh 64 --max-rank 5")).is_err());
        assert!(parse(&args("mesh 64 --shape 4x0x4")).is_err());
        assert!(parse(&args("mesh 64 --shape 2x2x2x2x2")).is_err());
        assert!(parse(&args("mesh 16 --shape 4x4x4")).is_err());
        assert!(parse(&args("mesh 64 --format yaml")).is_err());
        assert!(parse(&args("mesh 64 --bogus")).is_err());
    }

    #[test]
    fn mesh_subcommand_executes() {
        for fmt in [MeshListFormat::Text, MeshListFormat::Json] {
            execute(Command::Mesh {
                chips: 64,
                max_rank: 3,
                shape: None,
                format: fmt,
            })
            .unwrap();
            execute(Command::Mesh {
                chips: 16,
                max_rank: 3,
                shape: Some(MeshShape::from_sizes(&[4, 2, 2]).unwrap()),
                format: fmt,
            })
            .unwrap();
        }
    }

    #[test]
    fn help_covers_every_subcommand() {
        for cmd in SUBCOMMANDS {
            assert!(
                USAGE.contains(&format!("meshslice {cmd}")),
                "usage text is missing '{cmd}'"
            );
            // Each subcommand must be recognized by the parser: invoking
            // it bare may complain about missing arguments, never about
            // an unknown command.
            if let Err(e) = parse(&[cmd.to_string()]) {
                assert!(
                    !e.to_string().contains("unknown command"),
                    "parse does not recognize '{cmd}'"
                );
            }
        }
    }

    #[test]
    fn trace_writes_perfetto_loadable_json() {
        let path = std::env::temp_dir().join("meshslice_cli_trace_test.json");
        execute(Command::Trace {
            model: Model::Gpt3,
            mesh: MeshShape::new(2, 2),
            out: Some(path.to_str().unwrap().to_string()),
            sort: false,
        })
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"chip 0\""));
        assert!(json.contains("\"name\":\"compute\""));
        // Every duration event carries ts and dur fields.
        let x_events = json.matches("\"ph\":\"X\"").count();
        assert!(x_events > 0);
        assert_eq!(json.matches("\"dur\":").count(), x_events);
    }

    #[test]
    fn sorted_trace_is_deterministic_and_carries_sort_indices() {
        let cfg = SimConfig::tpu_v4();
        let mesh = MeshShape::new(2, 2);
        let torus = Torus2d::from_shape(mesh);
        let problem = fc1_problem(&Model::Gpt3.config(), mesh);
        let program = schedule_fc1_at(&torus, problem, 2, cfg.elem_bytes).unwrap();
        let engine = Engine::new(torus, cfg);
        let (_, spans_a) = engine.run_spans(&program);
        let (_, spans_b) = engine.run_spans(&program);
        let a = chrome_trace_json_sorted(&program, &spans_a);
        assert_eq!(a, chrome_trace_json_sorted(&program, &spans_b));
        assert!(a.contains("\"name\":\"process_sort_index\""));
        assert!(a.contains("\"name\":\"thread_sort_index\""));
    }

    #[test]
    fn metrics_critical_path_sums_to_the_makespan() {
        let cfg = SimConfig::tpu_v4();
        let m = fc1_metrics(Model::Gpt3, MeshShape::new(2, 2), 2, 8, &cfg).unwrap();
        assert!(m.makespan > 0.0);
        assert!(
            (m.critical_path.total() - m.makespan).abs() < 1e-9 * m.makespan,
            "critical path {} vs makespan {}",
            m.critical_path.total(),
            m.makespan
        );
        assert!((0.0..=1.0).contains(&m.overlap_efficiency));
    }

    #[test]
    fn overlap_efficiency_rises_from_one_slice_to_the_tuned_count() {
        let cfg = SimConfig::tpu_v4();
        let mesh = MeshShape::new(4, 4);
        let problem = fc1_problem(&Model::Gpt3.config(), mesh);
        let tuner = Autotuner::new(cfg.clone());
        let (best_s, _) = tuner.best_slice_count(mesh, problem, cfg.elem_bytes);
        assert!(best_s > 1, "tuning should pick S > 1 on a 4x4 mesh");
        let mut svals: Vec<usize> = tuner
            .legal_slice_counts(mesh, problem)
            .into_iter()
            .filter(|&s| s <= best_s)
            .collect();
        if !svals.contains(&1) {
            svals.insert(0, 1);
        }
        let overlaps: Vec<f64> = svals
            .iter()
            .map(|&s| {
                fc1_metrics(Model::Gpt3, mesh, s, 1, &cfg)
                    .unwrap()
                    .overlap_efficiency
            })
            .collect();
        for w in overlaps.windows(2) {
            assert!(
                w[1] > w[0],
                "overlap efficiency not strictly increasing: {overlaps:?} at S {svals:?}"
            );
        }
    }

    #[test]
    fn compare_runs_diffs_two_artifacts() {
        let cfg = SimConfig::tpu_v4();
        let dir = std::env::temp_dir();
        let pa = dir.join("meshslice_cli_cmp_a.json");
        let pb = dir.join("meshslice_cli_cmp_b.json");
        for (path, s) in [(&pa, 1usize), (&pb, 2usize)] {
            let m = fc1_metrics(Model::Gpt3, MeshShape::new(2, 2), s, 4, &cfg).unwrap();
            std::fs::write(path, m.to_json().to_string_pretty()).unwrap();
        }
        let a = load_metrics(pa.to_str().unwrap()).unwrap();
        let b = load_metrics(pb.to_str().unwrap()).unwrap();
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
        let diff = RunDiff::new(a, b);
        let text = diff.to_string();
        assert!(text.contains("makespan"));
        assert!(text.contains("slice_count=1"));
        assert!(text.contains("slice_count=2"));
        // Loading a missing file reports an error instead of panicking.
        assert!(load_metrics("/nonexistent/meshslice.json").is_err());
    }

    #[test]
    fn faults_grid_prints_without_panicking() {
        execute(Command::Faults {
            model: Model::Gpt3,
            chips: 4,
            straggler: 1.5,
            seeds: 1,
            threads: Some(1),
        })
        .unwrap();
    }

    #[test]
    fn parses_resilience_flags() {
        assert_eq!(
            parse(&args("resilience")).unwrap(),
            Command::Resilience {
                model: Model::Gpt3,
                chips: 16,
                mtbf_hours: 24.0,
                steps: 200,
                seed: 42,
                threads: None
            }
        );
        assert_eq!(
            parse(&args(
                "resilience --model megatron --chips 64 --mtbf 6 --steps 50 --seed 7 --threads 2"
            ))
            .unwrap(),
            Command::Resilience {
                model: Model::Megatron,
                chips: 64,
                mtbf_hours: 6.0,
                steps: 50,
                seed: 7,
                threads: Some(2)
            }
        );
        assert!(parse(&args("resilience --mtbf 0")).is_err());
        assert!(parse(&args("resilience --mtbf nan")).is_err());
        assert!(parse(&args("resilience --mtbf inf")).is_err());
        assert!(parse(&args("resilience --steps 0")).is_err());
        assert!(parse(&args("resilience --seed -1")).is_err());
        assert!(parse(&args("resilience --threads 0")).is_err());
        assert!(parse(&args("resilience --frobnicate 1")).is_err());
    }

    #[test]
    fn zero_sizes_are_rejected_not_clamped() {
        assert!(parse(&args("trace --mesh 0x4")).is_err());
        assert!(parse(&args("sweep-slice gpt3 4x0")).is_err());
        assert!(parse(&args("autotune gpt3 0")).is_err());
        assert!(parse(&args("faults --chips 0")).is_err());
        assert!(parse(&args("resilience --chips 0")).is_err());
        assert!(parse(&args("plan3d gpt3 16 0")).is_err());
        assert!(parse(&args("plan3d gpt3 0 256")).is_err());
        assert!(parse(&args("serve --chips 0")).is_err());
        assert!(parse(&args("serve --replicas 0")).is_err());
        assert!(parse(&args("serve --requests 0")).is_err());
        assert!(parse(&args("serve --max-batch 0")).is_err());
    }

    #[test]
    fn parses_serve_flags_and_rejects_bad_values() {
        let cmd = parse(&args(
            "serve --model gpt3 --replicas 2 --qps 40 --slo-p99-ms 500 --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Serve {
                model,
                chips,
                replicas,
                qps,
                slo_p99_ms,
                seed,
                format,
                mesh,
                fail_at,
                ..
            } => {
                assert_eq!(model, Model::Gpt3);
                assert_eq!(chips, 32);
                assert_eq!(replicas, 2);
                assert_eq!(qps, 40.0);
                assert_eq!(slo_p99_ms, 500.0);
                assert_eq!(seed, 7);
                assert_eq!(format, ServeFormat::Json);
                assert_eq!(mesh, None);
                assert_eq!(fail_at, None);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&args("serve --mesh 4x4 --s 8 --fail-at 2.5 --format text")).unwrap() {
            Command::Serve {
                mesh,
                s,
                fail_at,
                format,
                ..
            } => {
                assert_eq!(mesh, Some(MeshShape::new(4, 4)));
                assert_eq!(s, 8);
                assert_eq!(fail_at, Some(2.5));
                assert_eq!(format, ServeFormat::Text);
            }
            other => panic!("parsed {other:?}"),
        }
        // The observability flags: --explain is boolean, the rest take
        // a path, and "prometheus" is a third format.
        match parse(&args(
            "serve --explain --trace-out t.jsonl --trace-chrome t.json \
             --explain-out blame.json --format prometheus",
        ))
        .unwrap()
        {
            Command::Serve {
                explain,
                trace_out,
                trace_chrome,
                explain_out,
                format,
                ..
            } => {
                assert!(explain);
                assert_eq!(trace_out.as_deref(), Some("t.jsonl"));
                assert_eq!(trace_chrome.as_deref(), Some("t.json"));
                assert_eq!(explain_out.as_deref(), Some("blame.json"));
                assert_eq!(format, ServeFormat::Prometheus);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&args("serve --qps 12")).unwrap() {
            Command::Serve {
                explain,
                trace_out,
                screen,
                ..
            } => {
                assert!(!explain);
                assert_eq!(trace_out, None);
                assert!(!screen);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&args("serve --model tiny --screen --qps 12")).unwrap() {
            Command::Serve { model, screen, .. } => {
                assert_eq!(model, Model::Tiny);
                assert!(screen);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args("serve --qps 0")).is_err());
        assert!(parse(&args("serve --qps nope")).is_err());
        assert!(parse(&args("serve --slo-p99-ms -5")).is_err());
        assert!(parse(&args("serve --fail-at -1")).is_err());
        assert!(parse(&args("serve --format yaml")).is_err());
        assert!(parse(&args("serve --bogus 1")).is_err());
        assert!(parse(&args("serve --qps")).is_err());
        assert!(parse(&args("serve --trace-out")).is_err());
    }

    #[test]
    fn parses_serve_resilience_flags_and_rejects_bad_combos() {
        match parse(&args(
            "serve --chaos-mtbf 3600 --repair 120 --retries 5 --shed 32",
        ))
        .unwrap()
        {
            Command::Serve {
                chaos_mtbf,
                repair,
                retries,
                shed,
                fail_at,
                ..
            } => {
                assert_eq!(chaos_mtbf, Some(3600.0));
                assert_eq!(repair, Some(120.0));
                assert_eq!(retries, Some(5));
                assert_eq!(shed, Some(32));
                assert_eq!(fail_at, None);
            }
            other => panic!("parsed {other:?}"),
        }
        // Router and shed work without chaos (they guard a scripted
        // death too); repair is meaningless without a chaos draw.
        assert!(parse(&args("serve --retries 3 --shed 8")).is_ok());
        assert!(parse(&args("serve --fail-at 1.0 --chaos-mtbf 60")).is_err());
        assert!(parse(&args("serve --repair 10")).is_err());
        assert!(parse(&args("serve --chaos-mtbf 0")).is_err());
        assert!(parse(&args("serve --chaos-mtbf -3")).is_err());
        assert!(parse(&args("serve --chaos-mtbf 60 --repair 0")).is_err());
        assert!(parse(&args("serve --retries 0")).is_err());
        assert!(parse(&args("serve --shed 0")).is_err());
        assert!(parse(&args("serve --chaos-mtbf")).is_err());
    }

    #[test]
    fn fail_at_past_the_arrival_horizon_is_a_usage_error() {
        let trace = vec![
            Request {
                id: 0,
                arrival_secs: 0.5,
                prompt_tokens: 8,
                output_tokens: 4,
            },
            Request {
                id: 1,
                arrival_secs: 2.0,
                prompt_tokens: 8,
                output_tokens: 4,
            },
        ];
        // No death, or a death at / before the last arrival: fine.
        assert!(check_fail_at_horizon(None, &trace).is_ok());
        assert!(check_fail_at_horizon(Some(1.0), &trace).is_ok());
        // The boundary: a death at exactly the last arrival still fires.
        assert!(check_fail_at_horizon(Some(2.0), &trace).is_ok());
        // Strictly past the horizon: the death would never fire.
        let err = check_fail_at_horizon(Some(2.5), &trace).unwrap_err();
        assert!(err.to_string().contains("past the end"), "{err}");
        assert!(err.to_string().contains("2.000"), "{err}");
        // An empty trace has no horizon to violate.
        assert!(check_fail_at_horizon(Some(10.0), &[]).is_ok());
        // End-to-end: execute surfaces the horizon error. 4 requests at
        // qps 40 arrive well inside the first second.
        let err = execute(
            parse(&args(
                "serve --model tiny --chips 4 --replicas 1 --requests 4 --qps 40 \
                 --fail-at 1000 --threads 1",
            ))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("past the end"), "{err}");
    }

    #[test]
    fn serve_surfaces_infeasible_layouts_and_bad_traces_as_errors() {
        // Megatron-NLG weights cannot fit 2 replicas of 2 chips.
        let err = execute(
            parse(&args(
                "serve --model megatron --chips 4 --replicas 2 --requests 4 --threads 1",
            ))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("cannot be served"), "{err}");
        let err = execute(parse(&args("serve --trace /nonexistent/meshslice_rates.txt")).unwrap())
            .unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        // Replicas must divide the chip pool.
        let err = execute(
            parse(&args(
                "serve --chips 32 --replicas 3 --requests 4 --threads 1",
            ))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("divide"), "{err}");
    }

    #[test]
    fn serve_writes_trace_blame_and_serving_diff_artifacts() {
        let dir = std::env::temp_dir();
        let pt = dir.join("meshslice_cli_trace.jsonl");
        let pc = dir.join("meshslice_cli_trace_chrome.json");
        let pb = dir.join("meshslice_cli_blame.json");
        let pa = dir.join("meshslice_cli_serve_a.json");
        let px = dir.join("meshslice_cli_serve_b.json");
        let base = "serve --chips 32 --replicas 2 --mesh 4x4 --s 4 --max-batch 8 --requests 24 \
                    --qps 30 --seed 3 --threads 1 --format text";
        let cmd = format!(
            "{base} --out {} --trace-out {} --trace-chrome {} --explain --explain-out {}",
            pa.display(),
            pt.display(),
            pc.display(),
            pb.display()
        );
        execute(parse(&args(&cmd)).unwrap()).unwrap();
        // JSONL trace: a run header line, then one JSON object per event.
        let jsonl = std::fs::read_to_string(&pt).unwrap();
        let first = Json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("kind").and_then(Json::as_str), Some("run"));
        assert!(jsonl.lines().count() > 24);
        for line in jsonl.lines() {
            Json::parse(line).unwrap();
        }
        // Chrome trace parses and the blame report names the buckets.
        Json::parse(&std::fs::read_to_string(&pc).unwrap()).unwrap();
        let blame = Json::parse(&std::fs::read_to_string(&pb).unwrap()).unwrap();
        assert!(blame.get("buckets").is_some());
        assert!(blame.get("p99").is_some());
        // A second run at a different qps diffs against the first.
        let cmd_b = format!(
            "serve --chips 32 --replicas 2 --mesh 4x4 --s 4 --max-batch 8 --requests 24 \
             --qps 60 --seed 3 --threads 1 --format text --out {}",
            px.display()
        );
        execute(parse(&args(&cmd_b)).unwrap()).unwrap();
        execute(Command::CompareRuns {
            a: pa.to_str().unwrap().into(),
            b: px.to_str().unwrap().into(),
        })
        .unwrap();
        // Serving vs training artifacts refuse to diff.
        let cfg = SimConfig::tpu_v4();
        let m = fc1_metrics(Model::Gpt3, MeshShape::new(2, 2), 1, 4, &cfg).unwrap();
        let pm = dir.join("meshslice_cli_serve_metrics.json");
        std::fs::write(&pm, m.to_json().to_string_pretty()).unwrap();
        let err = execute(Command::CompareRuns {
            a: pa.to_str().unwrap().into(),
            b: pm.to_str().unwrap().into(),
        })
        .unwrap_err();
        assert!(err.contains("serving artifact"), "{err}");
        for p in [&pt, &pc, &pb, &pa, &px, &pm] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn tiny_model_screened_tune_writes_an_artifact() {
        // The CI fast-tune smoke in miniature: tune the tiny model with
        // successive-halving screening and check the artifact lands.
        let dir = std::env::temp_dir();
        let out = dir.join("meshslice_cli_tiny_tune.json");
        let cmd = format!(
            "serve --model tiny --chips 8 --replicas 2 --requests 24 --qps 50 \
             --seed 5 --threads 1 --screen --out {}",
            out.display()
        );
        execute(parse(&args(&cmd)).unwrap()).unwrap();
        let artifact = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(
            artifact.get("model").and_then(Json::as_str),
            Some("tiny"),
            "{artifact:?}"
        );
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn io_failures_surface_as_errors_not_panics() {
        let err = execute(Command::CompareRuns {
            a: "/nonexistent/meshslice_a.json".into(),
            b: "/nonexistent/meshslice_b.json".into(),
        })
        .unwrap_err();
        assert!(err.contains("cannot load"), "{err}");
        let err = execute(Command::Trace {
            model: Model::Gpt3,
            mesh: MeshShape::new(2, 2),
            out: Some("/nonexistent/dir/meshslice_t.json".into()),
            sort: false,
        })
        .unwrap_err();
        assert!(err.contains("cannot write"), "{err}");
    }

    #[test]
    fn resilience_sweep_reports_goodput() {
        execute(Command::Resilience {
            model: Model::Gpt3,
            chips: 4,
            mtbf_hours: 2.0,
            steps: 20,
            seed: 7,
            threads: Some(1),
        })
        .unwrap();
    }
}
