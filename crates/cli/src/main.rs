//! The `meshslice` command-line tool. See [`meshslice_cli`] for the
//! commands.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match meshslice_cli::parse(&args) {
        Ok(cmd) => {
            meshslice_cli::execute(cmd);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}
