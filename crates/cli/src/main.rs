//! The `meshslice` command-line tool. See [`meshslice_cli`] for the
//! commands.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match meshslice_cli::parse(&args).map(meshslice_cli::execute) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(err)) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}
