//! Serving artifact schema smoke: run a small fleet simulation, validate
//! the JSON document `meshslice serve` emits against the checked-in
//! schema, and reject malformed documents. This is the test the CI
//! serving job runs.

use meshslice::llm::LlmConfig;
use meshslice::{MeshShape, SimConfig};
use meshslice_faults::FailureSpec;
use meshslice_recovery::RepairModel;
use meshslice_serving::{
    simulate_fleet, ChaosSpec, ChipDeath, RouterPolicy, ServingSpec, ShedPolicy,
};
use meshslice_telemetry::{validate, Json};

fn serving_schema() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/serving.schema.json"
    );
    Json::parse(&std::fs::read_to_string(path).expect("schema file")).expect("schema parses")
}

fn tiny() -> LlmConfig {
    LlmConfig {
        name: "tiny".to_string(),
        hidden: 256,
        heads: 4,
        layers: 2,
        ffn_mult: 4,
    }
}

fn small_artifact() -> Json {
    let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, 20.0);
    spec.num_requests = 60;
    spec.seed = 7;
    simulate_fleet(&spec, &SimConfig::tpu_v4())
        .expect("tiny fleet simulates")
        .to_json()
}

#[test]
fn serving_artifact_conforms_to_the_checked_in_schema() {
    let doc = small_artifact();
    let errors = validate(&serving_schema(), &doc);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    // v2 additions: the time-series section is always present and has
    // at least one window per replica; downtime_s only appears under an
    // injected failure.
    let series = doc.get("timeseries").expect("timeseries section");
    let replicas = series.get("replicas").and_then(Json::as_arr).unwrap();
    assert_eq!(replicas.len(), 2);
    for r in replicas {
        assert!(!r.get("windows").and_then(Json::as_arr).unwrap().is_empty());
    }
    assert!(doc.get("downtime_s").is_none());
}

#[test]
fn failover_artifact_conforms_too() {
    let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, 20.0);
    spec.num_requests = 60;
    spec.failure = Some(ChipDeath {
        replica: 0,
        at_secs: 0.5,
    });
    let report = simulate_fleet(&spec, &SimConfig::tpu_v4()).expect("simulates through death");
    assert_eq!(report.failovers, 1);
    let doc = report.to_json();
    let errors = validate(&serving_schema(), &doc);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    // The chip death shows up as a downtime breakdown that the
    // per-replica outage accounting corroborates.
    let downtime = doc.get("downtime_s").expect("downtime breakdown");
    assert!(downtime.get("detection").and_then(Json::as_f64).unwrap() > 0.0);
    let per_replica = doc.get("per_replica").and_then(Json::as_arr).unwrap();
    let outage: f64 = per_replica
        .iter()
        .map(|r| r.get("outage_secs").and_then(Json::as_f64).unwrap())
        .sum();
    assert!(outage > 0.0);
}

#[test]
fn chaos_artifact_conforms_and_records_resilience_counters() {
    // Seeded multi-death chaos with routing, shedding, and repair on: the
    // v3 artifact must validate and carry the resilience counters.
    let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 4, 40.0);
    spec.num_requests = 120;
    spec.seed = 7;
    spec.chaos = Some(
        ChaosSpec::new(FailureSpec::chip_mtbf(4.0, 3.0), 11)
            .with_repair(RepairModel::exponential(1.0)),
    );
    spec.router = Some(RouterPolicy::for_slo(0.5));
    spec.shed = Some(ShedPolicy::for_queue_depth(8).with_degraded_cap(8));
    let report = simulate_fleet(&spec, &SimConfig::tpu_v4()).expect("chaos fleet simulates");
    assert!(
        report.failovers >= 1,
        "MTBF 4 s across 4 replicas must fire"
    );
    assert_eq!(
        report.completed + report.rejected + report.shed + report.timed_out,
        report.offered,
        "every request must reach exactly one terminal outcome"
    );
    let doc = report.to_json();
    let errors = validate(&serving_schema(), &doc);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    for key in [
        "shed",
        "timed_out",
        "retries",
        "redistributed",
        "degraded_secs",
    ] {
        assert!(doc.get(key).is_some(), "missing {key}");
    }
    assert!(
        doc.get("downtime_s").is_some(),
        "fired draws price downtime"
    );
}

#[test]
fn schema_rejects_malformed_artifacts() {
    let schema = serving_schema();
    let doc = small_artifact();

    // Drop a required section.
    let Json::Obj(pairs) = &doc else { panic!() };
    let without_ttft = Json::Obj(
        pairs
            .iter()
            .filter(|(k, _)| k != "ttft_ms")
            .cloned()
            .collect(),
    );
    let errors = validate(&schema, &without_ttft);
    assert!(errors.iter().any(|(_, m)| m.contains("ttft_ms")));

    // Push a bounded gauge out of range.
    let out_of_range = Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                if k == "slo_attainment" {
                    (k.clone(), Json::Num(1.5))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    );
    let errors = validate(&schema, &out_of_range);
    assert!(
        errors.iter().any(|(p, _)| p.contains("slo_attainment")),
        "{errors:?}"
    );

    // Break an integer gauge with a fraction.
    let fractional = Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                if k == "completed" {
                    (k.clone(), Json::Num(1.25))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    );
    let errors = validate(&schema, &fractional);
    assert!(
        errors.iter().any(|(p, _)| p.contains("completed")),
        "{errors:?}"
    );
}

#[test]
fn committed_serving_bench_artifact_conforms_to_its_schema() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let schema_text = std::fs::read_to_string(format!("{root}/schemas/serving_bench.schema.json"))
        .expect("serving bench schema file");
    let schema = Json::parse(&schema_text).expect("schema parses");
    let doc_text = std::fs::read_to_string(format!("{root}/BENCH_serving.json"))
        .expect("committed BENCH_serving.json");
    let doc = Json::parse(&doc_text).expect("artifact parses");
    let errors = validate(&schema, &doc);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    // The tuner-speed rung must record its race and both determinism
    // gates; the >=3x budget is only enforced on the committed full-
    // scale artifact (quick reruns are too small to be meaningful).
    let tune = doc.get("tune").expect("tune section");
    let speedup = tune
        .get("tune_speedup")
        .and_then(Json::as_f64)
        .expect("tune_speedup recorded");
    if doc.get("scale").and_then(Json::as_str) == Some("full") {
        assert!(speedup >= 3.0, "committed speedup {speedup} below 3.0x");
    }
}
