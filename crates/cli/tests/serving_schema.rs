//! Serving artifact schema smoke: run a small fleet simulation, validate
//! the JSON document `meshslice serve` emits against the checked-in
//! schema, and reject malformed documents. This is the test the CI
//! serving job runs.

use meshslice::llm::LlmConfig;
use meshslice::{MeshShape, SimConfig};
use meshslice_serving::{simulate_fleet, ChipDeath, ServingSpec};
use meshslice_telemetry::{validate, Json};

fn serving_schema() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/serving.schema.json"
    );
    Json::parse(&std::fs::read_to_string(path).expect("schema file")).expect("schema parses")
}

fn tiny() -> LlmConfig {
    LlmConfig {
        name: "tiny".to_string(),
        hidden: 256,
        heads: 4,
        layers: 2,
        ffn_mult: 4,
    }
}

fn small_artifact() -> Json {
    let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, 20.0);
    spec.num_requests = 60;
    spec.seed = 7;
    simulate_fleet(&spec, &SimConfig::tpu_v4())
        .expect("tiny fleet simulates")
        .to_json()
}

#[test]
fn serving_artifact_conforms_to_the_checked_in_schema() {
    let errors = validate(&serving_schema(), &small_artifact());
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}

#[test]
fn failover_artifact_conforms_too() {
    let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, 20.0);
    spec.num_requests = 60;
    spec.failure = Some(ChipDeath {
        replica: 0,
        at_secs: 0.5,
    });
    let report = simulate_fleet(&spec, &SimConfig::tpu_v4()).expect("simulates through death");
    assert_eq!(report.failovers, 1);
    let errors = validate(&serving_schema(), &report.to_json());
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}

#[test]
fn schema_rejects_malformed_artifacts() {
    let schema = serving_schema();
    let doc = small_artifact();

    // Drop a required section.
    let Json::Obj(pairs) = &doc else { panic!() };
    let without_ttft = Json::Obj(
        pairs
            .iter()
            .filter(|(k, _)| k != "ttft_ms")
            .cloned()
            .collect(),
    );
    let errors = validate(&schema, &without_ttft);
    assert!(errors.iter().any(|(_, m)| m.contains("ttft_ms")));

    // Push a bounded gauge out of range.
    let out_of_range = Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                if k == "slo_attainment" {
                    (k.clone(), Json::Num(1.5))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    );
    let errors = validate(&schema, &out_of_range);
    assert!(
        errors.iter().any(|(p, _)| p.contains("slo_attainment")),
        "{errors:?}"
    );

    // Break an integer gauge with a fraction.
    let fractional = Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                if k == "completed" {
                    (k.clone(), Json::Num(1.25))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    );
    let errors = validate(&schema, &fractional);
    assert!(
        errors.iter().any(|(p, _)| p.contains("completed")),
        "{errors:?}"
    );
}
