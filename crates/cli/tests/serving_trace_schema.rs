//! Serving trace schema smoke: record a small fleet trace, validate
//! every JSONL line `meshslice serve --trace-out` emits against the
//! checked-in schema, and reject malformed lines. This is the test the
//! CI serving job runs alongside the artifact schema smoke.

use meshslice::llm::LlmConfig;
use meshslice::{MeshShape, SimConfig};
use meshslice_serving::{simulate_fleet_traced, ChipDeath, ServingSpec};
use meshslice_telemetry::{validate, Json};

fn trace_schema() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/serving_trace.schema.json"
    );
    Json::parse(&std::fs::read_to_string(path).expect("schema file")).expect("schema parses")
}

fn tiny() -> LlmConfig {
    LlmConfig {
        name: "tiny".to_string(),
        hidden: 256,
        heads: 4,
        layers: 2,
        ffn_mult: 4,
    }
}

fn small_trace() -> String {
    // Overload (qps far above capacity) plus a mid-run chip death so the
    // stream exercises preemption, outage, and re-prefill events.
    let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, 2000.0);
    spec.num_requests = 80;
    spec.seed = 7;
    spec.failure = Some(ChipDeath {
        replica: 0,
        at_secs: 0.05,
    });
    let (_, trace) =
        simulate_fleet_traced(&spec, &SimConfig::tpu_v4(), 1).expect("tiny fleet simulates");
    trace.check_invariants().expect("trace invariants hold");
    trace.to_jsonl()
}

#[test]
fn every_trace_line_conforms_to_the_checked_in_schema() {
    let schema = trace_schema();
    let jsonl = small_trace();
    let mut kinds = std::collections::BTreeSet::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", lineno + 1));
        let errors = validate(&schema, &doc);
        assert!(
            errors.is_empty(),
            "line {} violates the schema: {errors:?}\n{line}",
            lineno + 1
        );
        kinds.insert(doc.get("kind").and_then(Json::as_str).unwrap().to_string());
    }
    // A failover run exercises the whole event vocabulary.
    for kind in [
        "run",
        "arrival",
        "queued",
        "prefill",
        "first_token",
        "decode",
        "preempt",
        "outage",
        "complete",
    ] {
        assert!(kinds.contains(kind), "no '{kind}' line in:\n{kinds:?}");
    }
}

#[test]
fn schema_rejects_malformed_trace_lines() {
    let schema = trace_schema();

    // An unknown event kind.
    let bad_kind = Json::parse(r#"{"kind":"teleport","replica":0,"id":1,"t":0.5}"#).unwrap();
    let errors = validate(&schema, &bad_kind);
    assert!(errors.iter().any(|(p, _)| p.contains("kind")), "{errors:?}");

    // A negative timestamp.
    let bad_time = Json::parse(r#"{"kind":"arrival","replica":0,"id":1,"t":-0.5}"#).unwrap();
    let errors = validate(&schema, &bad_time);
    assert!(errors.iter().any(|(p, _)| p.contains("t")), "{errors:?}");

    // A line with no kind at all.
    let no_kind = Json::parse(r#"{"replica":0,"id":1,"t":0.5}"#).unwrap();
    let errors = validate(&schema, &no_kind);
    assert!(errors.iter().any(|(_, m)| m.contains("kind")), "{errors:?}");
}
