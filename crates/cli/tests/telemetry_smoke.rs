//! End-to-end telemetry smoke: generate the metric artifact and the
//! Chrome trace on a small mesh, validate the artifact against the
//! checked-in JSON schema, and reject malformed documents. This is the
//! test the CI telemetry job runs.

use meshslice::{MeshShape, SimConfig};
use meshslice_cli::{chrome_trace_json, chrome_trace_json_sorted, fc1_metrics, Model};
use meshslice_telemetry::{validate, Json};

fn metrics_schema() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/metrics.schema.json"
    );
    Json::parse(&std::fs::read_to_string(path).expect("schema file")).expect("schema parses")
}

fn small_artifact() -> Json {
    let cfg = SimConfig::tpu_v4();
    fc1_metrics(Model::Gpt3, MeshShape::new(2, 2), 2, 8, &cfg)
        .expect("2x2 gpt3 FC1 schedules")
        .to_json()
}

#[test]
fn metrics_artifact_conforms_to_the_checked_in_schema() {
    let errors = validate(&metrics_schema(), &small_artifact());
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}

#[test]
fn schema_rejects_malformed_artifacts() {
    let schema = metrics_schema();
    let doc = small_artifact();

    // Drop a required section.
    let Json::Obj(pairs) = &doc else { panic!() };
    let without_buckets = Json::Obj(
        pairs
            .iter()
            .filter(|(k, _)| k != "buckets_s")
            .cloned()
            .collect(),
    );
    let errors = validate(&schema, &without_buckets);
    assert!(errors.iter().any(|(_, m)| m.contains("buckets_s")));

    // Push a bounded gauge out of range.
    let out_of_range = Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                if k == "overlap_efficiency" {
                    (k.clone(), Json::Num(1.5))
                } else {
                    (k.clone(), v.clone())
                }
            })
            .collect(),
    );
    let errors = validate(&schema, &out_of_range);
    assert!(
        errors.iter().any(|(p, _)| p.contains("overlap_efficiency")),
        "{errors:?}"
    );
}

#[test]
fn trace_events_are_well_formed_json() {
    use meshslice::llm::{LlmConfig, TrainingSetup};
    use meshslice::{Dataflow, DistributedGemm, GemmProblem, GemmShape, MeshSlice};
    use meshslice_mesh::Torus2d;
    use meshslice_sim::Engine;

    let cfg = SimConfig::tpu_v4();
    let mesh = MeshShape::new(2, 2);
    let torus = Torus2d::from_shape(mesh);
    let model = LlmConfig::gpt3();
    let setup = TrainingSetup::weak_scaling(mesh.num_chips());
    let problem = GemmProblem::new(
        GemmShape::new(setup.tokens(), model.ffn_mult * model.hidden, model.hidden),
        Dataflow::Os,
    );
    let program = MeshSlice::new(2, 8)
        .schedule(&torus, problem, cfg.elem_bytes)
        .expect("schedules");
    let (_, spans) = Engine::new(torus, cfg).run_spans(&program);

    for json in [
        chrome_trace_json(&program, &spans),
        chrome_trace_json_sorted(&program, &spans),
    ] {
        let doc = Json::parse(&json).expect("trace is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut x_events = 0;
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            assert!(e.get("pid").and_then(Json::as_usize).is_some(), "pid");
            assert!(e.get("name").and_then(Json::as_str).is_some(), "name");
            match ph {
                "M" => {}
                "X" => {
                    x_events += 1;
                    assert!(e.get("tid").and_then(Json::as_usize).is_some());
                    assert!(e.get("cat").and_then(Json::as_str).is_some());
                    let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
                    let dur = e.get("dur").and_then(Json::as_f64).expect("dur");
                    assert!(ts >= 0.0 && dur >= 0.0);
                }
                other => panic!("unexpected event phase {other}"),
            }
        }
        assert_eq!(x_events, spans.len());
    }
}
