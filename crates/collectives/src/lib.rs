//! Functional collective communication over a simulated 2D mesh.
//!
//! These operations really move matrix data between per-chip buffers, so the
//! distributed GeMM algorithms built on top of them can be verified
//! numerically against dense GeMM. Timing is modeled elsewhere
//! (`meshslice-sim`); this crate is purely about *what* each collective
//! computes:
//!
//! - [`all_gather`] — ring AllGather (`AG_row` / `AG_col` of the paper).
//! - [`reduce_scatter`] — ring ReduceScatter (`RdS_row` / `RdS_col`).
//! - [`broadcast`] / [`reduce`] — the per-ring one-to-all and all-to-one
//!   primitives SUMMA is built on.
//! - [`shift`] / [`shift_by`] — SendRecv rotation, the primitive of Cannon's
//!   algorithm and of Wang-style collective decomposition.
//!
//! All operations take the full cluster state (one [`Matrix`] per chip, in
//! [`ChipId`] order) and return the new cluster state, which keeps the
//! executor deterministic and single-threaded.
//!
//! # Example
//!
//! ```
//! use meshslice_collectives::all_gather;
//! use meshslice_mesh::{CommAxis, Torus2d};
//! use meshslice_tensor::Matrix;
//!
//! let mesh = Torus2d::new(2, 1);
//! let shards = vec![Matrix::identity(1), Matrix::zeros(1, 1)];
//! // InterRow all-gather stacks the column's shards vertically on each chip.
//! let gathered = all_gather(&mesh, CommAxis::InterRow, &shards);
//! assert_eq!(gathered[0].dims(), (2, 1));
//! assert_eq!(gathered[0], gathered[1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use meshslice_mesh::{ChipId, CommAxis, Coord, Torus2d};
use meshslice_tensor::Matrix;

fn check_cluster_state(mesh: &Torus2d, state: &[Matrix]) {
    assert_eq!(
        state.len(),
        mesh.num_chips(),
        "cluster state has {} entries for a {}-chip mesh",
        state.len(),
        mesh.num_chips()
    );
}

/// Concatenates per-ring shards on every chip (ring AllGather).
///
/// For [`CommAxis::InterRow`] the result on every chip of a mesh column is
/// the vertical stack of that column's shards (in mesh-row order); for
/// [`CommAxis::InterCol`] it is the horizontal concatenation of the row's
/// shards (in mesh-column order). This matches the shard layout convention
/// of §2.3.1: shard `(i, j)` holds the `(i, j)` block of the global matrix.
///
/// # Panics
///
/// Panics if `shards.len() != mesh.num_chips()` or shard dimensions are
/// incompatible within a ring.
pub fn all_gather(mesh: &Torus2d, axis: CommAxis, shards: &[Matrix]) -> Vec<Matrix> {
    check_cluster_state(mesh, shards);
    let mut out: Vec<Option<Matrix>> = vec![None; mesh.num_chips()];
    for ring in mesh.rings(axis) {
        let parts: Vec<Matrix> = ring
            .members()
            .iter()
            .map(|&c| shards[c.index()].clone())
            .collect();
        let gathered = match axis {
            CommAxis::InterRow => Matrix::vcat(&parts),
            CommAxis::InterCol => Matrix::hcat(&parts),
        };
        for &chip in ring.members() {
            out[chip.index()] = Some(gathered.clone());
        }
    }
    out.into_iter()
        .map(|m| m.expect("ring covered chip"))
        .collect()
}

/// Sums per-ring partials and scatters the result (ring ReduceScatter).
///
/// Every chip contributes a full-size partial; the element-wise sum over the
/// ring is split evenly (by rows for [`CommAxis::InterRow`], by columns for
/// [`CommAxis::InterCol`]) and the chip at ring position `p` receives part
/// `p`.
///
/// # Panics
///
/// Panics if the state size is wrong, partials within a ring have different
/// dimensions, or the scatter dimension is not divisible by the ring length.
pub fn reduce_scatter(mesh: &Torus2d, axis: CommAxis, partials: &[Matrix]) -> Vec<Matrix> {
    check_cluster_state(mesh, partials);
    let mut out: Vec<Option<Matrix>> = vec![None; mesh.num_chips()];
    for ring in mesh.rings(axis) {
        let mut sum = partials[ring.members()[0].index()].clone();
        for &chip in &ring.members()[1..] {
            sum += &partials[chip.index()];
        }
        let parts = match axis {
            CommAxis::InterRow => sum.vsplit(ring.len()),
            CommAxis::InterCol => sum.hsplit(ring.len()),
        };
        for (p, &chip) in ring.members().iter().enumerate() {
            out[chip.index()] = Some(parts[p].clone());
        }
    }
    out.into_iter()
        .map(|m| m.expect("ring covered chip"))
        .collect()
}

/// Ring AllGather with one permanently failed rank: the ring through
/// `dead` is re-formed from its survivors (in original ring order), and
/// the gather concatenates only *their* shards — after a failure the
/// global matrix has been redistributed over the surviving ranks (the
/// dead rank's shard was restored from checkpoint onto its successor), so
/// the survivors' shards alone partition it.
///
/// Rings that do not contain `dead` behave exactly like [`all_gather`].
/// The dead chip's slot in the returned state is its input, passed
/// through unchanged — it must be ignored by the caller.
///
/// # Panics
///
/// Panics if the state size is wrong, `dead` is outside the mesh, or
/// shard dimensions are incompatible within a re-formed ring.
pub fn degraded_all_gather(
    mesh: &Torus2d,
    axis: CommAxis,
    dead: ChipId,
    shards: &[Matrix],
) -> Vec<Matrix> {
    check_cluster_state(mesh, shards);
    assert!(
        dead.index() < mesh.num_chips(),
        "dead rank {} outside {}-chip mesh",
        dead.index(),
        mesh.num_chips()
    );
    let mut out: Vec<Option<Matrix>> = vec![None; mesh.num_chips()];
    for ring in mesh.rings(axis) {
        let live: Vec<ChipId> = ring
            .members()
            .iter()
            .copied()
            .filter(|&c| c != dead)
            .collect();
        if live.is_empty() {
            // A singleton ring of just the dead chip: nothing to gather.
            out[dead.index()] = Some(shards[dead.index()].clone());
            continue;
        }
        let parts: Vec<Matrix> = live.iter().map(|&c| shards[c.index()].clone()).collect();
        let gathered = match axis {
            CommAxis::InterRow => Matrix::vcat(&parts),
            CommAxis::InterCol => Matrix::hcat(&parts),
        };
        for &chip in &live {
            out[chip.index()] = Some(gathered.clone());
        }
        if live.len() < ring.len() {
            out[dead.index()] = Some(shards[dead.index()].clone());
        }
    }
    out.into_iter()
        .map(|m| m.expect("ring covered chip"))
        .collect()
}

/// Ring ReduceScatter with one permanently failed rank: the ring through
/// `dead` is re-formed from its survivors, their partials (which, after
/// redistribution, sum to the full result on their own) are summed, and
/// the sum is split evenly over the *surviving* ring positions — the chip
/// at re-formed position `p` receives part `p`.
///
/// Rings that do not contain `dead` behave exactly like
/// [`reduce_scatter`]. The dead chip's slot in the returned state is its
/// input, passed through unchanged — it must be ignored by the caller.
///
/// # Panics
///
/// Panics if the state size is wrong, `dead` is outside the mesh,
/// partials within a re-formed ring have different dimensions, or the
/// scatter dimension is not divisible by the survivor count.
pub fn degraded_reduce_scatter(
    mesh: &Torus2d,
    axis: CommAxis,
    dead: ChipId,
    partials: &[Matrix],
) -> Vec<Matrix> {
    check_cluster_state(mesh, partials);
    assert!(
        dead.index() < mesh.num_chips(),
        "dead rank {} outside {}-chip mesh",
        dead.index(),
        mesh.num_chips()
    );
    let mut out: Vec<Option<Matrix>> = vec![None; mesh.num_chips()];
    for ring in mesh.rings(axis) {
        let live: Vec<ChipId> = ring
            .members()
            .iter()
            .copied()
            .filter(|&c| c != dead)
            .collect();
        if live.is_empty() {
            out[dead.index()] = Some(partials[dead.index()].clone());
            continue;
        }
        let mut sum = partials[live[0].index()].clone();
        for &chip in &live[1..] {
            sum += &partials[chip.index()];
        }
        let parts = match axis {
            CommAxis::InterRow => sum.vsplit(live.len()),
            CommAxis::InterCol => sum.hsplit(live.len()),
        };
        for (p, &chip) in live.iter().enumerate() {
            out[chip.index()] = Some(parts[p].clone());
        }
        if live.len() < ring.len() {
            out[dead.index()] = Some(partials[dead.index()].clone());
        }
    }
    out.into_iter()
        .map(|m| m.expect("ring covered chip"))
        .collect()
}

/// Broadcasts the value held at ring position `root_pos` to every chip of
/// its ring (the `bcast_row` / `bcast_col` primitive of SUMMA).
///
/// # Panics
///
/// Panics if the state size is wrong or `root_pos` is outside any ring.
pub fn broadcast(
    mesh: &Torus2d,
    axis: CommAxis,
    root_pos: usize,
    values: &[Matrix],
) -> Vec<Matrix> {
    check_cluster_state(mesh, values);
    let mut out: Vec<Option<Matrix>> = vec![None; mesh.num_chips()];
    for ring in mesh.rings(axis) {
        assert!(
            root_pos < ring.len(),
            "root position {root_pos} outside ring of {} chips",
            ring.len()
        );
        let root = ring.members()[root_pos];
        for &chip in ring.members() {
            out[chip.index()] = Some(values[root.index()].clone());
        }
    }
    out.into_iter()
        .map(|m| m.expect("ring covered chip"))
        .collect()
}

/// Sums every ring member's partial into the chip at ring position
/// `root_pos` (the `reduce` primitive of SUMMA); other chips keep their
/// original value.
///
/// Returns the new cluster state; only roots are updated.
///
/// # Panics
///
/// Panics if the state size is wrong, `root_pos` is outside any ring, or
/// partials within a ring have different dimensions.
pub fn reduce(mesh: &Torus2d, axis: CommAxis, root_pos: usize, partials: &[Matrix]) -> Vec<Matrix> {
    check_cluster_state(mesh, partials);
    let mut out: Vec<Matrix> = partials.to_vec();
    for ring in mesh.rings(axis) {
        assert!(
            root_pos < ring.len(),
            "root position {root_pos} outside ring of {} chips",
            ring.len()
        );
        let mut sum = partials[ring.members()[0].index()].clone();
        for &chip in &ring.members()[1..] {
            sum += &partials[chip.index()];
        }
        out[ring.members()[root_pos].index()] = sum;
    }
    out
}

/// Rotates values forward along the ring by `steps` (SendRecv shift): the
/// chip at ring position `p` receives the value previously held at position
/// `p − steps` (mod ring length).
///
/// A single Cannon step is `shift(…, 1)`.
///
/// # Panics
///
/// Panics if the state size is wrong.
pub fn shift(mesh: &Torus2d, axis: CommAxis, steps: usize, values: &[Matrix]) -> Vec<Matrix> {
    shift_by(mesh, axis, |_| steps, values)
}

/// Rotates values along the ring with a per-chip step count: the chip at
/// ring position `p` receives the value from position `p − steps(coord)`
/// where `coord` is the *receiving* chip's coordinate.
///
/// Cannon's initial skew uses this (see the skew test in this module for
/// the exact orientation).
///
/// # Panics
///
/// Panics if the state size is wrong.
pub fn shift_by(
    mesh: &Torus2d,
    axis: CommAxis,
    steps: impl Fn(Coord) -> usize,
    values: &[Matrix],
) -> Vec<Matrix> {
    check_cluster_state(mesh, values);
    let mut out: Vec<Option<Matrix>> = vec![None; mesh.num_chips()];
    for ring in mesh.rings(axis) {
        let n = ring.len();
        for (p, &chip) in ring.members().iter().enumerate() {
            let s = steps(mesh.coord_of(chip)) % n;
            let src = ring.members()[(p + n - s) % n];
            out[chip.index()] = Some(values[src.index()].clone());
        }
    }
    out.into_iter()
        .map(|m| m.expect("ring covered chip"))
        .collect()
}

/// Applies a function to every chip's value, producing a new cluster state.
///
/// A convenience for writing per-chip compute steps in the same style as the
/// collectives.
///
/// # Panics
///
/// Panics if the state size is wrong.
pub fn map_chips(
    mesh: &Torus2d,
    values: &[Matrix],
    mut f: impl FnMut(ChipId, &Matrix) -> Matrix,
) -> Vec<Matrix> {
    check_cluster_state(mesh, values);
    values
        .iter()
        .enumerate()
        .map(|(i, m)| f(ChipId(i), m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_tensor::shard::ShardGrid;

    fn state_from_grid(grid: &ShardGrid) -> Vec<Matrix> {
        grid.iter().map(|(_, s)| s.clone()).collect()
    }

    #[test]
    fn all_gather_inter_col_reassembles_rows() {
        // AG_col on a row gathers the row's shards side by side: the result
        // on chip (i, j) is the full i-th block row of the global matrix.
        let global = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f32);
        let mesh = Torus2d::new(2, 3);
        let grid = ShardGrid::partition(&global, 2, 3);
        let gathered = all_gather(&mesh, CommAxis::InterCol, &state_from_grid(&grid));
        for chip in mesh.chips() {
            let coord = mesh.coord_of(chip);
            let expect = global.block(coord.row() * 2, 0, 2, 6);
            assert_eq!(gathered[chip.index()], expect, "chip {coord}");
        }
    }

    #[test]
    fn all_gather_inter_row_reassembles_cols() {
        let global = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f32);
        let mesh = Torus2d::new(3, 2);
        let grid = ShardGrid::partition(&global, 3, 2);
        let gathered = all_gather(&mesh, CommAxis::InterRow, &state_from_grid(&grid));
        for chip in mesh.chips() {
            let coord = mesh.coord_of(chip);
            let expect = global.block(0, coord.col() * 2, 6, 2);
            assert_eq!(gathered[chip.index()], expect, "chip {coord}");
        }
    }

    #[test]
    fn reduce_scatter_sums_and_splits() {
        let mesh = Torus2d::new(1, 3);
        // Each chip contributes a 1x6 partial of all ones.
        let partials = vec![Matrix::from_fn(1, 6, |_, _| 1.0); 3];
        let scattered = reduce_scatter(&mesh, CommAxis::InterCol, &partials);
        for (j, part) in scattered.iter().enumerate() {
            assert_eq!(part.dims(), (1, 2), "chip {j}");
            assert!(part.as_slice().iter().all(|&v| v == 3.0));
        }
    }

    #[test]
    fn reduce_scatter_positions_match_shard_layout() {
        // Chip at ring position p must receive the p-th split, so that
        // the scattered output lands where shard (p, j) lives.
        let mesh = Torus2d::new(2, 1);
        let a = Matrix::from_fn(4, 1, |i, _| i as f32);
        let partials = vec![a.clone(), Matrix::zeros(4, 1)];
        let scattered = reduce_scatter(&mesh, CommAxis::InterRow, &partials);
        assert_eq!(scattered[0].as_slice(), &[0.0, 1.0]);
        assert_eq!(scattered[1].as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn all_gather_then_reduce_scatter_round_trips() {
        // RdS of P identical copies divided by P returns the AG inputs.
        let mesh = Torus2d::new(4, 1);
        let shards: Vec<Matrix> = (0..4).map(|i| Matrix::random(2, 3, i as u64)).collect();
        let gathered = all_gather(&mesh, CommAxis::InterRow, &shards);
        let mut scattered = reduce_scatter(&mesh, CommAxis::InterRow, &gathered);
        for (back, orig) in scattered.iter_mut().zip(&shards) {
            back.scale(1.0 / 4.0);
            assert!(back.approx_eq(orig, 1e-6));
        }
    }

    #[test]
    fn broadcast_copies_the_root_value() {
        let mesh = Torus2d::new(3, 2);
        let values: Vec<Matrix> = (0..6)
            .map(|i| Matrix::from_fn(1, 1, |_, _| i as f32))
            .collect();
        // Broadcast along columns (InterRow) from ring position 1 (= mesh row 1).
        let bc = broadcast(&mesh, CommAxis::InterRow, 1, &values);
        for chip in mesh.chips() {
            let coord = mesh.coord_of(chip);
            let root = mesh.chip_at(Coord::new(1, coord.col()));
            assert_eq!(bc[chip.index()], values[root.index()]);
        }
    }

    #[test]
    fn reduce_accumulates_into_root_only() {
        let mesh = Torus2d::new(1, 4);
        let partials = vec![Matrix::from_fn(1, 1, |_, _| 2.0); 4];
        let reduced = reduce(&mesh, CommAxis::InterCol, 2, &partials);
        assert_eq!(reduced[2][(0, 0)], 8.0);
        assert_eq!(reduced[0][(0, 0)], 2.0); // non-roots untouched
    }

    #[test]
    fn shift_rotates_forward() {
        let mesh = Torus2d::new(3, 1);
        let values: Vec<Matrix> = (0..3)
            .map(|i| Matrix::from_fn(1, 1, |_, _| i as f32))
            .collect();
        let shifted = shift(&mesh, CommAxis::InterRow, 1, &values);
        // Chip at position p receives from p-1: position 0 gets value 2.
        assert_eq!(shifted[0][(0, 0)], 2.0);
        assert_eq!(shifted[1][(0, 0)], 0.0);
        assert_eq!(shifted[2][(0, 0)], 1.0);
    }

    #[test]
    fn shift_full_circle_is_identity() {
        let mesh = Torus2d::new(4, 1);
        let values: Vec<Matrix> = (0..4).map(|i| Matrix::random(2, 2, i as u64)).collect();
        let shifted = shift(&mesh, CommAxis::InterRow, 4, &values);
        assert_eq!(shifted, values);
    }

    #[test]
    fn skew_shift_by_row_matches_cannon_prologue() {
        // Cannon's skew wants chip (i, j) to hold A_{i, (j + i) mod P}.
        // With our receive-oriented shift, the receiver at column j pulls
        // from ring position (j - steps); steps = P - i makes it pull from
        // column (j + i) mod P.
        let mesh = Torus2d::new(3, 3);
        let values: Vec<Matrix> = (0..9)
            .map(|i| Matrix::from_fn(1, 1, |_, _| i as f32))
            .collect();
        let skewed = shift_by(&mesh, CommAxis::InterCol, |c| 3 - (c.row() % 3), &values);
        for chip in mesh.chips() {
            let c = mesh.coord_of(chip);
            let expect = (c.row() * 3 + (c.col() + c.row()) % 3) as f32;
            assert_eq!(skewed[chip.index()][(0, 0)], expect, "chip {c}");
        }
    }

    #[test]
    fn map_chips_applies_per_chip() {
        let mesh = Torus2d::new(2, 2);
        let values = vec![Matrix::zeros(1, 1); 4];
        let out = map_chips(&mesh, &values, |id, m| {
            let mut m = m.clone();
            m[(0, 0)] = id.index() as f32;
            m
        });
        assert_eq!(out[3][(0, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "cluster state has")]
    fn wrong_state_size_panics() {
        let mesh = Torus2d::new(2, 2);
        all_gather(&mesh, CommAxis::InterRow, &[Matrix::zeros(1, 1)]);
    }

    #[test]
    fn degraded_all_gather_reassembles_from_survivors() {
        // A 4x1 column ring loses chip 2; the global matrix is
        // redistributed over the 3 survivors, who gather it back whole.
        let mesh = Torus2d::new(4, 1);
        let dead = ChipId(2);
        let global = Matrix::from_fn(6, 2, |i, j| (i * 2 + j) as f32);
        let grid = ShardGrid::partition(&global, 3, 1);
        let live_shards = state_from_grid(&grid);
        let mut state = vec![Matrix::zeros(1, 1); 4];
        let mut next = live_shards.into_iter();
        for chip in mesh.chips() {
            if chip != dead {
                state[chip.index()] = next.next().unwrap();
            }
        }
        let gathered = degraded_all_gather(&mesh, CommAxis::InterRow, dead, &state);
        for chip in mesh.chips() {
            if chip == dead {
                assert_eq!(gathered[chip.index()], state[chip.index()]); // passthrough
            } else {
                assert_eq!(gathered[chip.index()], global, "chip {chip:?}");
            }
        }
    }

    #[test]
    fn degraded_all_gather_leaves_other_rings_healthy() {
        // On a 2x2 mesh the InterRow rings are the two columns; killing a
        // chip in column 1 must not disturb column 0's gather.
        let mesh = Torus2d::new(2, 2);
        let shards: Vec<Matrix> = (0..4).map(|i| Matrix::random(1, 2, i as u64)).collect();
        let healthy = all_gather(&mesh, CommAxis::InterRow, &shards);
        let degraded = degraded_all_gather(&mesh, CommAxis::InterRow, ChipId(3), &shards);
        assert_eq!(degraded[0], healthy[0]);
        assert_eq!(degraded[2], healthy[2]);
    }

    #[test]
    fn degraded_reduce_scatter_sums_survivor_partials() {
        // Row ring of 4 loses chip 1: the 3 survivors' partials carry the
        // full sum, scattered 3 ways in surviving ring order.
        let mesh = Torus2d::new(1, 4);
        let dead = ChipId(1);
        let mut partials: Vec<Matrix> = (0..4).map(|i| Matrix::random(2, 6, i as u64)).collect();
        // Dense single-chip reference: the survivors' sum.
        let mut reference = Matrix::zeros(2, 6);
        for (i, p) in partials.iter().enumerate() {
            if i != dead.index() {
                reference += p;
            }
        }
        // Poison the dead chip's partial: it must never be read.
        partials[dead.index()] = Matrix::from_fn(2, 6, |_, _| f32::NAN);
        let scattered = degraded_reduce_scatter(&mesh, CommAxis::InterCol, dead, &partials);
        let expect = reference.hsplit(3);
        for (p, chip) in [ChipId(0), ChipId(2), ChipId(3)].into_iter().enumerate() {
            assert!(
                scattered[chip.index()].approx_eq(&expect[p], 1e-6),
                "chip {chip:?}"
            );
        }
    }

    #[test]
    fn degraded_gather_scatter_round_trips() {
        // AG over survivors then RdS of the identical copies divided by
        // the survivor count returns the survivors' inputs.
        let mesh = Torus2d::new(4, 1);
        let dead = ChipId(0);
        let mut state: Vec<Matrix> = (0..4).map(|i| Matrix::random(2, 3, i as u64)).collect();
        state[dead.index()] = Matrix::from_fn(2, 3, |_, _| f32::NAN);
        let gathered = degraded_all_gather(&mesh, CommAxis::InterRow, dead, &state);
        let mut scattered = degraded_reduce_scatter(&mesh, CommAxis::InterRow, dead, &gathered);
        for chip in mesh.chips().filter(|&c| c != dead) {
            let back = &mut scattered[chip.index()];
            back.scale(1.0 / 3.0);
            assert!(back.approx_eq(&state[chip.index()], 1e-6), "chip {chip:?}");
        }
    }

    #[test]
    fn singleton_ring_of_the_dead_chip_passes_through() {
        let mesh = Torus2d::new(1, 1);
        let state = vec![Matrix::random(2, 2, 7)];
        let out = degraded_all_gather(&mesh, CommAxis::InterRow, ChipId(0), &state);
        assert_eq!(out[0], state[0]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn degraded_collective_rejects_missing_rank() {
        let mesh = Torus2d::new(2, 2);
        let state = vec![Matrix::zeros(1, 1); 4];
        degraded_reduce_scatter(&mesh, CommAxis::InterRow, ChipId(9), &state);
    }
}
