//! Property-based tests for the functional collectives.

use meshslice_collectives::{all_gather, broadcast, map_chips, reduce, reduce_scatter, shift};
use meshslice_mesh::{ChipId, CommAxis, Torus2d};
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::Matrix;
use proptest::prelude::*;

fn axis() -> impl Strategy<Value = CommAxis> {
    prop_oneof![Just(CommAxis::InterRow), Just(CommAxis::InterCol)]
}

fn state(mesh: &Torus2d, rows: usize, cols: usize, seed: u64) -> Vec<Matrix> {
    (0..mesh.num_chips())
        .map(|i| Matrix::random(rows, cols, seed.wrapping_add(i as u64)))
        .collect()
}

proptest! {
    /// AllGather of a sharded matrix reconstructs the global block
    /// row/column on every chip of the ring.
    #[test]
    fn all_gather_reconstructs_global_blocks(
        pr in 1usize..5, pc in 1usize..5,
        (r, c) in (1usize..4, 1usize..4),
        seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let global = Matrix::random(pr * r, pc * c, seed);
        let grid = ShardGrid::partition(&global, pr, pc);
        let shards: Vec<Matrix> = grid.iter().map(|(_, s)| s.clone()).collect();
        let rows_gathered = all_gather(&mesh, CommAxis::InterRow, &shards);
        let cols_gathered = all_gather(&mesh, CommAxis::InterCol, &shards);
        for chip in mesh.chips() {
            let coord = mesh.coord_of(chip);
            prop_assert_eq!(
                &rows_gathered[chip.index()],
                &global.block(0, coord.col() * c, pr * r, c)
            );
            prop_assert_eq!(
                &cols_gathered[chip.index()],
                &global.block(coord.row() * r, 0, r, pc * c)
            );
        }
    }

    /// AllGather then ReduceScatter (divided by ring length) is identity.
    #[test]
    fn ag_rds_round_trip(
        pr in 1usize..5, pc in 1usize..5,
        ax in axis(),
        seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let ring = mesh.ring_len(ax);
        let shards = state(&mesh, 2 * ring, 2 * ring, seed);
        // The RdS scatter dimension must divide by the ring; both do.
        let gathered = all_gather(&mesh, ax, &shards);
        let mut back = reduce_scatter(&mesh, ax, &gathered);
        for (b, orig) in back.iter_mut().zip(&shards) {
            b.scale(1.0 / ring as f32);
            prop_assert!(b.approx_eq(orig, 1e-5), "round trip diverged");
        }
    }

    /// ReduceScatter then AllGather equals an all-reduce: every chip of a
    /// ring ends with the ring's sum.
    #[test]
    fn rds_ag_is_all_reduce(
        pr in 1usize..5, pc in 1usize..5,
        ax in axis(),
        seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let ring = mesh.ring_len(ax);
        // Both dimensions divisible by the ring so either scatter axis works.
        let partials = state(&mesh, 2 * ring, 2 * ring, seed);
        let scattered = reduce_scatter(&mesh, ax, &partials);
        let reduced = all_gather(&mesh, ax, &scattered);
        // Independent check via the one-to-one reduce primitive.
        let root = reduce(&mesh, ax, 0, &partials);
        for chip in mesh.chips() {
            let ring_members = mesh.ring_through(mesh.coord_of(chip), ax);
            let root_chip = ring_members.members()[0];
            prop_assert!(reduced[chip.index()].approx_eq(&root[root_chip.index()], 1e-4));
        }
    }

    /// Shifting by the ring length is identity; shifts compose additively.
    #[test]
    fn shifts_compose(
        pr in 1usize..5, pc in 1usize..5,
        ax in axis(),
        a in 0usize..6, b in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let values = state(&mesh, 2, 2, seed);
        let ring = mesh.ring_len(ax);
        prop_assert_eq!(shift(&mesh, ax, ring, &values), values.clone());
        let two_step = shift(&mesh, ax, b, &shift(&mesh, ax, a, &values));
        let one_step = shift(&mesh, ax, a + b, &values);
        prop_assert_eq!(two_step, one_step);
    }

    /// Broadcast makes every ring member equal to the root's value.
    #[test]
    fn broadcast_uniformity(
        pr in 1usize..5, pc in 1usize..5,
        ax in axis(),
        root_sel in 0usize..8,
        seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let root = root_sel % mesh.ring_len(ax);
        let values = state(&mesh, 2, 2, seed);
        let bc = broadcast(&mesh, ax, root, &values);
        for ring in mesh.rings(ax) {
            let expect = &bc[ring.members()[root].index()];
            for &chip in ring.members() {
                prop_assert_eq!(&bc[chip.index()], expect);
            }
        }
    }

    /// map_chips visits every chip exactly once, in id order.
    #[test]
    fn map_chips_visits_in_order(pr in 1usize..5, pc in 1usize..5) {
        let mesh = Torus2d::new(pr, pc);
        let values = vec![Matrix::zeros(1, 1); mesh.num_chips()];
        let mut visited: Vec<ChipId> = Vec::new();
        map_chips(&mesh, &values, |id, m| {
            visited.push(id);
            m.clone()
        });
        prop_assert_eq!(visited, mesh.chips().collect::<Vec<_>>());
    }
}
