//! The MeshSlice LLM autotuner (§3.2).
//!
//! **Phase 1** picks, for every FC layer, the dataflow that keeps the
//! *largest* of the three matrices stationary, then derives the dataflows
//! of the two backward GeMMs from the same row of Table 1 — so the big
//! matrix never moves, gradients flow the same way as their values, and no
//! transposition is needed between passes. The sharding follows from the
//! dataflow (matrix rows over mesh rows, columns over mesh columns).
//!
//! **Phase 2** co-optimizes the cluster mesh shape and the per-layer slice
//! count `S` with the analytical cost models: an exhaustive search over
//! the (small) space of mesh factorizations and legal slice counts.
//!
//! The autotuner also tunes the baseline algorithms (their own optimal
//! mesh shapes and iteration counts) so the evaluation comparisons are
//! fair, as required by §4.2.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use meshslice_gemm::{Dataflow, DistributedGemm, GemmError, GemmProblem, MeshSlice};
use meshslice_mesh::{ChipId, MeshPlane, MeshShape, MeshView, Torus2d, MAX_AXES};
use meshslice_sim::{
    ClusterProfile, Duration, Engine, PodProfile, Program, RunScratch, SimConfig, SimReport,
};
use meshslice_telemetry::{TuneCandidate, TuneLog};
use meshslice_tensor::slice::SliceSpec;
use meshslice_tensor::GemmShape;

use crate::costmodel::CostModel;
use crate::llm::{FcLayer, LlmConfig, Pass, TrainingSetup};
use crate::par;

/// Cache key of one scheduled MeshSlice program: everything
/// [`MeshSlice::schedule`] depends on.
type ScheduleKey = (GemmShape, Dataflow, MeshShape, usize, usize, usize);

/// A keyed cache of scheduled MeshSlice [`Program`]s.
///
/// Scheduling is a pure function of
/// `(problem shape, dataflow, mesh, S, block, elem_bytes)`, so sweeps that
/// revisit the same candidate — the straggler-sensitivity grid re-runs one
/// (mesh, S) block per severity, figure harnesses revisit configurations —
/// can share one cache and schedule each program exactly once. Cache hits
/// return the identical [`Program`] a fresh schedule would build, so
/// results are unchanged bit-for-bit.
///
/// The cache is `Sync`; a single instance can serve all workers of a
/// [`par::parallel_map`] sweep.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    map: Mutex<HashMap<ScheduleKey, Arc<Program>>>,
    hits: AtomicUsize,
    builds: AtomicUsize,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.map.lock().expect("schedule cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Programs scheduled from scratch so far (successful builds,
    /// including the losers of insert races).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Returns the cached program for this candidate, scheduling (and
    /// caching) it on first use.
    ///
    /// # Errors
    ///
    /// Propagates [`GemmError`] from [`MeshSlice::schedule`]; failures are
    /// not cached.
    pub fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        slice_count: usize,
        block: usize,
        elem_bytes: usize,
    ) -> Result<Arc<Program>, GemmError> {
        let key = (
            problem.shape,
            problem.dataflow,
            mesh.shape(),
            slice_count,
            block,
            elem_bytes,
        );
        if let Some(hit) = self.map.lock().expect("schedule cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        // Build outside the lock: scheduling is the expensive part, and
        // a duplicate build under a race yields the identical program.
        let program =
            Arc::new(MeshSlice::new(slice_count, block).schedule(mesh, problem, elem_bytes)?);
        self.builds.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .map
            .lock()
            .expect("schedule cache poisoned")
            .entry(key)
            .or_insert(program)
            .clone())
    }
}

/// Which matrix of `Y = X·W` stays stationary (the rows of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stationary {
    /// Output-stationary training: fwd `OS`, bwd-data `LS`, bwd-weight `RS`.
    Y,
    /// Input-stationary: fwd `LS`, bwd-data `OS`, bwd-weight `RS` (on
    /// `W'ᵀ`); `W` is stored pre-transposed.
    X,
    /// Weight-stationary: fwd `RS`, bwd-data `LS` (on `X'ᵀ`), bwd-weight
    /// `OS`; `X` is stored pre-transposed.
    W,
}

impl Stationary {
    /// All three rows of Table 1.
    pub const ALL: [Stationary; 3] = [Stationary::Y, Stationary::X, Stationary::W];
}

/// Builds the three training GeMM problems of an FC layer under a chosen
/// stationary matrix, per Table 1.
///
/// `tokens` is `B·S` (the `M` of the forward GeMM); `input_dim`/`output_dim`
/// are the layer's `K` and `N`.
pub fn pass_problems(
    stationary: Stationary,
    tokens: usize,
    input_dim: usize,
    output_dim: usize,
) -> [GemmProblem; 3] {
    let (m, k, n) = (tokens, input_dim, output_dim);
    match stationary {
        // Y = OS(X, W); X' = LS(Y', W); W' = RS(X, Y').
        Stationary::Y => [
            GemmProblem::new(GemmShape::new(m, n, k), Dataflow::Os),
            GemmProblem::new(GemmShape::new(m, k, n), Dataflow::Ls),
            GemmProblem::new(GemmShape::new(k, n, m), Dataflow::Rs),
        ],
        // Y = LS(X, Wᵀ); X' = OS(Y', Wᵀ); W'ᵀ = RS(Y', X).
        Stationary::X => [
            GemmProblem::new(GemmShape::new(m, n, k), Dataflow::Ls),
            GemmProblem::new(GemmShape::new(m, k, n), Dataflow::Os),
            GemmProblem::new(GemmShape::new(n, k, m), Dataflow::Rs),
        ],
        // Y = RS(Xᵀ, W); X'ᵀ = LS(W, Y'); W' = OS(Xᵀ, Y').
        Stationary::W => [
            GemmProblem::new(GemmShape::new(m, n, k), Dataflow::Rs),
            GemmProblem::new(GemmShape::new(k, m, n), Dataflow::Ls),
            GemmProblem::new(GemmShape::new(k, n, m), Dataflow::Os),
        ],
    }
}

/// Phase-1 choice: the stationary matrix is the largest of `X`
/// (`tokens × in`), `W` (`in × out`), and `Y` (`tokens × out`).
pub fn choose_stationary(tokens: usize, input_dim: usize, output_dim: usize) -> Stationary {
    let x = tokens as u64 * input_dim as u64;
    let w = input_dim as u64 * output_dim as u64;
    let y = tokens as u64 * output_dim as u64;
    if y >= x && y >= w {
        Stationary::Y
    } else if x >= w {
        Stationary::X
    } else {
        Stationary::W
    }
}

/// The tuned plan of one training GeMM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassPlan {
    /// Which pass this is.
    pub pass: Pass,
    /// The distributed GeMM problem (shape + dataflow).
    pub problem: GemmProblem,
    /// The tuned MeshSlice slice count `S`.
    pub slice_count: usize,
}

/// The tuned plan of one FC layer: dataflow row + per-pass slice counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerPlan {
    /// The FC layer.
    pub layer: FcLayer,
    /// Which matrix stays stationary (Table 1 row).
    pub stationary: Stationary,
    /// The three passes in order fwd, bwd-data, bwd-weight.
    pub passes: [PassPlan; 3],
}

/// The full autotuner output for a cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct TunePlan {
    /// The chosen mesh shape.
    pub mesh_shape: MeshShape,
    /// Per-layer plans (four FC layers).
    pub layers: Vec<LayerPlan>,
    /// Estimated FC time of one transformer block (all twelve GeMMs).
    pub estimated_block_time: Duration,
}

/// The autotuner's placement of MeshSlice onto one 2D plane of an N-D
/// pod: which plane won, how its chips map to the logical torus, and the
/// tuned per-layer plans.
#[derive(Clone, Debug, PartialEq)]
pub struct PodTunePlan {
    /// The winning plane (spanning axes + fixed coordinates).
    pub plane: MeshPlane,
    /// The logical 2D mesh shape MeshSlice runs on.
    pub mesh_shape: MeshShape,
    /// `physical_chips[i]` is the pod chip playing logical chip `i`.
    pub physical_chips: Vec<ChipId>,
    /// Per-layer plans (four FC layers), tuned on the logical mesh.
    pub layers: Vec<LayerPlan>,
    /// Analytical fault-free FC block time on the logical mesh.
    pub estimated_block_time: Duration,
    /// Simulated FC block time under the plane's projected fault profile —
    /// the quantity planes are ranked by.
    pub simulated_block_time: Duration,
}

/// The MeshSlice LLM autotuner.
///
/// # Example
///
/// ```
/// use meshslice::autotuner::Autotuner;
/// use meshslice::llm::{LlmConfig, TrainingSetup};
/// use meshslice_sim::SimConfig;
///
/// let tuner = Autotuner::new(SimConfig::tpu_v4());
/// let plan = tuner.tune(&LlmConfig::gpt3(), TrainingSetup::weak_scaling(32), 32);
/// assert_eq!(plan.layers.len(), 4);
/// assert!(plan.layers.iter().all(|l| l.passes.iter().all(|p| p.slice_count >= 1)));
/// ```
#[derive(Clone, Debug)]
pub struct Autotuner {
    cost: CostModel,
    block: usize,
    max_slice_count: usize,
}

impl Autotuner {
    /// Creates an autotuner over a hardware configuration, with the TPU
    /// block size (`B = 8`) and a slice-count cap of 64.
    pub fn new(cfg: SimConfig) -> Self {
        Autotuner {
            cost: CostModel::new(cfg),
            block: 8,
            max_slice_count: 64,
        }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The slicing block size `B`.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Candidate mesh shapes for a chip count: every factorization with
    /// both dimensions at least 2 (a physical torus needs distinct wrap
    /// links), falling back to all factorizations for tiny clusters.
    pub fn candidate_meshes(chips: usize) -> Vec<MeshShape> {
        let min2 = MeshShape::factorizations_min(chips, 2);
        if min2.is_empty() {
            MeshShape::factorizations(chips)
        } else {
            min2
        }
    }

    /// N-D candidate mesh shapes for a chip count: every factorization of
    /// rank `2..=max_rank` (capped at [`MAX_AXES`]) whose axes are all at
    /// least 2, in (rank, lexicographic) order. The rank-2 prefix is
    /// exactly [`candidate_meshes`](Self::candidate_meshes), so `max_rank
    /// = 2` degenerates to the 2D search space; higher ranks append the
    /// genuinely N-D pod shapes (e.g. `4x4x4` for 64 chips).
    pub fn candidate_meshes_nd(chips: usize, max_rank: usize) -> Vec<MeshShape> {
        let cap = max_rank.clamp(2, MAX_AXES);
        let mut out = Vec::new();
        for rank in 2..=cap {
            let shapes = MeshShape::factorizations_nd(chips, rank).unwrap_or_default();
            out.extend(
                shapes
                    .into_iter()
                    .filter(|s| s.axes().iter().all(|a| a.size() >= 2)),
            );
        }
        if out.is_empty() {
            Self::candidate_meshes(chips)
        } else {
            out
        }
    }

    /// The legal MeshSlice slice counts of a problem on a mesh: divisors
    /// of both sliced extents over the block size, capped.
    pub fn legal_slice_counts(&self, mesh: MeshShape, problem: GemmProblem) -> Vec<usize> {
        let (e1, e2) = sliced_extents(mesh, problem);
        let s1 = SliceSpec::legal_slice_counts(e1, self.block);
        let s2 = SliceSpec::legal_slice_counts(e2, self.block);
        s1.into_iter()
            .filter(|s| *s <= self.max_slice_count && s2.contains(s))
            .collect()
    }

    /// Tunes the slice count of one problem on one mesh; returns
    /// `(S, estimated time)`.
    ///
    /// Falls back to `S = 1` when no slice count is legal (e.g. extents
    /// not divisible by the block size), matching MeshSlice's collective
    /// fallback.
    pub fn best_slice_count(
        &self,
        mesh: MeshShape,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> (usize, Duration) {
        self.best_slice_count_from(
            &self.legal_slice_counts(mesh, problem),
            mesh,
            problem,
            elem_bytes,
        )
    }

    /// [`best_slice_count`](Self::best_slice_count) over an already
    /// computed legal-slice-count list, so callers that need the list for
    /// other purposes don't recompute it.
    fn best_slice_count_from(
        &self,
        legal: &[usize],
        mesh: MeshShape,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> (usize, Duration) {
        let mut best = (1, self.cost.meshslice_time(mesh, problem, 1, elem_bytes));
        for &s in legal {
            let t = self.cost.meshslice_time(mesh, problem, s, elem_bytes);
            if t < best.1 {
                best = (s, t);
            }
        }
        best
    }

    /// Phase 1: the stationary choice of every FC layer.
    pub fn phase1(&self, model: &LlmConfig, setup: TrainingSetup) -> Vec<(FcLayer, Stationary)> {
        model
            .fc_layers()
            .into_iter()
            .map(|l| {
                (
                    l,
                    choose_stationary(setup.tokens(), l.input_dim, l.output_dim),
                )
            })
            .collect()
    }

    /// Runs both phases: dataflow selection, then mesh-shape and
    /// slice-count co-optimization over all candidate meshes.
    ///
    /// # Panics
    ///
    /// Panics if no candidate mesh divides the model's FC GeMMs (cannot
    /// happen for power-of-two clusters and standard LLM dimensions).
    pub fn tune(&self, model: &LlmConfig, setup: TrainingSetup, chips: usize) -> TunePlan {
        self.tune_with(model, setup, chips, None)
    }

    /// Like [`tune`](Self::tune), but rejecting mesh shapes whose per-chip
    /// training memory footprint (weights, gradients, optimizer state,
    /// checkpointed activations, and MeshSlice workspace) exceeds
    /// `hbm_capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if no candidate mesh fits the budget.
    pub fn tune_within_memory(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        hbm_capacity: u64,
    ) -> TunePlan {
        let plan = self.tune(model, setup, chips);
        let fits = |mesh: meshslice_mesh::MeshShape| {
            crate::memory::training_footprint(model, setup, mesh, 8).total() <= hbm_capacity
        };
        if fits(plan.mesh_shape) {
            return plan;
        }
        // Re-search with the constraint: evaluate each candidate and keep
        // the fastest feasible one.
        let mut best: Option<TunePlan> = None;
        for mesh in Self::candidate_meshes(chips) {
            if !fits(mesh) {
                continue;
            }
            if let Some((t, layers)) = self.estimate_on_mesh(model, setup, mesh) {
                let candidate = TunePlan {
                    mesh_shape: mesh,
                    layers,
                    estimated_block_time: t,
                };
                if best
                    .as_ref()
                    .map(|b| candidate.estimated_block_time < b.estimated_block_time)
                    .unwrap_or(true)
                {
                    best = Some(candidate);
                }
            }
        }
        best.expect("no mesh shape fits the per-chip memory budget")
    }

    /// Like [`tune`](Self::tune), but forcing one Table-1 row for every
    /// layer (the "not optimized" Y-stationary configuration of Table 2).
    pub fn tune_forced(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        stationary: Stationary,
    ) -> TunePlan {
        self.tune_with(model, setup, chips, Some(stationary))
    }

    /// The per-layer (stationary, three pass problems) of a model under a
    /// training setup — invariant across candidate meshes, so tune loops
    /// compute it once instead of once per mesh.
    fn layer_problems(
        model: &LlmConfig,
        setup: TrainingSetup,
        force: Option<Stationary>,
    ) -> Vec<(FcLayer, Stationary, [GemmProblem; 3])> {
        model
            .fc_layers()
            .into_iter()
            .map(|layer| {
                let stationary = force.unwrap_or(choose_stationary(
                    setup.tokens(),
                    layer.input_dim,
                    layer.output_dim,
                ));
                let problems = pass_problems(
                    stationary,
                    setup.tokens(),
                    layer.input_dim,
                    layer.output_dim,
                );
                (layer, stationary, problems)
            })
            .collect()
    }

    fn tune_with(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        force: Option<Stationary>,
    ) -> TunePlan {
        let eb = self.cost.config().elem_bytes;
        let layer_problems = Self::layer_problems(model, setup, force);
        let mut best: Option<TunePlan> = None;
        for mesh in Self::candidate_meshes(chips) {
            let mut layers = Vec::new();
            let mut total = Duration::ZERO;
            let mut feasible = true;
            // Mirrored layers repeat problems: tune each distinct problem's
            // slice count once per mesh, not once per layer pass.
            let mut best_memo: Vec<(GemmProblem, (usize, Duration))> = Vec::new();
            for (layer, stationary, problems) in &layer_problems {
                let mut passes = Vec::new();
                for (pass, problem) in Pass::ALL.into_iter().zip(*problems) {
                    if problem.check_divisible(mesh).is_err() {
                        feasible = false;
                        break;
                    }
                    let (s, t) = match best_memo.iter().find(|(p, _)| *p == problem) {
                        Some(&(_, hit)) => hit,
                        None => {
                            let computed = self.best_slice_count(mesh, problem, eb);
                            best_memo.push((problem, computed));
                            computed
                        }
                    };
                    total += t;
                    passes.push(PassPlan {
                        pass,
                        problem,
                        slice_count: s,
                    });
                }
                if !feasible {
                    break;
                }
                layers.push(LayerPlan {
                    layer: *layer,
                    stationary: *stationary,
                    passes: [passes[0], passes[1], passes[2]],
                });
            }
            if !feasible {
                continue;
            }
            let plan = TunePlan {
                mesh_shape: mesh,
                layers,
                estimated_block_time: total,
            };
            if best
                .as_ref()
                .map(|b| plan.estimated_block_time < b.estimated_block_time)
                .unwrap_or(true)
            {
                best = Some(plan);
            }
        }
        best.expect("no feasible mesh shape for this model and chip count")
    }

    /// Estimates the FC block time of a [`TunePlan`] on a *different* mesh
    /// shape (used by the Figure 13 sweep).
    pub fn estimate_on_mesh(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh: MeshShape,
    ) -> Option<(Duration, Vec<LayerPlan>)> {
        let eb = self.cost.config().elem_bytes;
        let mut total = Duration::ZERO;
        let mut layers = Vec::new();
        for (layer, stationary, problems) in Self::layer_problems(model, setup, None) {
            let mut passes = Vec::new();
            for (pass, problem) in Pass::ALL.into_iter().zip(problems) {
                if problem.check_divisible(mesh).is_err() {
                    return None;
                }
                let (s, t) = self.best_slice_count(mesh, problem, eb);
                total += t;
                passes.push(PassPlan {
                    pass,
                    problem,
                    slice_count: s,
                });
            }
            layers.push(LayerPlan {
                layer,
                stationary,
                passes: [passes[0], passes[1], passes[2]],
            });
        }
        Some((total, layers))
    }

    /// Tunes MeshSlice onto an N-D pod: enumerates every 2D plane of the
    /// pod ([`MeshView::planes`]), projects the pod's fault condition onto
    /// each plane ([`PodProfile::project`]), tunes dataflows and slice
    /// counts on the plane's logical mesh, and *simulates* the FC block
    /// under the plane-local profile — so the tuner steers MeshSlice away
    /// from planes containing stragglers or degraded links. Planes are
    /// ranked by simulated block time; ties keep the first plane in
    /// enumeration order, so the result is deterministic.
    ///
    /// On an ideal pod every congruent plane prices identically and the
    /// winner is simply the best plane *shape* (e.g. the 4×4 planes of a
    /// 4×4×2 pod beat the 4×2 ones for square GeMMs).
    ///
    /// Returns `None` if no plane divides the model's FC GeMMs.
    pub fn tune_pod(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        pod: &PodProfile,
    ) -> Option<PodTunePlan> {
        let mut best: Option<PodTunePlan> = None;
        let mut scratch = RunScratch::new();
        for plane in MeshView::full(pod.shape()).planes() {
            let Ok(assign) = pod.project(&plane.view) else {
                continue;
            };
            let mesh_shape = assign.torus.shape();
            let Some((analytic, layers)) = self.estimate_on_mesh(model, setup, mesh_shape) else {
                continue;
            };
            let Some(simulated) =
                self.simulate_layers_under(&layers, mesh_shape, &assign.profile, &mut scratch)
            else {
                continue;
            };
            let candidate = PodTunePlan {
                plane,
                mesh_shape,
                physical_chips: assign.physical,
                layers,
                estimated_block_time: analytic,
                simulated_block_time: simulated,
            };
            if best
                .as_ref()
                .map(|b| candidate.simulated_block_time < b.simulated_block_time)
                .unwrap_or(true)
            {
                best = Some(candidate);
            }
        }
        best
    }

    /// Simulates one FC block from already tuned per-layer plans under a
    /// fault profile, serially merged — the plane-scoring primitive of
    /// [`tune_pod`](Self::tune_pod). Distinct pass specs are scheduled,
    /// lowered, and simulated once (mirrored layers repeat them).
    fn simulate_layers_under(
        &self,
        layers: &[LayerPlan],
        mesh_shape: MeshShape,
        profile: &ClusterProfile,
        scratch: &mut RunScratch,
    ) -> Option<Duration> {
        let base = self.cost.config();
        let mut legal_memo: Vec<(GemmProblem, Vec<usize>)> = Vec::new();
        let mut specs: Vec<(GemmProblem, usize, usize)> = Vec::new();
        for layer in layers {
            for pass in &layer.passes {
                let legal = match legal_memo.iter().find(|(p, _)| *p == pass.problem) {
                    Some((_, l)) => l.clone(),
                    None => {
                        let l = self.legal_slice_counts(mesh_shape, pass.problem);
                        legal_memo.push((pass.problem, l.clone()));
                        l
                    }
                };
                let block = if legal.contains(&pass.slice_count) {
                    self.block
                } else {
                    1
                };
                specs.push((pass.problem, pass.slice_count, block));
            }
        }
        let slot_of = dedup_slots(&specs);
        let mesh = Torus2d::from_shape(mesh_shape);
        let engine = Engine::new(mesh.clone(), base.clone()).with_faults(profile.clone());
        let mut distinct: Vec<SimReport> = Vec::new();
        for (i, &(problem, s, block)) in specs.iter().enumerate() {
            if slot_of[i] == distinct.len() {
                let program = MeshSlice::new(s, block)
                    .schedule(&mesh, problem, base.elem_bytes)
                    .ok()?;
                distinct.push(engine.run_with_scratch(&program, scratch));
            }
        }
        let reports: Vec<SimReport> = slot_of.iter().map(|&k| distinct[k].clone()).collect();
        Some(SimReport::merge_serial(&reports).makespan())
    }

    /// Phase 2 on a fixed mesh, with full cost-model attribution: every
    /// legal slice count of every FC pass is priced analytically *and*
    /// simulated, and both numbers land in a [`TuneLog`] — the paper's
    /// Figure 15 predicted-vs-measured error analysis as a queryable
    /// artifact. The chosen candidate per pass is the analytical argmin,
    /// exactly matching [`best_slice_count`](Self::best_slice_count).
    ///
    /// Returns `None` if any pass does not divide over the mesh.
    pub fn tune_on_mesh_logged(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh_shape: MeshShape,
    ) -> Option<(Vec<LayerPlan>, TuneLog)> {
        self.tune_on_mesh_logged_threads(model, setup, mesh_shape, par::threads())
    }

    /// [`tune_on_mesh_logged`](Self::tune_on_mesh_logged) with an explicit
    /// worker count for the candidate simulations. The log is assembled in
    /// candidate order from index-placed results, so the output is
    /// identical at any thread count.
    pub fn tune_on_mesh_logged_threads(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh_shape: MeshShape,
        threads: usize,
    ) -> Option<(Vec<LayerPlan>, TuneLog)> {
        let eb = self.cost.config().elem_bytes;
        let mesh = Torus2d::from_shape(mesh_shape);
        let engine = Engine::new(mesh.clone(), self.cost.config().clone());
        // Stage 1 (cheap, serial): pick each pass's slice count and
        // enumerate every logged candidate, computing the legal slice
        // counts once per pass.
        let mut layers = Vec::new();
        let mut cands: Vec<(String, GemmProblem, usize, usize, bool)> = Vec::new();
        for (layer, stationary, problems) in Self::layer_problems(model, setup, None) {
            let mut passes = Vec::new();
            for (pass, problem) in Pass::ALL.into_iter().zip(problems) {
                problem.check_divisible(mesh_shape).ok()?;
                let legal = self.legal_slice_counts(mesh_shape, problem);
                let (chosen_s, _) = self.best_slice_count_from(&legal, mesh_shape, problem, eb);
                let mut candidates = legal.clone();
                if !candidates.contains(&1) {
                    candidates.insert(0, 1);
                }
                for s in candidates {
                    let block = if legal.contains(&s) { self.block } else { 1 };
                    cands.push((
                        format!("{}/{}", layer.name, pass),
                        problem,
                        s,
                        block,
                        s == chosen_s,
                    ));
                }
                passes.push(PassPlan {
                    pass,
                    problem,
                    slice_count: chosen_s,
                });
            }
            layers.push(LayerPlan {
                layer,
                stationary,
                passes: [passes[0], passes[1], passes[2]],
            });
        }
        // Stage 2: simulate every *distinct* (problem, S, block) once —
        // mirrored layers log the same simulations under different labels.
        // The distinct runs are independent, so they fan out across the
        // worker pool (one scratch per worker); results come back in
        // candidate order and are fanned back out to every duplicate.
        let triples: Vec<(GemmProblem, usize, usize)> = cands
            .iter()
            .map(|&(_, problem, s, block, _)| (problem, s, block))
            .collect();
        let slot_of = dedup_slots(&triples);
        let mut distinct: Vec<(GemmProblem, usize, usize)> = Vec::new();
        for (i, &t) in triples.iter().enumerate() {
            if slot_of[i] == distinct.len() {
                distinct.push(t);
            }
        }
        let distinct_sims = par::parallel_map_with(
            threads,
            &distinct,
            RunScratch::new,
            |scratch, &(problem, s, block)| {
                let program = MeshSlice::new(s, block).schedule(&mesh, problem, eb).ok()?;
                Some(engine.run_with_scratch(&program, scratch))
            },
        );
        let sims: Vec<Option<SimReport>> =
            slot_of.iter().map(|&k| distinct_sims[k].clone()).collect();
        // Stage 3: assemble the log in candidate order.
        let mut log = TuneLog::default();
        for ((label, problem, s, _, chosen), sim) in cands.into_iter().zip(sims) {
            let report = sim?;
            log.push(TuneCandidate {
                mesh_rows: mesh_shape.rows(),
                mesh_cols: mesh_shape.cols(),
                label,
                dataflow: problem.dataflow.to_string(),
                slice_count: s,
                predicted: self
                    .cost
                    .meshslice_time(mesh_shape, problem, s, eb)
                    .as_secs(),
                simulated: report.makespan().as_secs(),
                predicted_comm: self
                    .cost
                    .meshslice_comm_time(mesh_shape, problem, s, eb)
                    .as_secs(),
                simulated_comm: report.totals().comm_total().as_secs(),
                chosen,
            });
        }
        Some((layers, log))
    }

    /// Simulates one transformer block's twelve FC GeMMs with MeshSlice at
    /// a requested slice count (clamped per pass to the largest legal
    /// value), serially merged. Returns `None` if any pass does not divide
    /// over the mesh.
    ///
    /// The simulation runs under `cfg`, which may carry a
    /// [`ClusterProfile`] — this is the primitive the robustness-aware
    /// tuning scores candidates with.
    pub fn simulate_block(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh_shape: MeshShape,
        requested_s: usize,
        cfg: &SimConfig,
    ) -> Option<SimReport> {
        self.simulate_block_with(
            model,
            setup,
            mesh_shape,
            requested_s,
            cfg,
            None,
            &mut RunScratch::new(),
        )
    }

    /// [`simulate_block`](Self::simulate_block) for sweep hot loops: one
    /// engine serves all twelve passes, run state comes from the caller's
    /// reusable scratch, and an optional [`ScheduleCache`] deduplicates
    /// program construction across revisited candidates. Reports are
    /// bit-for-bit those of [`simulate_block`](Self::simulate_block).
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_block_with(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh_shape: MeshShape,
        requested_s: usize,
        cfg: &SimConfig,
        cache: Option<&ScheduleCache>,
        scratch: &mut RunScratch,
    ) -> Option<SimReport> {
        let specs = self.block_pass_specs(model, setup, mesh_shape, requested_s)?;
        // Simulate each distinct spec once (see `eval_robust_candidate`).
        let slot_of = dedup_slots(&specs);
        let mesh = Torus2d::from_shape(mesh_shape);
        let engine = Engine::new(mesh.clone(), cfg.clone());
        let mut distinct = Vec::new();
        for (i, &(problem, actual, block)) in specs.iter().enumerate() {
            if slot_of[i] < distinct.len() {
                continue;
            }
            let report = match cache {
                Some(c) => {
                    let program = c
                        .schedule(&mesh, problem, actual, block, cfg.elem_bytes)
                        .ok()?;
                    engine.run_with_scratch(&program, scratch)
                }
                None => {
                    let program = MeshSlice::new(actual, block)
                        .schedule(&mesh, problem, cfg.elem_bytes)
                        .ok()?;
                    engine.run_with_scratch(&program, scratch)
                }
            };
            distinct.push(report);
        }
        let reports: Vec<SimReport> = slot_of.iter().map(|&k| distinct[k].clone()).collect();
        Some(SimReport::merge_serial(&reports))
    }

    /// The twelve (problem, clamped slice count, block) tuples of one FC
    /// block at a requested slice count — the specs both
    /// [`simulate_block`](Self::simulate_block) and the robust tuner
    /// schedule from. `None` if any pass does not divide over the mesh.
    fn block_pass_specs(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh_shape: MeshShape,
        requested_s: usize,
    ) -> Option<Vec<(GemmProblem, usize, usize)>> {
        let mut specs = Vec::with_capacity(12);
        // Mirrored layers repeat problems: compute each distinct problem's
        // legal slice counts once per mesh, not once per layer pass.
        let mut legal_memo: Vec<(GemmProblem, Vec<usize>)> = Vec::new();
        for (_, _, problems) in Self::layer_problems(model, setup, None) {
            for problem in problems {
                problem.check_divisible(mesh_shape).ok()?;
                let idx = match legal_memo.iter().position(|(p, _)| *p == problem) {
                    Some(idx) => idx,
                    None => {
                        legal_memo.push((problem, self.legal_slice_counts(mesh_shape, problem)));
                        legal_memo.len() - 1
                    }
                };
                let legal = &legal_memo[idx].1;
                let actual = legal
                    .iter()
                    .copied()
                    .filter(|&x| x <= requested_s)
                    .max()
                    .unwrap_or(1);
                let block = if legal.contains(&actual) {
                    self.block
                } else {
                    1
                };
                specs.push((problem, actual, block));
            }
        }
        Some(specs)
    }

    /// Robustness-aware phase 2: scores every (mesh shape, slice count)
    /// candidate by *simulating* the FC block under each perturbation
    /// profile and ranking by the chosen objective, instead of trusting
    /// the fault-free analytical model.
    ///
    /// Dataflows still come from phase 1; `s_values` is the requested
    /// slice-count grid (clamped per pass). Candidates are returned
    /// sorted, best first.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or no candidate is feasible.
    pub fn tune_robust(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        s_values: &[usize],
        profiles: &[ClusterProfile],
        objective: RobustObjective,
    ) -> RobustPlan {
        self.tune_robust_threads(
            model,
            setup,
            chips,
            s_values,
            profiles,
            objective,
            par::threads(),
        )
    }

    /// [`tune_robust`](Self::tune_robust) with an explicit worker count.
    /// Candidates are evaluated independently and results placed by input
    /// index, so the plan is identical at any thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn tune_robust_threads(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        s_values: &[usize],
        profiles: &[ClusterProfile],
        objective: RobustObjective,
        threads: usize,
    ) -> RobustPlan {
        assert!(
            !profiles.is_empty(),
            "robust tuning needs at least one perturbation draw"
        );
        let mut pairs = Vec::new();
        for mesh in Self::candidate_meshes(chips) {
            for &s in s_values {
                pairs.push((mesh, s));
            }
        }
        let evaluated =
            par::parallel_map_with(threads, &pairs, RunScratch::new, |scratch, &(mesh, s)| {
                self.eval_robust_candidate(model, setup, mesh, s, profiles, objective, scratch)
            });
        let mut candidates: Vec<RobustCandidate> = evaluated.into_iter().flatten().collect();
        assert!(
            !candidates.is_empty(),
            "no feasible (mesh, slice count) candidate for this model"
        );
        candidates.sort_by(|a, b| {
            a.score
                .cmp(&b.score)
                .then(a.nominal.cmp(&b.nominal))
                .then(a.requested_s.cmp(&b.requested_s))
        });
        RobustPlan {
            objective,
            candidates,
        }
    }

    /// Simulates one FC block at a requested slice count under the
    /// fault-free config *and* under every perturbation draw, returning
    /// `(nominal, per-draw)` makespans — the building block of
    /// [`tune_robust`](Self::tune_robust) and of sweep experiments.
    ///
    /// The block's programs are scheduled and lowered **once** per
    /// distinct pass spec (lowering does not depend on
    /// [`SimConfig::faults`], and mirrored layers repeat specs), then the
    /// lowered graphs are replayed per draw with run state recycled
    /// through `scratch`. Makespans are bit-for-bit those of calling
    /// [`simulate_block`](Self::simulate_block) once per draw. `None` if
    /// the block is infeasible on the mesh.
    pub fn simulate_block_draws(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh_shape: MeshShape,
        s: usize,
        profiles: &[ClusterProfile],
        scratch: &mut RunScratch,
    ) -> Option<(Duration, Vec<Duration>)> {
        let base = self.cost.config();
        let specs = self.block_pass_specs(model, setup, mesh_shape, s)?;
        // A block's pass list repeats specs (mirrored layers produce the
        // same problems): schedule, lower, and simulate each *distinct*
        // spec once and fan its report out — identical programs under an
        // identical config produce identical reports.
        let slot_of = dedup_slots(&specs);
        let mesh = Torus2d::from_shape(mesh_shape);
        let engine = Engine::new(mesh.clone(), base.clone());
        let mut lowered = Vec::new();
        for (i, &(problem, actual, block)) in specs.iter().enumerate() {
            if slot_of[i] == lowered.len() {
                let program = MeshSlice::new(actual, block)
                    .schedule(&mesh, problem, base.elem_bytes)
                    .ok()?;
                lowered.push(engine.lower_program(&program));
            }
        }
        let merge = |distinct: &[SimReport]| {
            let reports: Vec<SimReport> = slot_of.iter().map(|&k| distinct[k].clone()).collect();
            SimReport::merge_serial(&reports).makespan()
        };
        let nominal_reports: Vec<SimReport> = lowered
            .iter()
            .map(|l| engine.run_lowered_with_scratch(l, scratch))
            .collect();
        let nominal = merge(&nominal_reports);
        let per_draw: Vec<Duration> = profiles
            .iter()
            .map(|p| {
                let faulted = engine.with_faults(p.clone());
                let reports: Vec<SimReport> = lowered
                    .iter()
                    .map(|l| faulted.run_lowered_with_scratch(l, scratch))
                    .collect();
                merge(&reports)
            })
            .collect();
        Some((nominal, per_draw))
    }

    /// Scores one (mesh, S) candidate via
    /// [`simulate_block_draws`](Self::simulate_block_draws).
    #[allow(clippy::too_many_arguments)]
    fn eval_robust_candidate(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh_shape: MeshShape,
        s: usize,
        profiles: &[ClusterProfile],
        objective: RobustObjective,
        scratch: &mut RunScratch,
    ) -> Option<RobustCandidate> {
        let (nominal, per_draw) =
            self.simulate_block_draws(model, setup, mesh_shape, s, profiles, scratch)?;
        Some(RobustCandidate {
            mesh_shape,
            requested_s: s,
            nominal,
            score: objective.score(&per_draw),
            per_draw,
        })
    }
}

/// How [`Autotuner::tune_robust`] aggregates per-draw makespans into one
/// candidate score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RobustObjective {
    /// Worst-case makespan across draws.
    Worst,
    /// 95th-percentile makespan across draws.
    P95,
    /// Mean makespan across draws.
    Mean,
}

impl RobustObjective {
    /// Aggregates a non-empty sample of makespans.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn score(&self, samples: &[Duration]) -> Duration {
        assert!(!samples.is_empty(), "cannot score zero samples");
        match self {
            RobustObjective::Worst => *samples.iter().max().expect("non-empty"),
            RobustObjective::Mean => Duration::from_secs(
                samples.iter().map(|d| d.as_secs()).sum::<f64>() / samples.len() as f64,
            ),
            RobustObjective::P95 => {
                let mut sorted: Vec<Duration> = samples.to_vec();
                sorted.sort();
                let idx = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
                sorted[idx]
            }
        }
    }

    /// Short label (for tables and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            RobustObjective::Worst => "worst",
            RobustObjective::P95 => "p95",
            RobustObjective::Mean => "mean",
        }
    }
}

/// One scored (mesh shape, slice count) candidate of a robust tuning run.
#[derive(Clone, Debug, PartialEq)]
pub struct RobustCandidate {
    /// The candidate mesh shape.
    pub mesh_shape: MeshShape,
    /// The requested slice count (clamped per pass when simulating).
    pub requested_s: usize,
    /// Simulated fault-free FC block makespan.
    pub nominal: Duration,
    /// The objective's aggregate over the perturbation draws.
    pub score: Duration,
    /// Simulated makespan under each draw, in profile order.
    pub per_draw: Vec<Duration>,
}

impl RobustCandidate {
    /// The candidate's slowdown under perturbation relative to its own
    /// fault-free makespan (`score / nominal`, `>= 1` in practice).
    pub fn degradation(&self) -> f64 {
        self.score.as_secs() / self.nominal.as_secs()
    }
}

/// The result of [`Autotuner::tune_robust`]: all feasible candidates,
/// scored and sorted (best first).
#[derive(Clone, Debug, PartialEq)]
pub struct RobustPlan {
    /// The objective candidates were ranked by.
    pub objective: RobustObjective,
    /// Scored candidates, best first.
    pub candidates: Vec<RobustCandidate>,
}

impl RobustPlan {
    /// The winning candidate.
    pub fn best(&self) -> &RobustCandidate {
        &self.candidates[0]
    }
}

/// Maps each element to the position of its first occurrence within the
/// list of *distinct* elements (in first-appearance order): `slot_of[i]`
/// indexes a deduplicated side list. Quadratic, for short spec lists.
fn dedup_slots<T: PartialEq>(specs: &[T]) -> Vec<usize> {
    let mut slot_of: Vec<usize> = Vec::with_capacity(specs.len());
    let mut distinct = 0;
    for i in 0..specs.len() {
        match (0..i).find(|&j| specs[j] == specs[i]) {
            Some(j) => slot_of.push(slot_of[j]),
            None => {
                slot_of.push(distinct);
                distinct += 1;
            }
        }
    }
    slot_of
}

/// The two local extents MeshSlice slices, per dataflow (mirrors
/// `MeshSlice::check` in `meshslice-gemm`).
fn sliced_extents(mesh: MeshShape, problem: GemmProblem) -> (usize, usize) {
    let GemmShape { m, n, k } = problem.shape;
    match problem.dataflow {
        Dataflow::Os => (k / mesh.cols(), k / mesh.rows()),
        Dataflow::Ls => (n / mesh.rows(), n / mesh.cols()),
        Dataflow::Rs => (m / mesh.cols(), m / mesh.rows()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_have_the_right_dataflows() {
        let [fwd, bd, bw] = pass_problems(Stationary::Y, 64, 8, 16);
        assert_eq!(fwd.dataflow, Dataflow::Os);
        assert_eq!(bd.dataflow, Dataflow::Ls);
        assert_eq!(bw.dataflow, Dataflow::Rs);
        // All three passes perform the same FLOPs.
        assert_eq!(fwd.shape.flops(), bd.shape.flops());
        assert_eq!(fwd.shape.flops(), bw.shape.flops());
        for st in Stationary::ALL {
            let ps = pass_problems(st, 64, 8, 16);
            assert!(ps.iter().all(|p| p.shape.flops() == fwd.shape.flops()));
        }
    }

    #[test]
    fn largest_matrix_becomes_stationary() {
        // Y (tokens x out) largest.
        assert_eq!(choose_stationary(1000, 10, 100), Stationary::Y);
        // X (tokens x in) largest.
        assert_eq!(choose_stationary(1000, 100, 10), Stationary::X);
        // W (in x out) largest.
        assert_eq!(choose_stationary(4, 1000, 1000), Stationary::W);
    }

    #[test]
    fn llm_layers_prefer_stationary_activations_at_large_batch() {
        // With weak scaling at 256 chips, tokens >> H, so X or Y dominates.
        let model = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(256);
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        for (layer, st) in tuner.phase1(&model, setup) {
            assert_ne!(
                st,
                Stationary::W,
                "layer {} should not be W-stationary",
                layer.name
            );
        }
    }

    #[test]
    fn candidate_meshes_exclude_rings() {
        let meshes = Autotuner::candidate_meshes(256);
        assert!(meshes.iter().all(|m| m.rows() >= 2 && m.cols() >= 2));
        assert_eq!(meshes.len(), 7); // 2x128 ... 128x2
    }

    #[test]
    fn candidate_meshes_nd_degenerates_to_2d() {
        assert_eq!(
            Autotuner::candidate_meshes_nd(256, 2),
            Autotuner::candidate_meshes(256)
        );
        // Higher ranks keep the 2D shapes as a prefix and append N-D ones.
        let nd = Autotuner::candidate_meshes_nd(64, 3);
        let d2 = Autotuner::candidate_meshes(64);
        assert_eq!(&nd[..d2.len()], &d2[..]);
        let pod = MeshShape::nd(&[("x", 4), ("y", 4), ("z", 4)]).unwrap();
        assert!(nd.contains(&pod));
        assert!(nd.iter().all(|m| m.axes().iter().all(|a| a.size() >= 2)));
        // All shapes multiply out to the chip count and none repeat.
        assert!(nd.iter().all(|m| m.num_chips() == 64));
        let mut dedup = nd.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), nd.len());
    }

    #[test]
    fn tune_pod_prefers_a_clean_plane() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = tiny();
        let setup = TrainingSetup::weak_scaling(4);
        let shape = MeshShape::nd(&[("x", 2), ("y", 2), ("z", 2)]).unwrap();
        // Chip (0,0,0) is a 4x straggler: every plane through it loses.
        let pod = PodProfile::ideal(shape).with_compute_slowdown(meshslice_mesh::ChipId(0), 4.0);
        let plan = tuner.tune_pod(&model, setup, &pod).unwrap();
        assert_eq!(plan.layers.len(), 4);
        assert_eq!(plan.mesh_shape.num_chips(), 4);
        assert!(
            !plan.physical_chips.contains(&meshslice_mesh::ChipId(0)),
            "winner {} should avoid the straggler",
            plan.plane
        );
        // The clean plane simulates like the fault-free analytic world:
        // strictly faster than any plane through the straggler.
        let through: Vec<_> = MeshView::full(shape)
            .planes()
            .into_iter()
            .filter(|p| p.view.chips().contains(&meshslice_mesh::ChipId(0)))
            .collect();
        assert!(!through.is_empty());
        for p in through {
            let assign = pod.project(&p.view).unwrap();
            assert!(!assign.profile.is_ideal());
        }
    }

    #[test]
    fn tune_pod_on_an_ideal_pod_is_deterministic() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = tiny();
        let setup = TrainingSetup::weak_scaling(4);
        let shape = MeshShape::nd(&[("x", 2), ("y", 2), ("z", 2)]).unwrap();
        let pod = PodProfile::ideal(shape);
        let plan = tuner.tune_pod(&model, setup, &pod).unwrap();
        // All planes are congruent 2x2 meshes: ties keep the first plane
        // in enumeration order.
        let first = &MeshView::full(shape).planes()[0];
        assert_eq!(plan.plane, *first);
        assert_eq!(plan.physical_chips, first.view.chips());
        // A second run reproduces the same plan bit-for-bit.
        assert_eq!(tuner.tune_pod(&model, setup, &pod).unwrap(), plan);
    }

    #[test]
    fn legal_slice_counts_respect_both_extents() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let mesh = MeshShape::new(4, 2);
        // OS slices K/Pc = 64 and K/Pr = 32; with B = 8 that is 8 and 4
        // blocks: legal S = divisors of 4.
        let problem = GemmProblem::new(GemmShape::new(64, 64, 128), Dataflow::Os);
        assert_eq!(tuner.legal_slice_counts(mesh, problem), vec![1, 2, 4]);
    }

    #[test]
    fn tune_finds_a_nontrivial_plan_for_gpt3() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let plan = tuner.tune(&LlmConfig::gpt3(), TrainingSetup::weak_scaling(16), 16);
        assert_eq!(plan.mesh_shape.num_chips(), 16);
        assert_eq!(plan.layers.len(), 4);
        // At least one pass should benefit from slicing.
        assert!(plan
            .layers
            .iter()
            .any(|l| l.passes.iter().any(|p| p.slice_count > 1)));
    }

    #[test]
    fn memory_constrained_tuning_respects_the_budget() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(256);
        // A generous budget returns the unconstrained optimum.
        let free = tuner.tune_within_memory(&model, setup, 256, u64::MAX);
        let unconstrained = tuner.tune(&model, setup, 256);
        assert_eq!(free.mesh_shape, unconstrained.mesh_shape);
        // The 32 GiB TPUv4 budget is satisfiable at 256 chips.
        let fits = tuner.tune_within_memory(&model, setup, 256, 32 << 30);
        let footprint = crate::memory::training_footprint(&model, setup, fits.mesh_shape, 8);
        assert!(footprint.total() <= 32 << 30);
    }

    #[test]
    #[should_panic(expected = "no mesh shape fits")]
    fn impossible_memory_budget_panics() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = LlmConfig::megatron_nlg();
        let setup = TrainingSetup::weak_scaling(16);
        tuner.tune_within_memory(&model, setup, 16, 1 << 30);
    }

    #[test]
    fn forced_y_stationary_is_no_better_than_tuned() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(64);
        let tuned = tuner.tune(&model, setup, 64);
        let forced = tuner.tune_forced(&model, setup, 64, Stationary::Y);
        assert!(tuned.estimated_block_time <= forced.estimated_block_time);
    }

    #[test]
    fn estimate_on_mesh_matches_tune_for_the_chosen_shape() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(64);
        let plan = tuner.tune(&model, setup, 64);
        let (t, _) = tuner
            .estimate_on_mesh(&model, setup, plan.mesh_shape)
            .unwrap();
        assert_eq!(t, plan.estimated_block_time);
    }

    fn tiny() -> LlmConfig {
        LlmConfig {
            name: "Tiny".to_string(),
            hidden: 256,
            heads: 4,
            layers: 2,
            ffn_mult: 4,
        }
    }

    #[test]
    fn logged_tuning_records_every_candidate() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = tiny();
        let setup = TrainingSetup::weak_scaling(4);
        let mesh = MeshShape::new(2, 2);
        let (layers, log) = tuner.tune_on_mesh_logged(&model, setup, mesh).unwrap();
        assert_eq!(layers.len(), 4);
        // Every (layer, pass) contributed at least the S=1 candidate, and
        // exactly one candidate per (layer, pass) is marked chosen.
        for layer in &layers {
            for plan in &layer.passes {
                let label = format!("{}/{}", layer.layer.name, plan.pass);
                let of_pass: Vec<_> = log.candidates.iter().filter(|c| c.label == label).collect();
                assert!(!of_pass.is_empty(), "no candidates for {label}");
                assert_eq!(
                    of_pass.iter().filter(|c| c.chosen).count(),
                    1,
                    "chosen count for {label}"
                );
                // The chosen candidate matches the plan's slice count.
                let chosen = of_pass.iter().find(|c| c.chosen).unwrap();
                assert_eq!(chosen.slice_count, plan.slice_count);
            }
        }
        // Every candidate has both a prediction and a simulation.
        for c in &log.candidates {
            assert!(c.predicted > 0.0, "{}: no prediction", c.label);
            assert!(c.simulated > 0.0, "{}: no simulation", c.label);
            assert!(c.rel_error().is_finite());
        }
    }

    #[test]
    fn logged_tuning_matches_the_analytical_plan() {
        // The chosen S per pass must agree with tune()'s choice for the
        // same mesh.
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let model = tiny();
        let setup = TrainingSetup::weak_scaling(4);
        let mesh = MeshShape::new(2, 2);
        let (layers, _) = tuner.tune_on_mesh_logged(&model, setup, mesh).unwrap();
        let (_, expected) = tuner.estimate_on_mesh(&model, setup, mesh).unwrap();
        for (got, want) in layers.iter().zip(&expected) {
            for (g, w) in got.passes.iter().zip(&want.passes) {
                assert_eq!(g.slice_count, w.slice_count);
            }
        }
    }

    #[test]
    fn robust_objective_scores_samples() {
        let samples: Vec<Duration> = [3.0, 1.0, 2.0, 4.0]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .collect();
        assert_eq!(
            RobustObjective::Worst.score(&samples),
            Duration::from_secs(4.0)
        );
        assert_eq!(
            RobustObjective::P95.score(&samples),
            Duration::from_secs(4.0)
        );
        assert_eq!(
            RobustObjective::Mean.score(&samples),
            Duration::from_secs(2.5)
        );
    }

    #[test]
    #[should_panic(expected = "cannot score zero samples")]
    fn robust_objective_rejects_empty_samples() {
        RobustObjective::Worst.score(&[]);
    }

    #[test]
    fn ideal_profiles_score_exactly_the_nominal_makespan() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let setup = TrainingSetup::weak_scaling(4);
        let profiles = vec![ClusterProfile::ideal(4); 2];
        let plan = tuner.tune_robust(
            &tiny(),
            setup,
            4,
            &[1, 2],
            &profiles,
            RobustObjective::Worst,
        );
        assert!(!plan.candidates.is_empty());
        for c in &plan.candidates {
            // An ideal profile takes the exact no-fault engine path, so
            // every draw reproduces the nominal run bit-for-bit.
            assert_eq!(c.score, c.nominal, "{:?} S={}", c.mesh_shape, c.requested_s);
            assert_eq!(c.degradation(), 1.0);
        }
    }

    #[test]
    fn straggler_profiles_raise_the_robust_score() {
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let setup = TrainingSetup::weak_scaling(4);
        let profiles = vec![ClusterProfile::ideal(4).with_compute_slowdown(0, 2.0)];
        let plan = tuner.tune_robust(&tiny(), setup, 4, &[1, 2], &profiles, RobustObjective::P95);
        let best = plan.best();
        assert!(
            best.score > best.nominal,
            "score {} vs nominal {}",
            best.score,
            best.nominal
        );
        assert!(best.degradation() > 1.0);
        // Candidates come back sorted by score.
        for pair in plan.candidates.windows(2) {
            assert!(pair[0].score <= pair[1].score);
        }
    }
}
