//! Checkpoint cost model and Young–Daly optimal-interval solver.
//!
//! Production-scale training (the regime of §5) survives permanent chip
//! failures by periodically writing the model state to durable storage and
//! restarting from the last checkpoint when a chip dies. This module
//! prices those mechanisms:
//!
//! - [`CheckpointModel`] derives the per-checkpoint write and restore
//!   times from the bytes each chip must persist — the weight shards and
//!   optimizer state already accounted by [`memory::training_footprint`]
//!   (activations and workspace are *not* checkpointed: they are
//!   recomputed from the last step boundary) — and a host/storage
//!   bandwidth.
//! - [`young_daly_interval`] solves for the checkpoint interval
//!   `τ = sqrt(2 · C · M)` that balances checkpoint overhead (`C/τ` per
//!   unit time) against expected lost work (`τ/2` per failure, failures
//!   every `M` seconds) — Young's first-order optimum, refined by Daly.
//! - [`expected_goodput`] evaluates the resulting useful-work fraction so
//!   the resilient autotuner can compare (plan, interval) candidates
//!   without simulating every failure realization.
//!
//! [`memory::training_footprint`]: crate::memory::training_footprint

use meshslice_mesh::MeshShape;

use crate::llm::{LlmConfig, TrainingSetup};
use crate::memory::training_footprint;

/// Default per-chip checkpoint bandwidth, bytes/second.
///
/// Checkpoints leave HBM over the host link (PCIe/DMA to the host, then to
/// durable storage); 25 GB/s per chip is a PCIe-4.0-x16-class figure, far
/// below the ~1.2 TB/s HBM stream rate, so the host link is the
/// bottleneck the model charges.
pub const DEFAULT_CHECKPOINT_BANDWIDTH: f64 = 25e9;

/// Per-run checkpoint/restore cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointModel {
    /// Bytes each chip persists per checkpoint (weights + optimizer).
    pub bytes_per_chip: u64,
    /// Host/storage bandwidth per chip, bytes/second.
    pub bandwidth: f64,
}

impl CheckpointModel {
    /// Prices checkpoints of `model` trained on `mesh` with slice count
    /// `s`, at [`DEFAULT_CHECKPOINT_BANDWIDTH`].
    ///
    /// Only the durable training state is persisted: bf16 weight shards
    /// plus fp32 optimizer state (master weights + two Adam moments).
    /// Activation checkpoints, gradients, and collective workspace are
    /// reconstructed after a restart, not written.
    pub fn for_training(
        model: &LlmConfig,
        setup: TrainingSetup,
        mesh: MeshShape,
        s: usize,
    ) -> CheckpointModel {
        let footprint = training_footprint(model, setup, mesh, s);
        CheckpointModel {
            bytes_per_chip: footprint.weights + footprint.optimizer,
            bandwidth: DEFAULT_CHECKPOINT_BANDWIDTH,
        }
    }

    /// Prices checkpoints of `model` *served* on `mesh`, at
    /// [`DEFAULT_CHECKPOINT_BANDWIDTH`]: only the bf16 weight shards are
    /// persisted — a serving replica has no optimizer state, and the KV
    /// cache is rebuilt by re-running prefill after a failover, not
    /// restored. This is what a replacement replica pulls from a
    /// checkpointed peer when a chip dies mid-serving.
    pub fn for_inference(model: &LlmConfig, mesh: MeshShape) -> CheckpointModel {
        let footprint = crate::memory::inference_footprint(model, mesh, 1, mesh.rows());
        CheckpointModel {
            bytes_per_chip: footprint.weights,
            bandwidth: DEFAULT_CHECKPOINT_BANDWIDTH,
        }
    }

    /// Same model at a custom per-chip bandwidth (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics unless `bandwidth` is finite and positive.
    pub fn with_bandwidth(mut self, bandwidth: f64) -> CheckpointModel {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "checkpoint bandwidth {bandwidth} must be finite and positive"
        );
        self.bandwidth = bandwidth;
        self
    }

    /// Time to write one checkpoint, seconds. All chips write their shards
    /// in parallel, so the cluster-wide write time equals the per-chip
    /// write time.
    pub fn write_secs(&self) -> f64 {
        self.bytes_per_chip as f64 / self.bandwidth
    }

    /// Time to restore from a checkpoint, seconds. Reads move the same
    /// bytes back over the same host link.
    pub fn restore_secs(&self) -> f64 {
        self.write_secs()
    }
}

/// The Young–Daly first-order optimal checkpoint interval `sqrt(2·C·M)`
/// for a per-checkpoint cost `C = checkpoint_secs` and a cluster MTBF of
/// `mtbf_secs`, both in seconds.
///
/// An infinite MTBF (no failures expected) returns `f64::INFINITY`:
/// checkpointing is pure overhead, so never checkpoint.
///
/// # Panics
///
/// Panics if `checkpoint_secs` is not finite and non-negative, or if
/// `mtbf_secs` is NaN or non-positive.
pub fn young_daly_interval(checkpoint_secs: f64, mtbf_secs: f64) -> f64 {
    assert!(
        checkpoint_secs.is_finite() && checkpoint_secs >= 0.0,
        "checkpoint cost {checkpoint_secs} must be finite and non-negative"
    );
    assert!(
        mtbf_secs > 0.0 && !mtbf_secs.is_nan(),
        "MTBF {mtbf_secs} must be positive"
    );
    if mtbf_secs.is_infinite() {
        return f64::INFINITY;
    }
    (2.0 * checkpoint_secs * mtbf_secs).sqrt()
}

/// First-order expected goodput of checkpoint/restart with interval
/// `interval_secs`: useful work divided by wall-clock, i.e.
/// `1 / (1 + w)` for the waste rate
///
/// `w = C/τ + (τ/2 + D + R) / M`
///
/// where `C = checkpoint_secs` is paid every interval, and each failure
/// (every `M = mtbf_secs`) loses half an interval of work on average plus
/// the detection latency `D = detect_secs` and restore time
/// `R = restore_secs`.
///
/// An infinite MTBF with an infinite interval returns exactly 1 (never
/// checkpoint, never fail). Returns a value in `(0, 1]`.
///
/// # Panics
///
/// Panics unless `interval_secs` is positive, the costs are finite and
/// non-negative, and `mtbf_secs` is positive.
pub fn expected_goodput(
    interval_secs: f64,
    checkpoint_secs: f64,
    restore_secs: f64,
    detect_secs: f64,
    mtbf_secs: f64,
) -> f64 {
    assert!(
        interval_secs > 0.0 && !interval_secs.is_nan(),
        "interval {interval_secs} must be positive"
    );
    for (name, v) in [
        ("checkpoint cost", checkpoint_secs),
        ("restore cost", restore_secs),
        ("detection latency", detect_secs),
    ] {
        assert!(
            v.is_finite() && v >= 0.0,
            "{name} {v} must be finite and non-negative"
        );
    }
    assert!(
        mtbf_secs > 0.0 && !mtbf_secs.is_nan(),
        "MTBF {mtbf_secs} must be positive"
    );
    let ckpt_rate = if interval_secs.is_infinite() {
        0.0
    } else {
        checkpoint_secs / interval_secs
    };
    let failure_rate = if mtbf_secs.is_infinite() {
        0.0
    } else {
        let lost = if interval_secs.is_infinite() {
            // Without checkpoints every failure loses the whole run; the
            // first-order model has no run length, so treat the loss as one
            // full MTBF of work.
            mtbf_secs
        } else {
            interval_secs / 2.0
        };
        (lost + detect_secs + restore_secs) / mtbf_secs
    };
    1.0 / (1.0 + ckpt_rate + failure_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (LlmConfig, TrainingSetup) {
        (LlmConfig::gpt3(), TrainingSetup::weak_scaling(64))
    }

    #[test]
    fn checkpoint_bytes_are_weights_plus_optimizer() {
        let (m, setup) = model();
        let mesh = MeshShape::new(8, 8);
        let ckpt = CheckpointModel::for_training(&m, setup, mesh, 8);
        let f = training_footprint(&m, setup, mesh, 8);
        assert_eq!(ckpt.bytes_per_chip, f.weights + f.optimizer);
        // Gradients / activations / workspace are never persisted.
        assert!(ckpt.bytes_per_chip < f.total());
        assert!(ckpt.write_secs() > 0.0);
        assert_eq!(ckpt.write_secs(), ckpt.restore_secs());
    }

    #[test]
    fn inference_checkpoints_persist_weights_only() {
        let (m, setup) = model();
        let mesh = MeshShape::new(8, 8);
        let serving = CheckpointModel::for_inference(&m, mesh);
        let training = CheckpointModel::for_training(&m, setup, mesh, 8);
        let f = training_footprint(&m, setup, mesh, 8);
        assert_eq!(serving.bytes_per_chip, f.weights);
        // No fp32 optimizer state: a failover restore is 4x cheaper
        // (bf16 weights vs weights + 3 fp32 tensors).
        assert!(serving.bytes_per_chip < training.bytes_per_chip / 3);
        assert!(serving.restore_secs() > 0.0);
    }

    #[test]
    fn bandwidth_scales_write_time() {
        let (m, setup) = model();
        let ckpt = CheckpointModel::for_training(&m, setup, MeshShape::new(8, 8), 8);
        let fast = ckpt.with_bandwidth(ckpt.bandwidth * 2.0);
        assert!((fast.write_secs() - ckpt.write_secs() / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn zero_bandwidth_panics() {
        let (m, setup) = model();
        CheckpointModel::for_training(&m, setup, MeshShape::new(8, 8), 8).with_bandwidth(0.0);
    }

    #[test]
    fn young_daly_matches_closed_form() {
        // C = 50 s, M = 10000 s -> sqrt(2 * 50 * 10000) = 1000 s.
        assert!((young_daly_interval(50.0, 10_000.0) - 1000.0).abs() < 1e-9);
        assert_eq!(young_daly_interval(50.0, f64::INFINITY), f64::INFINITY);
        assert_eq!(young_daly_interval(0.0, 100.0), 0.0);
    }

    #[test]
    fn young_daly_interval_maximizes_expected_goodput() {
        let (c, r, d, m) = (50.0, 50.0, 5.0, 10_000.0);
        let opt = young_daly_interval(c, m);
        let best = expected_goodput(opt, c, r, d, m);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            let other = expected_goodput(opt * factor, c, r, d, m);
            assert!(
                best >= other,
                "interval {opt} ({best}) beaten by {} ({other})",
                opt * factor
            );
        }
    }

    #[test]
    fn goodput_without_failures_is_one() {
        assert_eq!(
            expected_goodput(f64::INFINITY, 50.0, 50.0, 5.0, f64::INFINITY),
            1.0
        );
        // Checkpointing anyway still costs something.
        let g = expected_goodput(1000.0, 50.0, 50.0, 5.0, f64::INFINITY);
        assert!(g < 1.0 && g > 0.9);
    }

    #[test]
    fn goodput_degrades_with_shorter_mtbf() {
        let at = |mtbf: f64| {
            let tau = young_daly_interval(50.0, mtbf);
            expected_goodput(tau, 50.0, 50.0, 5.0, mtbf)
        };
        let g_long = at(100_000.0);
        let g_short = at(1_000.0);
        assert!(g_long > g_short, "{g_long} vs {g_short}");
        assert!(g_short > 0.0 && g_long < 1.0);
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn non_positive_mtbf_panics() {
        young_daly_interval(50.0, 0.0);
    }
}
