//! Convolution layers as distributed GeMMs (§6 extension).
//!
//! The paper notes MeshSlice "can also be applied to other types of DNN
//! layers. One example is a convolution layer, which can be implemented as
//! a GeMM operation" (via im2col, the cuDNN lowering). This module maps a
//! 2D convolution to the equivalent GeMM problem so the whole MeshSlice
//! stack — algorithms, autotuner, simulator — applies unchanged.

use meshslice_tensor::GemmShape;

/// A 2D convolution layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size (e.g. 3 for 3×3).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl Conv2d {
    /// A `kernel × kernel` convolution with stride 1 and "same" padding.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even (no symmetric same-padding exists).
    pub fn same(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same padding requires an odd kernel");
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// Output spatial extent for an input extent.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn output_extent(&self, input: usize) -> usize {
        let padded = input + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "kernel {} larger than padded input {padded}",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }

    /// The im2col GeMM of this convolution on a batch of `batch` images of
    /// `height × width` pixels:
    ///
    /// - `M` = batch × output pixels (each output pixel is a GeMM row),
    /// - `K` = in_channels × kernel² (the unrolled receptive field),
    /// - `N` = out_channels.
    pub fn as_gemm(&self, batch: usize, height: usize, width: usize) -> GemmShape {
        let oh = self.output_extent(height);
        let ow = self.output_extent(width);
        GemmShape::new(
            batch * oh * ow,
            self.out_channels,
            self.in_channels * self.kernel * self.kernel,
        )
    }

    /// Bytes of the im2col-expanded input (the `A` matrix), which is
    /// `kernel²/stride²` times larger than the raw activation — the
    /// classic im2col memory cost.
    pub fn im2col_bytes(&self, batch: usize, height: usize, width: usize, elem: usize) -> u64 {
        self.as_gemm(batch, height, width).a_bytes(elem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_convolution_preserves_extent() {
        let c = Conv2d::same(64, 128, 3);
        assert_eq!(c.output_extent(56), 56);
        assert_eq!(c.padding, 1);
    }

    #[test]
    fn strided_convolution_halves_extent() {
        let c = Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 7,
            stride: 2,
            padding: 3,
        };
        assert_eq!(c.output_extent(224), 112);
    }

    #[test]
    fn resnet_conv3x3_gemm_shape() {
        // ResNet-50's 56x56x64 3x3 stage on a batch of 32.
        let c = Conv2d::same(64, 64, 3);
        let g = c.as_gemm(32, 56, 56);
        assert_eq!(g.m, 32 * 56 * 56);
        assert_eq!(g.n, 64);
        assert_eq!(g.k, 64 * 9);
    }

    #[test]
    fn one_by_one_convolution_is_a_plain_gemm() {
        let c = Conv2d::same(256, 512, 1);
        let g = c.as_gemm(8, 14, 14);
        assert_eq!(g.k, 256);
        assert_eq!(g.flops(), 2 * (8 * 14 * 14) as u64 * 512 * 256);
    }

    #[test]
    fn im2col_inflates_input_by_kernel_area() {
        let c = Conv2d::same(64, 64, 3);
        let raw = (32 * 56 * 56 * 64 * 2) as u64;
        assert_eq!(c.im2col_bytes(32, 56, 56, 2), raw * 9);
    }

    #[test]
    fn conv_gemm_runs_through_the_distributed_stack() {
        // The mapped GeMM is an ordinary problem for MeshSlice.
        use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, MeshSlice};
        use meshslice_mesh::Torus2d;
        let c = Conv2d::same(8, 16, 3);
        let shape = c.as_gemm(1, 8, 8); // 64 x 16 x 72
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(shape.m, shape.n, shape.k), Dataflow::Os);
        let algo = MeshSlice::new(3, 2); // K/Pc = 36 = 3*2*6
        let (a, b) = problem.random_inputs(&mesh, 1);
        let out = algo.execute(&mesh, problem, &a, &b).unwrap();
        let reference = problem.reference(&a.assemble(), &b.assemble());
        assert!(out.assemble().approx_eq(&reference, 1e-4));
    }
}
