//! Analytical cost models (§3.2.2, §4.5).
//!
//! The communication model is the paper's linear formula
//!
//! ```text
//! cost_op = t_launch + (P − 1) · (t_sync + sizeof(shard)/bw)
//! ```
//!
//! which fits ring AllGather/ReduceScatter well because ring steps are
//! synchronized and contention-free. The compute model divides FLOPs by an
//! effective throughput measured per shape (the same throughput curve the
//! simulator's compute engine uses — standing in for the paper's
//! "benchmark a few GeMM operations on a single accelerator chip").
//!
//! On top of the per-operation costs, [`CostModel`] provides per-algorithm
//! execution-time estimates built from the prologue / steady-state /
//! epilogue decomposition of each algorithm's software pipeline. The
//! estimates are deliberately simpler than the event-driven simulator (no
//! HBM contention, no straggler propagation, no queueing), which is what
//! makes the Figure 13–15 estimate-vs-simulation comparisons meaningful.

use meshslice_gemm::{Dataflow, GemmProblem};
use meshslice_mesh::{CommAxis, MeshShape};
use meshslice_sim::{Duration, SimConfig};
use meshslice_tensor::GemmShape;

/// Analytical cost model over a hardware configuration.
///
/// # Example
///
/// ```
/// use meshslice::costmodel::CostModel;
/// use meshslice_sim::SimConfig;
///
/// let model = CostModel::new(SimConfig::tpu_v4());
/// // A 7-step ring AllGather of 1 MiB shards over both ring directions.
/// let t = model.collective_time(8, 1 << 20);
/// assert!(t.as_micros() > 75.0);
/// ```
#[derive(Clone, Debug)]
pub struct CostModel {
    cfg: SimConfig,
}

/// One direction's communication in a 2D GeMM: a ring collective moving
/// per-chip shards of `bytes` over a ring of `ring` chips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CommChain {
    ring: usize,
    bytes: u64,
}

/// The per-dataflow structure of a 2D GeMM on a mesh: which collectives
/// run before the local GeMM (gathers) and after it (the reduce-scatter),
/// plus the local GeMM shape.
#[derive(Clone, Debug)]
struct GemmStructure {
    gathers: Vec<CommChain>,
    reduce: Option<CommChain>,
    local: GemmShape,
    /// Which local-GeMM dimension the MeshSlice slicing divides.
    sliced_dim: SlicedDim,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlicedDim {
    K,
    N,
    M,
}

impl CostModel {
    /// Creates a model from the hardware configuration.
    pub fn new(cfg: SimConfig) -> Self {
        CostModel { cfg }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The paper's linear collective cost: `t_launch + (P−1)(t_sync +
    /// bytes/bw)`, with `bw` the bandwidth of both ring directions —
    /// AG/RdS split each shard over the two links of the ring, per step.
    /// Rings of one chip are free.
    pub fn collective_time(&self, ring: usize, step_bytes: u64) -> Duration {
        if ring <= 1 {
            return Duration::ZERO;
        }
        let steps = (ring - 1) as f64;
        Duration::from_secs(
            self.cfg.t_launch.as_secs()
                + steps
                    * (self.cfg.t_sync.as_secs()
                        + step_bytes as f64 / (2.0 * self.cfg.link_bandwidth)),
        )
    }

    /// One SendRecv exchange: launch + sync + transfer.
    pub fn sendrecv_time(&self, bytes: u64) -> Duration {
        Duration::from_secs(
            self.cfg.t_launch.as_secs()
                + self.cfg.t_sync.as_secs()
                + bytes as f64 / self.cfg.link_bandwidth,
        )
    }

    /// A SUMMA pipelined broadcast/reduce of `bytes` on a `ring`-chip ring:
    /// `P + D − 2` stages, each paying a synchronization and a packet
    /// transfer (§2.3.3).
    pub fn pipelined_bcast_time(&self, ring: usize, bytes: u64) -> Duration {
        if ring <= 1 {
            return Duration::ZERO;
        }
        let d = self.cfg.summa_packets.max(1) as f64;
        let stages = (ring as f64) + d - 2.0;
        let packet = bytes as f64 / d;
        Duration::from_secs(
            self.cfg.t_launch.as_secs()
                + stages * (self.cfg.t_sync.as_secs() + packet / self.cfg.link_bandwidth),
        )
    }

    /// Local GeMM time: kernel launch plus FLOPs over the effective
    /// throughput for the shape.
    pub fn gemm_time(&self, shape: GemmShape) -> Duration {
        Duration::from_secs(
            self.cfg.t_kernel_launch.as_secs() + self.cfg.gemm_flop_time(shape).as_secs(),
        )
    }

    /// A blocked slicing copy of `bytes` (HBM read + write).
    pub fn slice_time(&self, bytes: u64) -> Duration {
        Duration::from_secs(
            self.cfg.t_kernel_launch.as_secs() + 2.0 * bytes as f64 / self.cfg.hbm_bandwidth,
        )
    }

    fn chain_ring(&self, mesh: MeshShape, axis: CommAxis) -> usize {
        match axis {
            CommAxis::InterRow => mesh.rows(),
            CommAxis::InterCol => mesh.cols(),
        }
    }

    fn structure(&self, mesh: MeshShape, problem: GemmProblem, eb: usize) -> GemmStructure {
        let GemmShape { m, n, k } = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let chain = |axis: Option<CommAxis>, bytes: u64| {
            axis.map(|a| CommChain {
                ring: self.chain_ring(mesh, a),
                bytes,
            })
        };
        let a = chain(problem.a_axis(), problem.a_shard_bytes(mesh, eb));
        let b = chain(problem.b_axis(), problem.b_shard_bytes(mesh, eb));
        let c = chain(problem.c_axis(), problem.c_shard_bytes(mesh, eb));
        match problem.dataflow {
            Dataflow::Os => GemmStructure {
                gathers: vec![a.unwrap(), b.unwrap()],
                reduce: None,
                local: GemmShape::new(m / pr, n / pc, k),
                sliced_dim: SlicedDim::K,
            },
            Dataflow::Ls => GemmStructure {
                gathers: vec![b.unwrap()],
                reduce: c,
                local: GemmShape::new(m / pr, n, k / pc),
                sliced_dim: SlicedDim::N,
            },
            Dataflow::Rs => GemmStructure {
                gathers: vec![a.unwrap()],
                reduce: c,
                local: GemmShape::new(m, n / pc, k / pr),
                sliced_dim: SlicedDim::M,
            },
        }
    }

    fn sliced_local(local: GemmShape, dim: SlicedDim, s: usize) -> GemmShape {
        match dim {
            SlicedDim::K => GemmShape::new(local.m, local.n, local.k / s),
            SlicedDim::N => GemmShape::new(local.m, local.n / s, local.k),
            SlicedDim::M => GemmShape::new(local.m / s, local.n, local.k),
        }
    }

    /// Estimated execution time of the MeshSlice algorithm with slice
    /// count `s`: `prologue + (S−1)·steady + epilogue` (§3.2.2).
    pub fn meshslice_time(
        &self,
        mesh: MeshShape,
        problem: GemmProblem,
        s: usize,
        elem_bytes: usize,
    ) -> Duration {
        let st = self.structure(mesh, problem, elem_bytes);
        let s64 = s as u64;
        let gather_iter: Vec<Duration> = st
            .gathers
            .iter()
            .map(|g| self.collective_time(g.ring, g.bytes / s64))
            .collect();
        let reduce_iter = st
            .reduce
            .map(|r| self.collective_time(r.ring, r.bytes / s64))
            .unwrap_or(Duration::ZERO);
        // Compute chain per iteration: the partial GeMM plus the slicing
        // copies sharing the compute unit (skipped when S = 1).
        let mut compute_iter = self.gemm_time(Self::sliced_local(st.local, st.sliced_dim, s));
        if s > 1 {
            for g in &st.gathers {
                compute_iter += self.slice_time(g.bytes / s64);
            }
            if let Some(r) = st.reduce {
                compute_iter += self.slice_time(r.bytes / s64);
            }
        }
        let prologue = gather_iter.iter().copied().max().unwrap_or(Duration::ZERO);
        let steady = gather_iter
            .iter()
            .copied()
            .chain([reduce_iter, compute_iter])
            .max()
            .unwrap_or(Duration::ZERO);
        let epilogue = compute_iter + reduce_iter;
        prologue + Duration::from_secs(steady.as_secs() * (s as f64 - 1.0)) + epilogue
    }

    /// Estimated time of the Collective algorithm (`S = 1`, no slicing).
    pub fn collective_algo_time(
        &self,
        mesh: MeshShape,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Duration {
        let st = self.structure(mesh, problem, elem_bytes);
        let gathers = st
            .gathers
            .iter()
            .map(|g| self.collective_time(g.ring, g.bytes))
            .max()
            .unwrap_or(Duration::ZERO);
        let reduce = st
            .reduce
            .map(|r| self.collective_time(r.ring, r.bytes))
            .unwrap_or(Duration::ZERO);
        gathers + self.gemm_time(st.local) + reduce
    }

    /// Estimated time of Wang's algorithm: the larger direction's
    /// collective is decomposed into SendRecv steps overlapped with
    /// `unroll` grouped partial GeMMs; the other direction stays exposed.
    pub fn wang_time(
        &self,
        mesh: MeshShape,
        problem: GemmProblem,
        unroll: usize,
        elem_bytes: usize,
    ) -> Duration {
        let st = self.structure(mesh, problem, elem_bytes);
        // Candidate chains: all gathers plus the reduce.
        let mut chains: Vec<(CommChain, bool)> = st.gathers.iter().map(|g| (*g, false)).collect();
        if let Some(r) = st.reduce {
            chains.push((r, true));
        }
        // Overlap the chain with the larger traffic (paper's choice).
        let traffic = |c: &CommChain| (c.ring as u64 - 1) * c.bytes;
        let overlapped_idx = (0..chains.len())
            .max_by_key(|&i| traffic(&chains[i].0))
            .expect("at least one chain");
        let overlapped = chains[overlapped_idx];
        let ring = overlapped.0.ring;
        let groups = if unroll == 0 || !ring.is_multiple_of(unroll) || unroll > ring {
            ring
        } else {
            unroll
        };
        let per_group = ring / groups;
        // The rotation splits one dimension of the local GeMM by `groups`.
        let group_gemm = self.gemm_time(Self::sliced_local(st.local, st.sliced_dim, groups));
        // Bidirectional rotation: two arrivals per exchange interval.
        let comm_iter = Duration::from_secs(
            self.sendrecv_time(overlapped.0.bytes).as_secs() * per_group as f64 / 2.0,
        );
        // Exposed chains run whole, but on *other* link directions, so
        // they only gate the first GeMM (prologue); a trailing
        // ReduceScatter is a true epilogue.
        let exposed_is_reduce = !overlapped.1 && st.reduce.is_some();
        let exposed: Duration = chains
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != overlapped_idx)
            .map(|(_, (c, _))| self.collective_time(c.ring, c.bytes))
            .fold(Duration::ZERO, |acc, d| acc + d);
        let steady = comm_iter.max(group_gemm);
        let (prologue, epilogue) = if exposed_is_reduce {
            (comm_iter, group_gemm + exposed)
        } else {
            (exposed.max(comm_iter), group_gemm)
        };
        prologue + Duration::from_secs(steady.as_secs() * (groups as f64 - 1.0)) + epilogue
    }

    /// Estimated time of SUMMA with `panels` iterations of pipelined
    /// broadcast/reduce.
    pub fn summa_time(
        &self,
        mesh: MeshShape,
        problem: GemmProblem,
        panels: usize,
        elem_bytes: usize,
    ) -> Duration {
        let GemmShape { m, n, k } = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let eb = elem_bytes as u64;
        let p = panels.max(1);
        let (ops, local): (Vec<Duration>, GemmShape) = match problem.dataflow {
            Dataflow::Os => {
                let a_bytes = (m / pr * (k / p)) as u64 * eb;
                let b_bytes = ((k / p) * (n / pc)) as u64 * eb;
                (
                    vec![
                        self.pipelined_bcast_time(pc, a_bytes),
                        self.pipelined_bcast_time(pr, b_bytes),
                    ],
                    GemmShape::new(m / pr, n / pc, k / p),
                )
            }
            Dataflow::Ls => {
                let b_bytes = ((n / p) * (k / pc)) as u64 * eb;
                let c_bytes = (m / pr * (n / p)) as u64 * eb;
                (
                    vec![
                        self.pipelined_bcast_time(pr, b_bytes),
                        self.pipelined_bcast_time(pc, c_bytes),
                    ],
                    GemmShape::new(m / pr, n / p, k / pc),
                )
            }
            Dataflow::Rs => {
                let a_bytes = ((k / pr) * (m / p)) as u64 * eb;
                let c_bytes = ((m / p) * (n / pc)) as u64 * eb;
                (
                    vec![
                        self.pipelined_bcast_time(pc, a_bytes),
                        self.pipelined_bcast_time(pr, c_bytes),
                    ],
                    GemmShape::new(m / p, n / pc, k / pr),
                )
            }
        };
        let gemm = self.gemm_time(local);
        let steady = ops.iter().copied().chain([gemm]).max().unwrap();
        let prologue = ops.iter().copied().max().unwrap();
        prologue + Duration::from_secs(steady.as_secs() * (p as f64 - 1.0)) + gemm
    }

    /// Estimated time of Cannon's algorithm on a square mesh: the skew
    /// prologue plus `P` systolic steps overlapping shifts with GeMMs.
    ///
    /// Returns `None` for non-square meshes or non-OS dataflows.
    pub fn cannon_time(
        &self,
        mesh: MeshShape,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Option<Duration> {
        if !mesh.is_square() || problem.dataflow != Dataflow::Os {
            return None;
        }
        let p = mesh.rows();
        let GemmShape { m, n, k } = problem.shape;
        let a_bytes = problem.a_shard_bytes(mesh, elem_bytes);
        let b_bytes = problem.b_shard_bytes(mesh, elem_bytes);
        // Worst chip shifts P−1 times in each direction (parallel links).
        let skew = Duration::from_secs(
            self.sendrecv_time(a_bytes.max(b_bytes)).as_secs() * (p as f64 - 1.0),
        );
        let local = GemmShape::new(m / p, n / p, k / p);
        let gemm = self.gemm_time(local);
        let shift = self.sendrecv_time(a_bytes.max(b_bytes));
        let steady = gemm.max(shift);
        Some(skew + Duration::from_secs(steady.as_secs() * (p as f64 - 1.0)) + gemm)
    }

    /// Estimated time of the 1D baselines on a ring of `n` chips.
    ///
    /// `gathered_bytes` is the matrix each chip must collect (activations
    /// for 1D TP, weights for FSDP), rotated bidirectionally over the two
    /// ring links; `per_arrival` is the partial GeMM per received shard.
    pub fn one_d_time(
        &self,
        n: usize,
        shard_bytes: u64,
        per_arrival: GemmShape,
        unroll: usize,
    ) -> Duration {
        if n <= 1 {
            return self.gemm_time(per_arrival);
        }
        let steps = (n - 1).div_ceil(2) as f64;
        let comm = Duration::from_secs(self.sendrecv_time(shard_bytes).as_secs() * steps);
        let groups = if unroll == 0 || !n.is_multiple_of(unroll) || unroll > n {
            n
        } else {
            unroll
        };
        let merged = GemmShape::new(per_arrival.m * (n / groups), per_arrival.n, per_arrival.k);
        let compute = Duration::from_secs(self.gemm_time(merged).as_secs() * groups as f64);
        comm.max(compute) + self.sendrecv_time(shard_bytes) + self.gemm_time(merged)
    }

    /// Total per-chip communication time of MeshSlice for one problem —
    /// the quantity of Figure 15: the busy time of the chip's links
    /// (overlapped plus non-overlapped), summed over both lanes of every
    /// partial collective.
    pub fn meshslice_comm_time(
        &self,
        mesh: MeshShape,
        problem: GemmProblem,
        s: usize,
        elem_bytes: usize,
    ) -> Duration {
        let st = self.structure(mesh, problem, elem_bytes);
        let s64 = s as u64;
        let busy = |ring: usize, step_bytes: u64| -> f64 {
            if ring <= 1 {
                return 0.0;
            }
            let steps = (ring - 1) as f64;
            // Two lanes: each pays t_sync per step and carries half the
            // bytes; their busy times add.
            self.cfg.t_launch.as_secs()
                + steps
                    * (2.0 * self.cfg.t_sync.as_secs()
                        + step_bytes as f64 / self.cfg.link_bandwidth)
        };
        let per_iter: f64 = st
            .gathers
            .iter()
            .map(|g| busy(g.ring, g.bytes / s64))
            .chain(st.reduce.map(|r| busy(r.ring, r.bytes / s64)))
            .sum();
        Duration::from_secs(per_iter * s as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(SimConfig::tpu_v4())
    }

    fn os_problem() -> GemmProblem {
        // GPT-3 FF1 forward under weak scaling at 256 chips: comm and
        // compute are comparable, so overlap pays off.
        GemmProblem::new(GemmShape::new(262144, 49152, 12288), Dataflow::Os)
    }

    #[test]
    fn collective_time_is_linear_in_ring_and_bytes() {
        let m = model();
        let base = m.collective_time(2, 1 << 20).as_secs();
        let four = m.collective_time(4, 1 << 20).as_secs();
        // 3 steps vs 1 step, same launch.
        let launch = SimConfig::tpu_v4().t_launch.as_secs();
        assert!(((four - launch) / (base - launch) - 3.0).abs() < 1e-9);
        assert_eq!(m.collective_time(1, 1 << 20), Duration::ZERO);
    }

    #[test]
    fn summa_bcast_costs_more_than_collective_step() {
        let m = model();
        // Same bytes on the same ring: the pipelined bcast pays stage
        // synchronizations and bubbles.
        let coll = m.collective_time(16, 1 << 20);
        let bcast = m.pipelined_bcast_time(16, 15 << 20);
        assert!(bcast > coll);
    }

    #[test]
    fn meshslice_has_an_interior_optimum_in_s() {
        let m = model();
        let mesh = MeshShape::new(32, 8);
        let p = os_problem();
        let t1 = m.meshslice_time(mesh, p, 1, 2);
        let t8 = m.meshslice_time(mesh, p, 8, 2);
        let t64 = m.meshslice_time(mesh, p, 64, 2);
        assert!(t8 < t1, "S=8 {t8} should beat S=1 {t1}");
        assert!(t8 < t64, "S=8 {t8} should beat S=64 {t64}");
    }

    #[test]
    fn meshslice_s1_matches_collective_estimate() {
        let m = model();
        let mesh = MeshShape::new(16, 16);
        let p = os_problem();
        let ms = m.meshslice_time(mesh, p, 1, 2);
        let coll = m.collective_algo_time(mesh, p, 2);
        assert!((ms.as_secs() - coll.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn wang_beats_collective_when_overlap_pays() {
        // With communication comparable to computation, hiding the larger
        // direction behind the GeMMs pays; when communication dominates
        // completely, Wang degenerates to Collective (Figure 12).
        let m = CostModel::new(SimConfig {
            link_bandwidth: 30e9,
            ..SimConfig::tpu_v4()
        });
        let mesh = MeshShape::new(32, 8);
        let p = os_problem();
        let wang = m.wang_time(mesh, p, 8, 2);
        let coll = m.collective_algo_time(mesh, p, 2);
        assert!(wang < coll, "wang {wang} vs collective {coll}");
    }

    #[test]
    fn meshslice_beats_wang_at_tuned_s() {
        let m = model();
        let mesh = MeshShape::new(32, 8);
        let p = os_problem();
        let best_ms = (1..=64)
            .filter(|s| 12288 % (s * 8) == 0)
            .map(|s| m.meshslice_time(mesh, p, s, 2))
            .min()
            .unwrap();
        let best_wang = [1, 2, 4, 8, 16, 32]
            .iter()
            .map(|&u| m.wang_time(mesh, p, u, 2))
            .min()
            .unwrap();
        assert!(best_ms < best_wang, "{best_ms} vs {best_wang}");
    }

    #[test]
    fn summa_sync_overhead_grows_with_mesh() {
        let m = model();
        // Keep per-chip work constant while growing the mesh: SUMMA's
        // relative cost explodes with ring length.
        let p16 = GemmProblem::new(GemmShape::new(4096, 4096, 4096), Dataflow::Os);
        let t_small = m.summa_time(MeshShape::new(4, 4), p16, 16, 2);
        let p256 = GemmProblem::new(GemmShape::new(16384, 16384, 16384), Dataflow::Os);
        let t_big = m.summa_time(MeshShape::new(16, 16), p256, 64, 2);
        let comp_small = m.gemm_time(GemmShape::new(1024, 1024, 4096));
        let comp_big = m.gemm_time(GemmShape::new(1024, 1024, 16384));
        let rel_small = t_small.as_secs() / comp_small.as_secs();
        let rel_big = t_big.as_secs() / comp_big.as_secs();
        assert!(rel_big > rel_small);
    }

    #[test]
    fn cannon_requires_square_os() {
        let m = model();
        assert!(m
            .cannon_time(MeshShape::new(4, 2), os_problem(), 2)
            .is_none());
        let ls = GemmProblem::new(os_problem().shape, Dataflow::Ls);
        assert!(m.cannon_time(MeshShape::new(4, 4), ls, 2).is_none());
        assert!(m
            .cannon_time(MeshShape::new(16, 16), os_problem(), 2)
            .is_some());
    }

    #[test]
    fn one_d_is_comm_bound_at_scale() {
        let m = model();
        // 256-chip ring gathering a 6.4 GB activation matrix.
        let shard = (16384u64 * 2048 / 256) * 12288 * 2 / 256;
        let per = GemmShape::new(16384 * 2048 / 256 / 256, 12288 / 256, 12288);
        let t = m.one_d_time(256, shard, per, 8);
        let compute_total = m.gemm_time(GemmShape::new(16384 * 2048 / 256, 12288 / 256, 12288));
        assert!(t.as_secs() > 2.0 * compute_total.as_secs());
    }

    #[test]
    fn comm_only_estimate_grows_with_slice_count() {
        // Same bytes, more launches and synchronizations: the total
        // communication time (overlapped + exposed) rises with S.
        let m = model();
        let mesh = MeshShape::new(4, 4);
        let p = os_problem();
        let c1 = m.meshslice_comm_time(mesh, p, 1, 2);
        let c8 = m.meshslice_comm_time(mesh, p, 8, 2);
        assert!(c8 > c1);
        assert!(c8.as_secs() > 0.0);
    }
}
