//! Experiment drivers regenerating every table and figure of §5 (plus the
//! §7 traffic example).
//!
//! Each function returns typed rows; the `meshslice-bench` crate wraps
//! them in printable harnesses. `DESIGN.md` maps every paper figure/table
//! to its driver, and `EXPERIMENTS.md` records paper-vs-measured values.

use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, MeshSlice};
use meshslice_mesh::{MeshShape, Torus2d};
use meshslice_sim::{Duration, Engine, RunScratch, SimConfig, SimReport};
use meshslice_tensor::GemmShape;

use crate::autotuner::{pass_problems, Autotuner, RobustObjective, Stationary};
use crate::llm::{LlmConfig, TrainingSetup};
use crate::par;
use crate::training::{simulate_fc_step, Algorithm};

/// One point of the weak/strong scaling studies (Figures 9 and 12).
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Cluster size.
    pub chips: usize,
    /// Per-algorithm FC FLOP utilization (`None` when the algorithm
    /// cannot run, e.g. Cannon off square counts).
    pub utilization: Vec<(Algorithm, Option<f64>)>,
}

/// Figure 9: FC-layer FLOP utilization under weak scaling
/// (batch = chips/2) for all seven algorithms.
pub fn weak_scaling(
    model: &LlmConfig,
    chip_counts: &[usize],
    cfg: &SimConfig,
) -> Vec<ScalingPoint> {
    scaling(model, chip_counts, cfg, TrainingSetup::weak_scaling)
}

/// Figure 12: FC-layer FLOP utilization under strong scaling (batch fixed
/// at 32). FSDP is excluded — data parallelism cannot strong-scale.
pub fn strong_scaling(
    model: &LlmConfig,
    chip_counts: &[usize],
    cfg: &SimConfig,
) -> Vec<ScalingPoint> {
    let mut points = scaling(model, chip_counts, cfg, |_| TrainingSetup::strong_scaling());
    for p in &mut points {
        for (algo, util) in &mut p.utilization {
            if *algo == Algorithm::Fsdp {
                *util = None;
            }
        }
    }
    points
}

fn scaling(
    model: &LlmConfig,
    chip_counts: &[usize],
    cfg: &SimConfig,
    setup_for: impl Fn(usize) -> TrainingSetup,
) -> Vec<ScalingPoint> {
    chip_counts
        .iter()
        .map(|&chips| {
            let setup = setup_for(chips);
            let utilization = Algorithm::ALL
                .into_iter()
                .map(|algo| {
                    let u =
                        simulate_fc_step(model, setup, chips, algo, cfg).map(|r| r.utilization());
                    (algo, u)
                })
                .collect();
            ScalingPoint { chips, utilization }
        })
        .collect()
}

/// One bar of Figure 10: an algorithm's communication time relative to
/// its own computation time, broken into launch / transfer / sync.
#[derive(Clone, Debug)]
pub struct CommBreakdown {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Launch overhead ÷ compute time.
    pub launch: f64,
    /// Transfer time ÷ compute time.
    pub transfer: f64,
    /// Synchronization time ÷ compute time.
    pub sync: f64,
}

impl CommBreakdown {
    /// Total relative communication time.
    pub fn total(&self) -> f64 {
        self.launch + self.transfer + self.sync
    }
}

/// Figure 10: communication-time breakdown of the FC layers at one
/// cluster size (the paper uses 256 chips).
pub fn comm_breakdown(model: &LlmConfig, chips: usize, cfg: &SimConfig) -> Vec<CommBreakdown> {
    let setup = TrainingSetup::weak_scaling(chips);
    Algorithm::ALL
        .into_iter()
        .filter_map(|algo| {
            let r = simulate_fc_step(model, setup, chips, algo, cfg)?;
            let (launch, transfer, sync) = r.report.comm_relative_to_compute();
            Some(CommBreakdown {
                algorithm: algo,
                launch,
                transfer,
                sync,
            })
        })
        .collect()
}

/// One group of Figure 11: a distinct FC GeMM shape and the utilization
/// of each 2D algorithm on it.
#[derive(Clone, Debug)]
pub struct MatrixShapePoint {
    /// The global GeMM shape.
    pub shape: GemmShape,
    /// Per-algorithm utilization.
    pub utilization: Vec<(Algorithm, Option<f64>)>,
}

/// Figure 11: FLOP utilization of the distinct FC GeMMs (eight per model)
/// for the five 2D algorithms at one cluster size.
pub fn matrix_shapes(model: &LlmConfig, chips: usize, cfg: &SimConfig) -> Vec<MatrixShapePoint> {
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(cfg.clone());
    model
        .distinct_gemms(setup)
        .into_iter()
        .map(|shape| {
            let utilization = Algorithm::TWO_D
                .into_iter()
                .map(|algo| {
                    (
                        algo,
                        single_gemm_utilization(&tuner, shape, chips, algo, cfg),
                    )
                })
                .collect();
            MatrixShapePoint { shape, utilization }
        })
        .collect()
}

/// Simulates one GeMM with an algorithm at its tuned mesh/parameters;
/// OS dataflow with the largest matrix stationary via shape orientation.
fn single_gemm_utilization(
    tuner: &Autotuner,
    shape: GemmShape,
    chips: usize,
    algorithm: Algorithm,
    cfg: &SimConfig,
) -> Option<f64> {
    let cm = tuner.cost_model();
    let eb = cfg.elem_bytes;
    let problem = GemmProblem::new(shape, Dataflow::Os);
    let meshes: Vec<MeshShape> = match algorithm {
        Algorithm::Cannon => vec![MeshShape::square(chips)?],
        _ => Autotuner::candidate_meshes(chips),
    };
    let mut best: Option<(Duration, MeshShape, usize)> = None;
    for mesh in meshes {
        if problem.check_divisible(mesh).is_err() {
            continue;
        }
        let (s, _) = tuner.best_slice_count(mesh, problem, eb);
        let t = match algorithm {
            Algorithm::MeshSlice => cm.meshslice_time(mesh, problem, s, eb),
            Algorithm::Collective => cm.collective_algo_time(mesh, problem, eb),
            Algorithm::Wang => cm.wang_time(mesh, problem, s, eb),
            Algorithm::Summa => cm.summa_time(mesh, problem, mesh.rows().max(mesh.cols()), eb),
            Algorithm::Cannon => cm.cannon_time(mesh, problem, eb)?,
            _ => return None,
        };
        if best.as_ref().map(|(bt, _, _)| t < *bt).unwrap_or(true) {
            best = Some((t, mesh, s));
        }
    }
    let (_, mesh_shape, s) = best?;
    let mesh = Torus2d::from_shape(mesh_shape);
    let algo: Box<dyn DistributedGemm> = match algorithm {
        Algorithm::MeshSlice => Box::new(MeshSlice::new(
            s,
            if tuner.legal_slice_counts(mesh_shape, problem).contains(&s) {
                tuner.block()
            } else {
                1
            },
        )),
        Algorithm::Collective => Box::new(meshslice_gemm::Collective),
        Algorithm::Wang => Box::new(meshslice_gemm::Wang::new().with_unroll(s)),
        Algorithm::Summa => {
            let panels = crate::training::summa_panels(mesh_shape, problem, s)?;
            Box::new(meshslice_gemm::Summa::new(panels))
        }
        Algorithm::Cannon => Box::new(meshslice_gemm::Cannon),
        _ => return None,
    };
    let program = algo.schedule(&mesh, problem, eb).ok()?;
    let report = Engine::new(mesh, cfg.clone()).run(&program);
    Some(report.flop_utilization())
}

/// Table 2: FC utilization without (all-Y-stationary) and with the
/// phase-1 dataflow optimization.
#[derive(Clone, Debug)]
pub struct DataflowAblation {
    /// Model name.
    pub model: String,
    /// Utilization with the default Y-stationary dataflows.
    pub not_optimized: f64,
    /// Utilization with the autotuned dataflows.
    pub optimized: f64,
}

impl DataflowAblation {
    /// Speedup of the optimized dataflows.
    pub fn speedup(&self) -> f64 {
        self.optimized / self.not_optimized - 1.0
    }
}

/// Runs the Table 2 ablation for one model.
pub fn dataflow_ablation(model: &LlmConfig, chips: usize, cfg: &SimConfig) -> DataflowAblation {
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(cfg.clone());
    let run = |plan: &crate::autotuner::TunePlan| -> f64 {
        let mesh = Torus2d::from_shape(plan.mesh_shape);
        let mut reports = Vec::new();
        for layer in &plan.layers {
            for pass in &layer.passes {
                let block = if tuner
                    .legal_slice_counts(plan.mesh_shape, pass.problem)
                    .contains(&pass.slice_count)
                {
                    tuner.block()
                } else {
                    1
                };
                let algo = MeshSlice::new(pass.slice_count, block);
                let program = algo
                    .schedule(&mesh, pass.problem, cfg.elem_bytes)
                    .expect("tuned plan must be schedulable");
                reports.push(Engine::new(mesh.clone(), cfg.clone()).run(&program));
            }
        }
        SimReport::merge_serial(&reports).flop_utilization()
    };
    let optimized_plan = tuner.tune(model, setup, chips);
    let forced_plan = tuner.tune_forced(model, setup, chips, Stationary::Y);
    DataflowAblation {
        model: model.name.clone(),
        not_optimized: run(&forced_plan),
        optimized: run(&optimized_plan),
    }
}

/// One mesh shape of the Figure 13 sweep.
#[derive(Clone, Debug)]
pub struct MeshShapePoint {
    /// The mesh shape.
    pub mesh: MeshShape,
    /// Utilization predicted by the analytical cost models.
    pub estimated: Option<f64>,
    /// Utilization measured by simulation.
    pub simulated: Option<f64>,
}

/// Figure 13: estimated vs simulated FC utilization across every mesh
/// shape of a cluster.
pub fn mesh_shape_sweep(model: &LlmConfig, chips: usize, cfg: &SimConfig) -> Vec<MeshShapePoint> {
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(cfg.clone());
    let ideal = ideal_block_time(model, setup, chips, cfg);
    Autotuner::candidate_meshes(chips)
        .into_iter()
        .map(|mesh_shape| {
            let Some((est, layers)) = tuner.estimate_on_mesh(model, setup, mesh_shape) else {
                return MeshShapePoint {
                    mesh: mesh_shape,
                    estimated: None,
                    simulated: None,
                };
            };
            let estimated = Some(ideal.as_secs() / est.as_secs());
            let mesh = Torus2d::from_shape(mesh_shape);
            let mut reports = Vec::new();
            let mut ok = true;
            for layer in &layers {
                for pass in &layer.passes {
                    let block = if tuner
                        .legal_slice_counts(mesh_shape, pass.problem)
                        .contains(&pass.slice_count)
                    {
                        tuner.block()
                    } else {
                        1
                    };
                    let algo = MeshSlice::new(pass.slice_count, block);
                    match algo.schedule(&mesh, pass.problem, cfg.elem_bytes) {
                        Ok(p) => reports.push(Engine::new(mesh.clone(), cfg.clone()).run(&p)),
                        Err(_) => ok = false,
                    }
                }
            }
            let simulated = ok.then(|| SimReport::merge_serial(&reports).flop_utilization());
            MeshShapePoint {
                mesh: mesh_shape,
                estimated,
                simulated,
            }
        })
        .collect()
}

/// The ideal (all-compute-at-peak) time of one block's FC GeMMs.
fn ideal_block_time(
    model: &LlmConfig,
    setup: TrainingSetup,
    chips: usize,
    cfg: &SimConfig,
) -> Duration {
    let flops: u64 = model.fc_gemms(setup).iter().map(|g| g.shape.flops()).sum();
    Duration::from_secs(flops as f64 / (cfg.peak_flops * chips as f64))
}

/// One slice count of the Figure 14 sweep.
#[derive(Clone, Debug)]
pub struct SliceCountPoint {
    /// The slice count applied to every FC GeMM (clamped per pass to the
    /// largest legal value).
    pub requested_s: usize,
    /// Cost-model utilization.
    pub estimated: f64,
    /// Simulated utilization.
    pub simulated: f64,
}

/// Figure 14: estimated vs simulated utilization across slice counts on a
/// fixed mesh (the paper uses 32×8).
pub fn slice_count_sweep(
    model: &LlmConfig,
    mesh_shape: MeshShape,
    s_values: &[usize],
    cfg: &SimConfig,
) -> Vec<SliceCountPoint> {
    let chips = mesh_shape.num_chips();
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(cfg.clone());
    let ideal = ideal_block_time(model, setup, chips, cfg);
    let mesh = Torus2d::from_shape(mesh_shape);
    s_values
        .iter()
        .map(|&s| {
            let mut est_total = Duration::ZERO;
            let mut reports = Vec::new();
            for layer in model.fc_layers() {
                let stationary = crate::autotuner::choose_stationary(
                    setup.tokens(),
                    layer.input_dim,
                    layer.output_dim,
                );
                for problem in pass_problems(
                    stationary,
                    setup.tokens(),
                    layer.input_dim,
                    layer.output_dim,
                ) {
                    let legal = tuner.legal_slice_counts(mesh_shape, problem);
                    let actual = legal.iter().copied().filter(|&x| x <= s).max().unwrap_or(1);
                    est_total += tuner.cost_model().meshslice_time(
                        mesh_shape,
                        problem,
                        actual,
                        cfg.elem_bytes,
                    );
                    let block = if legal.contains(&actual) {
                        tuner.block()
                    } else {
                        1
                    };
                    let algo = MeshSlice::new(actual, block);
                    let program = algo
                        .schedule(&mesh, problem, cfg.elem_bytes)
                        .expect("legal slice count must schedule");
                    reports.push(Engine::new(mesh.clone(), cfg.clone()).run(&program));
                }
            }
            SliceCountPoint {
                requested_s: s,
                estimated: ideal.as_secs() / est_total.as_secs(),
                simulated: SimReport::merge_serial(&reports).flop_utilization(),
            }
        })
        .collect()
}

/// Table 3: FC utilization on the "real" 4×4 TPUv4 cluster, where AG/RdS
/// cannot overlap with computation.
#[derive(Clone, Debug)]
pub struct RealHwPoint {
    /// Model name.
    pub model: String,
    /// Collective utilization.
    pub collective: f64,
    /// Wang utilization.
    pub wang: f64,
    /// MeshSlice utilization (no overlap possible).
    pub meshslice: f64,
    /// Cost-model estimate of MeshSlice *with* overlap.
    pub meshslice_overlap_estimate: f64,
}

/// Runs the Table 3 study: a 4×4 mesh with the no-overlap hardware model.
pub fn real_hw(model: &LlmConfig, cfg_real: &SimConfig) -> RealHwPoint {
    let chips = 16;
    let setup = TrainingSetup::weak_scaling(chips);
    let util = |algo: Algorithm| {
        simulate_fc_step(model, setup, chips, algo, cfg_real)
            .map(|r| r.utilization())
            .unwrap_or(0.0)
    };
    // Overlap estimate: the analytical pipeline model on the same
    // hardware constants (which assumes overlap).
    let tuner = Autotuner::new(cfg_real.clone());
    let plan = tuner.tune(model, setup, chips);
    let ideal = ideal_block_time(model, setup, chips, cfg_real);
    RealHwPoint {
        model: model.name.clone(),
        collective: util(Algorithm::Collective),
        wang: util(Algorithm::Wang),
        meshslice: util(Algorithm::MeshSlice),
        meshslice_overlap_estimate: ideal.as_secs() / plan.estimated_block_time.as_secs(),
    }
}

/// One FC layer of the Figure 15 comparison: estimated vs simulated total
/// communication time of one forward + backward pass.
#[derive(Clone, Debug)]
pub struct CommModelPoint {
    /// Model and layer, e.g. `"GPT-3 FF1"`.
    pub label: String,
    /// Cost-model communication time (seconds).
    pub estimated: f64,
    /// Simulated communication time (seconds, per chip).
    pub simulated: f64,
}

impl CommModelPoint {
    /// Relative estimation error.
    pub fn error(&self) -> f64 {
        (self.estimated - self.simulated).abs() / self.simulated
    }
}

/// Figure 15: communication cost model validation over the FC layers of
/// the given models (8 layers for the paper's two LLMs) on a 4×4 mesh.
pub fn comm_model_validation(models: &[LlmConfig], cfg: &SimConfig) -> Vec<CommModelPoint> {
    let chips = 16;
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(cfg.clone());
    let mut out = Vec::new();
    for model in models {
        let plan = tuner.tune(model, setup, chips);
        let mesh = Torus2d::from_shape(plan.mesh_shape);
        for layer in &plan.layers {
            let mut est = 0.0;
            let mut sim = 0.0;
            for pass in &layer.passes {
                est += tuner
                    .cost_model()
                    .meshslice_comm_time(
                        plan.mesh_shape,
                        pass.problem,
                        pass.slice_count,
                        cfg.elem_bytes,
                    )
                    .as_secs();
                let block = if tuner
                    .legal_slice_counts(plan.mesh_shape, pass.problem)
                    .contains(&pass.slice_count)
                {
                    tuner.block()
                } else {
                    1
                };
                let algo = MeshSlice::new(pass.slice_count, block);
                let program = algo
                    .schedule(&mesh, pass.problem, cfg.elem_bytes)
                    .expect("tuned plan must schedule");
                let report = Engine::new(mesh.clone(), cfg.clone()).run(&program);
                sim += report.per_chip().comm_total().as_secs();
            }
            out.push(CommModelPoint {
                label: format!("{} {}", model.name, layer.layer.name),
                estimated: est,
                simulated: sim,
            });
        }
    }
    out
}

/// The prompt length [`inference_study`] prices the prefill phase at.
pub const DEFAULT_PROMPT_LEN: usize = 512;

/// One point of the §6 inference extension: per-phase latency of one
/// transformer block with a 2D GeMM algorithm.
#[derive(Clone, Debug)]
pub struct InferencePoint {
    /// Batch size (concurrent sequences).
    pub batch: usize,
    /// Per-algorithm *prefill* latency of one block, seconds — the whole
    /// prompt in one pass, `M = batch × prompt_len` (`None` = unsupported).
    pub prefill_latency: Vec<(Algorithm, Option<f64>)>,
    /// Per-algorithm *decode*-step latency of one block, seconds —
    /// `M = batch` (`None` = unsupported).
    pub block_latency: Vec<(Algorithm, Option<f64>)>,
}

/// §6 extension: autoregressive inference on a 2D mesh, priced per phase.
/// Prefill processes the whole prompt at once (`M = batch × prompt_len`),
/// so it behaves like a training forward pass: compute-bound, overlap
/// matters. Each decode step's FC GeMMs have only `M = batch` rows, so
/// they are memory-bound (the full weight shards stream from HBM every
/// step) and the fixed communication overheads — launch and
/// synchronization latency, not bandwidth — dominate. Both phases keep
/// the weights stationary (W-stationary RS dataflow, per Table 1): in a
/// serving fleet the weight shards stay resident across requests, and
/// re-sharding them between phases would cost a cross-mesh resharding.
pub fn inference_study(
    model: &LlmConfig,
    chips: usize,
    batches: &[usize],
    prompt_len: usize,
    cfg: &SimConfig,
) -> Vec<InferencePoint> {
    let tuner = Autotuner::new(cfg.clone());
    let phase = |gemms: &[crate::llm::FcGemm]| -> Vec<(Algorithm, Option<f64>)> {
        [Algorithm::MeshSlice, Algorithm::Collective, Algorithm::Wang]
            .into_iter()
            .map(|algo| {
                let mut total = 0.0f64;
                let mut ok = true;
                for g in gemms {
                    let problem = GemmProblem::new(g.shape, Dataflow::Rs);
                    match phase_latency(&tuner, problem, chips, algo, cfg) {
                        Some(t) => total += t,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                (algo, ok.then_some(total))
            })
            .collect()
    };
    batches
        .iter()
        .map(|&batch| InferencePoint {
            batch,
            prefill_latency: phase(&model.prefill_gemms(batch, prompt_len)),
            block_latency: phase(&model.decode_gemms(batch)),
        })
        .collect()
}

fn phase_latency(
    tuner: &Autotuner,
    problem: GemmProblem,
    chips: usize,
    algorithm: Algorithm,
    cfg: &SimConfig,
) -> Option<f64> {
    let cm = tuner.cost_model();
    let eb = cfg.elem_bytes;
    let mut best: Option<(f64, MeshShape, usize)> = None;
    for mesh in Autotuner::candidate_meshes(chips) {
        if problem.check_divisible(mesh).is_err() {
            continue;
        }
        let (s, _) = tuner.best_slice_count(mesh, problem, eb);
        let t = match algorithm {
            Algorithm::MeshSlice => cm.meshslice_time(mesh, problem, s, eb),
            Algorithm::Collective => cm.collective_algo_time(mesh, problem, eb),
            Algorithm::Wang => cm.wang_time(mesh, problem, s, eb),
            _ => return None,
        }
        .as_secs();
        if best.as_ref().map(|(bt, _, _)| t < *bt).unwrap_or(true) {
            best = Some((t, mesh, s));
        }
    }
    let (_, mesh_shape, s) = best?;
    let mesh = Torus2d::from_shape(mesh_shape);
    let algo: Box<dyn DistributedGemm> = match algorithm {
        Algorithm::MeshSlice => Box::new(MeshSlice::new(
            s,
            if tuner.legal_slice_counts(mesh_shape, problem).contains(&s) {
                tuner.block()
            } else {
                1
            },
        )),
        Algorithm::Collective => Box::new(meshslice_gemm::Collective),
        Algorithm::Wang => Box::new(meshslice_gemm::Wang::new().with_unroll(s)),
        _ => return None,
    };
    let program = algo.schedule(&mesh, problem, eb).ok()?;
    Some(
        Engine::new(mesh, cfg.clone())
            .run(&program)
            .makespan()
            .as_secs(),
    )
}

/// One point of the §6 extension study: MeshSlice on a *logical* mesh
/// over a shared fabric instead of a physical torus.
#[derive(Clone, Debug)]
pub struct LogicalMeshPoint {
    /// Network description.
    pub network: String,
    /// FC FLOP utilization of MeshSlice.
    pub utilization: f64,
}

/// §6 extension: how MeshSlice degrades when the 2D mesh is logical —
/// mapped onto a switched GPU-style fabric where collectives contend for
/// bisection bandwidth — at several fabric capacities (expressed as a
/// fraction of the aggregate dedicated-link bandwidth of the torus).
pub fn logical_mesh_study(
    model: &LlmConfig,
    chips: usize,
    fabric_fractions: &[f64],
    cfg: &SimConfig,
) -> Vec<LogicalMeshPoint> {
    let setup = TrainingSetup::weak_scaling(chips);
    let mut out = Vec::new();
    if let Some(r) = simulate_fc_step(model, setup, chips, Algorithm::MeshSlice, cfg) {
        out.push(LogicalMeshPoint {
            network: "physical torus".to_string(),
            utilization: r.utilization(),
        });
    }
    // Aggregate dedicated bandwidth of the torus: 4 links per chip.
    let dedicated = 4.0 * cfg.link_bandwidth * chips as f64;
    for &f in fabric_fractions {
        let fabric_cfg = SimConfig {
            network: meshslice_sim::NetworkModel::SharedFabric {
                bisection_bandwidth: dedicated * f,
            },
            ..cfg.clone()
        };
        if let Some(r) = simulate_fc_step(model, setup, chips, Algorithm::MeshSlice, &fabric_cfg) {
            out.push(LogicalMeshPoint {
                network: format!("fabric {:.0}% of dedicated", f * 100.0),
                utilization: r.utilization(),
            });
        }
    }
    out
}

/// The §7 example: per-chip communication traffic of 2.5D GeMM vs
/// MeshSlice + DP on a 1024-chip 3D cluster.
#[derive(Clone, Debug)]
pub struct Traffic25dPoint {
    /// Method name.
    pub method: String,
    /// 3D torus shape description.
    pub torus: String,
    /// Per-chip communication traffic in bytes.
    pub per_chip_bytes: u64,
}

/// Computes the §7 traffic comparison analytically for GPT-3's FF2 layer
/// (`(M, N, K) = (1024K, 12K, 48K)`) on 1024 chips.
pub fn traffic_25d_example(elem_bytes: usize) -> Vec<Traffic25dPoint> {
    let (m, n, k) = (1024 * 1024usize, 12 * 1024usize, 48 * 1024usize);
    let eb = elem_bytes as u64;

    // 2.5D GeMM: c = 4 copies over a 16x16 Cannon base mesh (the only
    // legal square base for 1024 chips at this depth).
    let (p, c) = (16usize, 4usize);
    let algo_25d = meshslice_gemm::TwoFiveD::new(p, c);
    let traffic_25d = algo_25d.traffic_per_chip(GemmShape::new(m, n, k), elem_bytes);

    // MeshSlice + DP: 4-way DP over 32x8 meshes; the paper's phase-1
    // choice keeps the huge activation matrix stationary (X-stationary,
    // LS dataflow), so only W (inter-row) and C (inter-column) move.
    let (pr, pc, dp) = (32usize, 8usize, 4usize);
    let m_dp = m / dp;
    let w_shard = (k / pr) as u64 * (n / pc) as u64 * eb;
    let c_shard_ms = (m_dp / pr) as u64 * (n / pc) as u64 * eb;
    let traffic_ms = (pr as u64 - 1) * w_shard + (pc as u64 - 1) * c_shard_ms;

    vec![
        Traffic25dPoint {
            method: "2.5D GeMM (Cannon-based)".to_string(),
            torus: format!("{p}x{p}x{c}"),
            per_chip_bytes: traffic_25d,
        },
        Traffic25dPoint {
            method: "MeshSlice + DP".to_string(),
            torus: format!("{pr}x{pc}x{dp}"),
            per_chip_bytes: traffic_ms,
        },
    ]
}

/// One cell of the straggler-sensitivity grid: a (severity, slice count)
/// pair with simulated makespans across seeded straggler draws.
#[derive(Clone, Debug)]
pub struct StragglerPoint {
    /// Straggler compute-slowdown factor (1.0 = fault-free row).
    pub severity: f64,
    /// Requested MeshSlice slice count (clamped per pass).
    pub requested_s: usize,
    /// Fault-free FC block makespan at this slice count.
    pub nominal: Duration,
    /// 95th-percentile makespan across the seeded draws.
    pub p95: Duration,
    /// Worst-case makespan across the seeded draws.
    pub worst: Duration,
}

/// Straggler-severity × slice-count sensitivity grid: for each severity, a
/// single straggler chip (location drawn per seed) slows its compute by
/// the factor, and every slice count is scored by p95/worst simulated
/// makespan of one FC block on the fixed mesh. Rows share seeds, so the
/// per-row argmin shows how the simulated-optimal `S` shifts as the
/// cluster gets noisier.
///
/// Results are grouped by severity in the order given; within a row, by
/// slice count in the order given.
pub fn straggler_sensitivity(
    model: &LlmConfig,
    mesh_shape: MeshShape,
    s_values: &[usize],
    severities: &[f64],
    num_seeds: usize,
    base_seed: u64,
    cfg: &SimConfig,
) -> Vec<StragglerPoint> {
    let chips = mesh_shape.num_chips();
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(cfg.clone());
    // Each severity row shares one profile sample; the (severity, S) cells
    // are then independent: fan them out over the sweep workers (results
    // are placed by input index, so the grid order — severities outer,
    // slice counts inner — is identical at any thread count). Within a
    // cell, the block is scheduled and lowered once and replayed per draw.
    let profiles_by_row: Vec<_> = severities
        .iter()
        .map(|&severity| {
            meshslice_faults::FaultSpec::stragglers(1, severity)
                .sample_profiles(chips, base_seed, num_seeds)
        })
        .collect();
    let mut cells = Vec::new();
    for (row, &severity) in severities.iter().enumerate() {
        for &s in s_values {
            cells.push((row, severity, s));
        }
    }
    par::parallel_map_with(
        par::threads(),
        &cells,
        RunScratch::new,
        |scratch, &(row, severity, s)| {
            let (nominal, draws) = tuner
                .simulate_block_draws(model, setup, mesh_shape, s, &profiles_by_row[row], scratch)
                .expect("grid mesh must divide the model's FC GeMMs");
            StragglerPoint {
                severity,
                requested_s: s,
                nominal,
                p95: RobustObjective::P95.score(&draws),
                worst: RobustObjective::Worst.score(&draws),
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LlmConfig {
        LlmConfig {
            name: "Tiny".to_string(),
            hidden: 256,
            heads: 4,
            layers: 2,
            ffn_mult: 4,
        }
    }

    fn fast_cfg() -> SimConfig {
        SimConfig::tpu_v4()
    }

    #[test]
    fn weak_scaling_produces_points_for_all_algorithms() {
        let pts = weak_scaling(&tiny(), &[4], &fast_cfg());
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].utilization.len(), 7);
        // On 4 chips (square), everything should run.
        assert!(pts[0].utilization.iter().all(|(_, u)| u.is_some()));
    }

    #[test]
    fn strong_scaling_excludes_fsdp() {
        let pts = strong_scaling(&tiny(), &[4], &fast_cfg());
        let fsdp = pts[0]
            .utilization
            .iter()
            .find(|(a, _)| *a == Algorithm::Fsdp)
            .unwrap();
        assert!(fsdp.1.is_none());
    }

    #[test]
    fn comm_breakdown_has_positive_components() {
        let rows = comm_breakdown(&tiny(), 4, &fast_cfg());
        assert!(!rows.is_empty());
        for row in rows {
            assert!(row.total() > 0.0, "{}", row.algorithm);
        }
    }

    #[test]
    fn matrix_shapes_covers_distinct_gemms() {
        let rows = matrix_shapes(&tiny(), 4, &fast_cfg());
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn dataflow_ablation_reports_speedup() {
        let row = dataflow_ablation(&tiny(), 8, &fast_cfg());
        assert!(row.optimized > 0.0 && row.not_optimized > 0.0);
        assert!(row.optimized >= row.not_optimized * 0.9);
    }

    #[test]
    fn mesh_shape_sweep_has_estimates_and_sims() {
        let rows = mesh_shape_sweep(&tiny(), 8, &fast_cfg());
        assert!(rows
            .iter()
            .any(|r| r.estimated.is_some() && r.simulated.is_some()));
    }

    #[test]
    fn slice_count_sweep_tracks_estimate_and_sim() {
        let rows = slice_count_sweep(&tiny(), MeshShape::new(4, 2), &[1, 2, 4], &fast_cfg());
        assert_eq!(rows.len(), 3);
        for r in rows {
            assert!(r.estimated > 0.0 && r.simulated > 0.0);
        }
    }

    #[test]
    fn comm_model_is_reasonably_accurate() {
        let rows = comm_model_validation(&[tiny()], &fast_cfg());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.error() < 0.35,
                "{}: est {} vs sim {}",
                r.label,
                r.estimated,
                r.simulated
            );
        }
    }

    #[test]
    fn straggler_sensitivity_grid_is_complete_and_ordered() {
        let pts = straggler_sensitivity(
            &tiny(),
            MeshShape::new(2, 2),
            &[1, 2],
            &[1.0, 2.0],
            2,
            7,
            &fast_cfg(),
        );
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.nominal > Duration::ZERO);
            // The worst draw is at least as slow as the 95th percentile,
            // which is at least as slow as the fault-free run.
            assert!(p.worst >= p.p95);
            assert!(p.p95 >= p.nominal);
        }
        // Severity 1.0 means the sampled profiles are ideal, so the
        // seeded draws reproduce the nominal run exactly.
        for p in pts.iter().filter(|p| p.severity == 1.0) {
            assert_eq!(p.p95, p.nominal);
        }
        // A 2x straggler must actually hurt.
        for p in pts.iter().filter(|p| p.severity == 2.0) {
            assert!(p.worst > p.nominal);
        }
    }

    #[test]
    fn traffic_example_matches_paper_magnitudes() {
        let rows = traffic_25d_example(2);
        let t25 = rows[0].per_chip_bytes as f64;
        let tms = rows[1].per_chip_bytes as f64;
        // Paper: ~1.6 GB vs ~336 MB — MeshSlice+DP moves several times
        // less data.
        assert!(t25 > 1.2e9 && t25 < 2.2e9, "2.5D traffic {t25}");
        assert!(tms > 2.2e8 && tms < 4.5e8, "MeshSlice traffic {tms}");
        assert!(t25 / tms > 3.0);
    }
}
