//! **MeshSlice**: efficient 2D tensor parallelism for distributed DNN
//! training — a Rust reproduction of the ISCA 2025 paper.
//!
//! The crate ties the substrates together into the paper's two
//! contributions:
//!
//! 1. The **MeshSlice 2D GeMM algorithm** (re-exported from
//!    [`meshslice_gemm`]) with its baselines, plus
//! 2. the **MeshSlice LLM autotuner** ([`autotuner`]): phase 1 picks the
//!    dataflow of every fully-connected layer from Table 1 (making the
//!    largest matrix stationary); phase 2 co-optimizes the cluster mesh
//!    shape and each layer's slice count `S` with the analytical cost
//!    models of [`costmodel`].
//!
//! On top sit [`llm`] (GPT-3 / Megatron-NLG model descriptions and their
//! FC-layer GeMMs), [`training`] (simulating one training step of the FC
//! layers with any algorithm), and [`experiments`] (drivers that
//! regenerate every table and figure of the paper's evaluation; see
//! `DESIGN.md` for the experiment index).
//!
//! # Example: autotune and simulate GPT-3 on 64 chips
//!
//! ```
//! use meshslice::autotuner::Autotuner;
//! use meshslice::llm::{LlmConfig, TrainingSetup};
//! use meshslice_sim::SimConfig;
//!
//! let model = LlmConfig::gpt3();
//! let setup = TrainingSetup::weak_scaling(64);
//! let tuner = Autotuner::new(SimConfig::tpu_v4());
//! let plan = tuner.tune(&model, setup, 64);
//! assert_eq!(plan.mesh_shape.num_chips(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotuner;
pub mod checkpoint;
pub mod conv;
pub mod costmodel;
pub mod experiments;
pub mod llm;
pub mod memory;
pub mod par;
pub mod parallelism;
pub mod report;
pub mod training;

pub use meshslice_gemm::{
    Cannon, Collective, DataOp, Dataflow, DistributedGemm, Fsdp, GemmError, GemmProblem, MeshSlice,
    OneDimTp, Plan, PlanAction, Summa, Wang,
};
pub use meshslice_mesh::MeshShape;
pub use meshslice_sim::{Engine, SimConfig, SimReport};
pub use meshslice_tensor::GemmShape;
