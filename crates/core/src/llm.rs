//! LLM model descriptions and their fully-connected-layer GeMMs (§4.4).
//!
//! A transformer block has four FC layers — two in multi-head attention
//! (the fused QKV projection and the output projection) and two in the
//! feed-forward network. Training each FC layer runs three GeMMs (forward,
//! backward-data, backward-weight), so one block contributes twelve GeMMs;
//! deduplicated up to transposition they form the eight distinct shapes
//! per model of the paper's Figure 11.
//!
//! Non-FC operations (attention scores/softmax, layer norms, elementwise)
//! are communication-free and identical across the distributed GeMM
//! algorithms; [`LlmConfig::non_fc_block_time`] models their per-block
//! cost analytically (the paper benchmarks them on a single real TPU),
//! which is what converts FC-layer speedups into end-to-end speedups.

use std::fmt;

use meshslice_sim::{Duration, SimConfig};
use meshslice_tensor::GemmShape;

/// An LLM architecture (the subset that determines FC-layer GeMM shapes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LlmConfig {
    /// Model name for reports.
    pub name: String,
    /// Hidden dimension `H` (= heads × per-head dim).
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Feed-forward expansion factor (4 in GPT-style models).
    pub ffn_mult: usize,
}

/// One of the four FC layers of a transformer block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FcLayer {
    /// Layer name (`"QKV"`, `"Proj"`, `"FF1"`, `"FF2"`).
    pub name: &'static str,
    /// Input feature dimension.
    pub input_dim: usize,
    /// Output feature dimension.
    pub output_dim: usize,
}

/// Which of the three training GeMMs of an FC layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// `Y = X·W`.
    Forward,
    /// `X' = Y'·Wᵀ`.
    BackwardData,
    /// `W' = Xᵀ·Y'`.
    BackwardWeight,
}

impl Pass {
    /// All three passes, in execution order.
    pub const ALL: [Pass; 3] = [Pass::Forward, Pass::BackwardData, Pass::BackwardWeight];
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pass::Forward => write!(f, "fwd"),
            Pass::BackwardData => write!(f, "bwd-data"),
            Pass::BackwardWeight => write!(f, "bwd-weight"),
        }
    }
}

/// Global batch size and sequence length of a training run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrainingSetup {
    /// Global batch size (sequences per step).
    pub batch: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
}

impl TrainingSetup {
    /// The paper's weak-scaling configuration: batch = chips / 2,
    /// sequence length 2048 (following Megatron-NLG).
    ///
    /// # Panics
    ///
    /// Panics if `chips < 2`.
    pub fn weak_scaling(chips: usize) -> Self {
        assert!(chips >= 2, "weak scaling needs at least 2 chips");
        TrainingSetup {
            batch: chips / 2,
            seq_len: 2048,
        }
    }

    /// The strong-scaling configuration of Figure 12: batch fixed at 32.
    pub fn strong_scaling() -> Self {
        TrainingSetup {
            batch: 32,
            seq_len: 2048,
        }
    }

    /// Total tokens per step, `batch × seq_len` (the `M` of FC GeMMs).
    pub fn tokens(&self) -> usize {
        self.batch * self.seq_len
    }
}

/// One FC-layer GeMM of a training step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FcGemm {
    /// The FC layer.
    pub layer: FcLayer,
    /// Forward / backward-data / backward-weight.
    pub pass: Pass,
    /// The raw `(M, N, K)` of this pass.
    pub shape: GemmShape,
}

impl LlmConfig {
    /// OpenAI GPT-3 (175B parameters): 96 layers, hidden 12288, 96 heads.
    pub fn gpt3() -> Self {
        LlmConfig {
            name: "GPT-3".to_string(),
            hidden: 12288,
            heads: 96,
            layers: 96,
            ffn_mult: 4,
        }
    }

    /// A deliberately tiny model (hidden 256, 2 layers) that fits a
    /// handful of simulated chips: the standard smoke-test workload of
    /// the unit tests, CI serving smoke steps, and `--model tiny`.
    pub fn tiny() -> Self {
        LlmConfig {
            name: "tiny".to_string(),
            hidden: 256,
            heads: 4,
            layers: 2,
            ffn_mult: 4,
        }
    }

    /// NVIDIA Megatron-NLG (530B parameters): 105 layers, hidden 20480,
    /// 128 heads.
    pub fn megatron_nlg() -> Self {
        LlmConfig {
            name: "Megatron-NLG".to_string(),
            hidden: 20480,
            heads: 128,
            layers: 105,
            ffn_mult: 4,
        }
    }

    /// Per-head dimension `D = H / heads`.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// The four FC layers of one transformer block.
    pub fn fc_layers(&self) -> [FcLayer; 4] {
        let h = self.hidden;
        [
            FcLayer {
                name: "QKV",
                input_dim: h,
                output_dim: 3 * h,
            },
            FcLayer {
                name: "Proj",
                input_dim: h,
                output_dim: h,
            },
            FcLayer {
                name: "FF1",
                input_dim: h,
                output_dim: self.ffn_mult * h,
            },
            FcLayer {
                name: "FF2",
                input_dim: self.ffn_mult * h,
                output_dim: h,
            },
        ]
    }

    /// Approximate parameter count: FC weights (`12·H²` per block with
    /// `ffn_mult = 4`) times layers, plus a vocabulary embedding estimate.
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let per_block = (3 + 1 + 2 * self.ffn_mult as u64) * h * h;
        per_block * self.layers as u64 + 50_000 * h
    }

    /// The four forward-only FC GeMMs of one *decode* step of
    /// autoregressive inference: each of `batch` sequences contributes a
    /// single token, so `M = batch` and the GeMMs are tall-thin and
    /// memory-bound — every decode step must stream the full weight
    /// shards from HBM (§6).
    pub fn decode_gemms(&self, batch: usize) -> Vec<FcGemm> {
        self.fc_layers()
            .into_iter()
            .map(|layer| FcGemm {
                layer,
                pass: Pass::Forward,
                shape: GemmShape::new(batch, layer.output_dim, layer.input_dim),
            })
            .collect()
    }

    /// The four forward-only FC GeMMs of the *prefill* phase of
    /// inference: the whole prompt is processed in one pass, so
    /// `M = batch × prompt_len` and the GeMMs are as compute-bound as
    /// training forward passes — the opposite regime from
    /// [`decode_gemms`](Self::decode_gemms), which is why a serving
    /// simulator must price the two phases separately.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `prompt_len` is zero.
    pub fn prefill_gemms(&self, batch: usize, prompt_len: usize) -> Vec<FcGemm> {
        assert!(batch > 0, "prefill batch must be positive");
        assert!(prompt_len > 0, "prompt length must be positive");
        let tokens = batch * prompt_len;
        self.fc_layers()
            .into_iter()
            .map(|layer| FcGemm {
                layer,
                pass: Pass::Forward,
                shape: GemmShape::new(tokens, layer.output_dim, layer.input_dim),
            })
            .collect()
    }

    /// The twelve FC GeMMs of one transformer block for a training setup
    /// (four layers × three passes), in execution order.
    pub fn fc_gemms(&self, setup: TrainingSetup) -> Vec<FcGemm> {
        let tokens = setup.tokens();
        let mut out = Vec::with_capacity(12);
        for layer in self.fc_layers() {
            let fwd = GemmShape::new(tokens, layer.output_dim, layer.input_dim);
            for pass in Pass::ALL {
                let shape = match pass {
                    Pass::Forward => fwd,
                    Pass::BackwardData => fwd.backward_data(),
                    Pass::BackwardWeight => fwd.backward_weight(),
                };
                out.push(FcGemm { layer, pass, shape });
            }
        }
        out
    }

    /// The distinct FC GeMM shapes, deduplicated up to transposition
    /// (`(M, N, K)` ~ `(N, M, K)`) — eight per model, as in Figure 11.
    pub fn distinct_gemms(&self, setup: TrainingSetup) -> Vec<GemmShape> {
        let mut seen = Vec::new();
        for g in self.fc_gemms(setup) {
            let canon = if g.shape.m <= g.shape.n {
                g.shape
            } else {
                g.shape.transposed()
            };
            if !seen.contains(&canon) {
                seen.push(canon);
            }
        }
        seen
    }

    /// Total FC GeMM FLOPs of one training step (all blocks, all passes).
    pub fn fc_step_flops(&self, setup: TrainingSetup) -> u64 {
        let per_block: u64 = self.fc_gemms(setup).iter().map(|g| g.shape.flops()).sum();
        per_block * self.layers as u64
    }

    /// Analytical per-block time of the non-FC operations on `chips`
    /// accelerators, covering forward and backward.
    ///
    /// Modeled as (a) the attention score and attention-value batched
    /// GeMMs (`2 × 2·tokens·S·H` FLOPs per block and direction) at a
    /// reduced efficiency — they are small and memory-bound compared to FC
    /// GeMMs — plus (b) elementwise/softmax/norm HBM traffic over the
    /// activations (`c₁·tokens·H` elements) and the attention maps
    /// (`c₂·batch·heads·S²` elements). The constants stand in for the
    /// single-TPU benchmarks of §4.4.
    pub fn non_fc_block_time(
        &self,
        setup: TrainingSetup,
        chips: usize,
        cfg: &SimConfig,
    ) -> Duration {
        let tokens = setup.tokens() as f64;
        let h = self.hidden as f64;
        let s = setup.seq_len as f64;
        let chips = chips as f64;
        // Attention GeMMs, forward + backward (backward re-runs both).
        let attn_flops = 3.0 * 4.0 * tokens * s * h / chips;
        let attn_eff = 0.30;
        let attn_time = attn_flops / (cfg.peak_flops * attn_eff);
        // Elementwise + normalization traffic: roughly 30 activation
        // touches per token per block, and 12 touches of the attention
        // map, at `elem_bytes` each.
        let act_bytes = 30.0 * tokens * h * cfg.elem_bytes as f64 / chips;
        let map_bytes =
            12.0 * (setup.batch as f64) * (self.heads as f64) * s * s * cfg.elem_bytes as f64
                / chips;
        let mem_time = (act_bytes + map_bytes) / cfg.hbm_bandwidth;
        Duration::from_secs(attn_time + mem_time)
    }
}

impl fmt::Display for LlmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (H={}, {} layers, {} heads)",
            self.name, self.hidden, self.layers, self.heads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_parameters_are_about_175b() {
        let p = LlmConfig::gpt3().param_count() as f64;
        assert!((p - 175e9).abs() / 175e9 < 0.05, "params {p}");
    }

    #[test]
    fn megatron_parameters_are_about_530b() {
        let p = LlmConfig::megatron_nlg().param_count() as f64;
        assert!((p - 530e9).abs() / 530e9 < 0.05, "params {p}");
    }

    #[test]
    fn four_fc_layers_with_gpt_dimensions() {
        let m = LlmConfig::gpt3();
        let layers = m.fc_layers();
        assert_eq!(layers[0].output_dim, 3 * 12288);
        assert_eq!(layers[3].input_dim, 4 * 12288);
        assert_eq!(m.head_dim(), 128);
        assert_eq!(LlmConfig::megatron_nlg().head_dim(), 160);
    }

    #[test]
    fn twelve_gemms_per_block() {
        let m = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(64);
        assert_eq!(m.fc_gemms(setup).len(), 12);
    }

    #[test]
    fn eight_distinct_gemm_shapes() {
        // The paper: "there are eight distinct GeMM operations with
        // different M, N, K matrix shapes" per model.
        let setup = TrainingSetup::weak_scaling(256);
        assert_eq!(LlmConfig::gpt3().distinct_gemms(setup).len(), 8);
        assert_eq!(LlmConfig::megatron_nlg().distinct_gemms(setup).len(), 8);
    }

    #[test]
    fn all_passes_share_flops() {
        let m = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(16);
        for chunk in m.fc_gemms(setup).chunks(3) {
            assert_eq!(chunk[0].shape.flops(), chunk[1].shape.flops());
            assert_eq!(chunk[0].shape.flops(), chunk[2].shape.flops());
        }
    }

    #[test]
    fn prefill_gemms_scale_with_prompt_tokens() {
        let m = LlmConfig::gpt3();
        let prefill = m.prefill_gemms(8, 512);
        let decode = m.decode_gemms(8);
        assert_eq!(prefill.len(), 4);
        for (p, d) in prefill.iter().zip(&decode) {
            assert_eq!(p.layer, d.layer);
            assert_eq!(p.pass, Pass::Forward);
            // Same weights, 512x the activation rows.
            assert_eq!(p.shape.m, 512 * d.shape.m);
            assert_eq!((p.shape.n, p.shape.k), (d.shape.n, d.shape.k));
        }
    }

    #[test]
    #[should_panic(expected = "prompt length")]
    fn zero_prompt_len_panics() {
        LlmConfig::gpt3().prefill_gemms(8, 0);
    }

    #[test]
    fn weak_scaling_batch_tracks_chips() {
        assert_eq!(TrainingSetup::weak_scaling(256).batch, 128);
        assert_eq!(TrainingSetup::weak_scaling(256).tokens(), 128 * 2048);
        assert_eq!(TrainingSetup::strong_scaling().batch, 32);
    }

    #[test]
    fn discussion_example_ff2_shape_matches_paper() {
        // §7: GPT-3 FC layer with (M, N, K) = (1024K, 12K, 48K) on 1024
        // chips under weak scaling — that is FF2's forward GeMM.
        let m = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(1024);
        let ff2 = &m.fc_gemms(setup)[9]; // FF2 forward
        assert_eq!(ff2.layer.name, "FF2");
        assert_eq!(ff2.shape, GemmShape::new(1024 * 1024, 12288, 4 * 12288));
    }

    #[test]
    fn non_fc_time_is_a_modest_fraction_of_fc_time() {
        let m = LlmConfig::gpt3();
        let setup = TrainingSetup::weak_scaling(256);
        let cfg = SimConfig::tpu_v4();
        let non_fc = m.non_fc_block_time(setup, 256, &cfg).as_secs();
        // Ideal FC compute time per block per chip:
        let fc: u64 = m.fc_gemms(setup).iter().map(|g| g.shape.flops()).sum();
        let fc_time = fc as f64 / 256.0 / (cfg.peak_flops * 0.75);
        let ratio = non_fc / fc_time;
        assert!(
            (0.05..0.4).contains(&ratio),
            "non-FC / FC ratio {ratio} out of plausible range"
        );
    }
}
