//! Per-chip memory footprint accounting for 2D tensor parallelism.
//!
//! TP exists in the first place because the model no longer fits on one
//! chip (§1): every matrix — weights, activations, gradients, optimizer
//! state — is sharded over the mesh. This module estimates the per-chip
//! HBM footprint of training an LLM with MeshSlice so the autotuner can
//! reject infeasible configurations, and quantifies the §2.2 claim that
//! higher-degree TP shrinks the per-chip weight state (and with it the
//! data-parallel communication volume).

use meshslice_mesh::MeshShape;

use crate::llm::{LlmConfig, TrainingSetup};

/// Byte sizes of the training state classes on one chip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Weight shards of all FC layers (bf16).
    pub weights: u64,
    /// Weight-gradient shards (bf16).
    pub weight_grads: u64,
    /// Optimizer state (fp32 master weights + two Adam moments).
    pub optimizer: u64,
    /// Activation shards that must persist for the backward pass
    /// (one set per transformer block).
    pub activations: u64,
    /// Transient gathered buffers of the largest in-flight MeshSlice
    /// iteration (double-buffered sub-shards of both directions).
    pub workspace: u64,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.weight_grads + self.optimizer + self.activations + self.workspace
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }
}

/// Estimates the per-chip training footprint of a model on a mesh with
/// MeshSlice 2D TP and slice count `s`.
///
/// Element sizes follow mixed-precision training practice: bf16 (2 B) for
/// weights/activations/gradients and fp32 (4 B) for the three optimizer
/// tensors (master copy + two Adam moments).
pub fn training_footprint(
    model: &LlmConfig,
    setup: TrainingSetup,
    mesh: MeshShape,
    s: usize,
) -> MemoryFootprint {
    let chips = mesh.num_chips() as u64;
    let bf16 = 2u64;
    let fp32 = 4u64;
    let h = model.hidden as u64;
    let layers = model.layers as u64;
    let tokens = setup.tokens() as u64;

    // FC weights per block: QKV (H x 3H) + Proj (H x H) + FF1 (H x 4H) +
    // FF2 (4H x H) = 12 H^2 with ffn_mult = 4.
    let weight_elems_per_block: u64 = model
        .fc_layers()
        .iter()
        .map(|l| l.input_dim as u64 * l.output_dim as u64)
        .sum();
    let weight_elems = weight_elems_per_block * layers / chips;
    let weights = weight_elems * bf16;
    let weight_grads = weight_elems * bf16;
    let optimizer = weight_elems * fp32 * 3;

    // Persisted activations per block with selective recomputation
    // (Korthikanti et al., the paper's [16]): only the block input and the
    // attention output are checkpointed (~2 H per token per block); the
    // rest is recomputed during the backward pass.
    let act_elems_per_token_block = 2 * h;
    let activations = tokens * act_elems_per_token_block * layers / chips * bf16;

    // Workspace: the gathered A' and B' sub-shards of one MeshSlice
    // iteration, double buffered. Upper bound over the four layers using
    // the largest FC GeMM (FF1): A' is (M/Pr x K/S), B' is (K/S x N/Pc).
    let s = s.max(1) as u64;
    let m_local = tokens / mesh.rows() as u64;
    let k = h;
    let n_local = (model.ffn_mult as u64 * h) / mesh.cols() as u64;
    let gathered = m_local * (k / s) + (k / s) * n_local;
    let workspace = 2 * gathered * bf16;

    MemoryFootprint {
        weights,
        weight_grads,
        optimizer,
        activations,
        workspace,
    }
}

/// Per-chip HBM capacity of the simulated TPUv4, bytes (32 GiB) — the
/// budget serving admission control enforces.
pub const HBM_BYTES: u64 = 32 << 30;

/// Per-chip bytes of KV cache that one token (prompt or generated) pins:
/// a key and a value vector per transformer block (`2 × layers × hidden`
/// elements), sharded over the chips of the serving mesh exactly like the
/// weights they attend against.
pub fn kv_bytes_per_token(model: &LlmConfig, chips: usize, elem_bytes: usize) -> u64 {
    assert!(chips > 0, "KV sharding needs at least one chip");
    2 * model.layers as u64 * model.hidden as u64 * elem_bytes as u64 / chips as u64
}

/// Byte sizes of the *serving* state classes on one chip: no gradients,
/// no optimizer, no persisted activations — just resident weight shards
/// and transient GeMM workspace. Everything left under the HBM capacity
/// is the KV-cache budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InferenceFootprint {
    /// Weight shards of all FC layers (bf16).
    pub weights: u64,
    /// Transient gathered buffers of the largest in-flight MeshSlice
    /// iteration at the peak prefill size (double-buffered sub-shards).
    pub workspace: u64,
}

impl InferenceFootprint {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.workspace
    }

    /// HBM bytes left for the KV cache on a chip with `hbm_bytes` of HBM;
    /// zero when the weights alone do not fit.
    pub fn kv_budget(&self, hbm_bytes: u64) -> u64 {
        hbm_bytes.saturating_sub(self.total())
    }
}

/// Estimates the per-chip serving footprint of a model on a mesh with
/// MeshSlice 2D TP and slice count `s`, sized for prefill chunks of up to
/// `max_prefill_tokens` tokens (`batch × prompt_len` rows in flight).
pub fn inference_footprint(
    model: &LlmConfig,
    mesh: MeshShape,
    s: usize,
    max_prefill_tokens: usize,
) -> InferenceFootprint {
    let chips = mesh.num_chips() as u64;
    let bf16 = 2u64;
    let h = model.hidden as u64;

    let weight_elems_per_block: u64 = model
        .fc_layers()
        .iter()
        .map(|l| l.input_dim as u64 * l.output_dim as u64)
        .sum();
    let weights = weight_elems_per_block * model.layers as u64 / chips * bf16;

    // Same workspace bound as `training_footprint`: the gathered A' and B'
    // sub-shards of one MeshSlice iteration of the largest FC GeMM (FF1),
    // double buffered, at the peak prefill row count.
    let s = s.max(1) as u64;
    let m_local = max_prefill_tokens as u64 / mesh.rows() as u64;
    let n_local = (model.ffn_mult as u64 * h) / mesh.cols() as u64;
    let gathered = m_local * (h / s) + (h / s) * n_local;
    let workspace = 2 * gathered * bf16;

    InferenceFootprint { weights, workspace }
}

/// The per-chip data-parallel gradient traffic per step: with `tp_degree`
/// chips per replica, each chip holds `1/tp_degree` of the weights and the
/// DP all-reduce moves `2 × (R−1)/R × weight_bytes/tp_degree` over `R`
/// replicas (§2.2's argument that wider TP shrinks DP traffic).
pub fn dp_traffic_per_chip(
    model: &LlmConfig,
    tp_degree: usize,
    dp_replicas: usize,
    elem_bytes: usize,
) -> u64 {
    let weight_elems: u64 = model
        .fc_layers()
        .iter()
        .map(|l| l.input_dim as u64 * l.output_dim as u64)
        .sum::<u64>()
        * model.layers as u64;
    let shard = weight_elems * elem_bytes as u64 / tp_degree as u64;
    if dp_replicas <= 1 {
        return 0;
    }
    // Ring all-reduce = reduce-scatter + all-gather.
    2 * shard * (dp_replicas as u64 - 1) / dp_replicas as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> (LlmConfig, TrainingSetup) {
        (LlmConfig::gpt3(), TrainingSetup::weak_scaling(256))
    }

    #[test]
    fn gpt3_fits_on_256_tpus_but_not_on_8() {
        let (model, setup) = gpt3();
        let big = training_footprint(&model, setup, MeshShape::new(32, 8), 16);
        // TPUv4 has 32 GiB of HBM.
        assert!(
            big.total_gib() < 32.0,
            "GPT-3 on 256 chips needs {:.1} GiB",
            big.total_gib()
        );
        let small = training_footprint(
            &model,
            TrainingSetup {
                batch: 4,
                seq_len: 2048,
            },
            MeshShape::new(4, 2),
            16,
        );
        assert!(
            small.total_gib() > 32.0,
            "GPT-3 on 8 chips should not fit, got {:.1} GiB",
            small.total_gib()
        );
    }

    #[test]
    fn optimizer_state_dominates_weights() {
        // fp32 master + 2 moments = 6x the bf16 weights.
        let (model, setup) = gpt3();
        let f = training_footprint(&model, setup, MeshShape::new(32, 8), 8);
        assert_eq!(f.optimizer, 6 * f.weights);
    }

    #[test]
    fn finer_slicing_shrinks_workspace() {
        let (model, setup) = gpt3();
        let coarse = training_footprint(&model, setup, MeshShape::new(32, 8), 1);
        let fine = training_footprint(&model, setup, MeshShape::new(32, 8), 16);
        assert!(fine.workspace < coarse.workspace);
        // Everything else is unaffected by S.
        assert_eq!(fine.weights, coarse.weights);
        assert_eq!(fine.activations, coarse.activations);
    }

    #[test]
    fn wider_tp_shrinks_dp_traffic_as_in_section_2_2() {
        // §2.2: replacing 8-way 1D TP with 128-way 2D TP makes the
        // per-chip DP traffic 16x smaller at the same replica count.
        let model = LlmConfig::gpt3();
        let t8 = dp_traffic_per_chip(&model, 8, 128, 2);
        let t128 = dp_traffic_per_chip(&model, 128, 128, 2);
        let ratio = t8 as f64 / t128 as f64;
        assert!((ratio - 16.0).abs() < 0.01, "ratio {ratio}");
        assert_eq!(dp_traffic_per_chip(&model, 8, 1, 2), 0);
    }

    #[test]
    fn serving_footprint_is_weights_plus_workspace_only() {
        let model = LlmConfig::gpt3();
        let mesh = MeshShape::new(4, 4);
        let f = inference_footprint(&model, mesh, 8, 4096);
        let t = training_footprint(
            &model,
            TrainingSetup {
                batch: 2,
                seq_len: 2048,
            },
            mesh,
            8,
        );
        assert_eq!(f.weights, t.weights);
        assert_eq!(f.workspace, t.workspace);
        // GPT-3 weights alone fit 16 chips but leave room for KV cache.
        assert!(f.total() < HBM_BYTES, "{} GiB", f.total() >> 30);
        assert!(f.kv_budget(HBM_BYTES) > 4 << 30);
        // Weights that do not fit leave a zero budget, not an underflow.
        let tiny = inference_footprint(&model, MeshShape::new(2, 2), 8, 4096);
        assert_eq!(tiny.kv_budget(HBM_BYTES), 0);
    }

    #[test]
    fn kv_bytes_shard_over_chips() {
        let model = LlmConfig::gpt3();
        // 2 (K,V) x 96 layers x 12288 hidden x 2 B = 4.5 MiB per token,
        // split over the mesh.
        assert_eq!(kv_bytes_per_token(&model, 1, 2), 4_718_592);
        assert_eq!(
            kv_bytes_per_token(&model, 16, 2),
            kv_bytes_per_token(&model, 1, 2) / 16
        );
    }

    #[test]
    fn footprint_scales_inversely_with_chips() {
        let (model, setup) = gpt3();
        let on64 = training_footprint(&model, setup, MeshShape::new(8, 8), 8);
        let on256 = training_footprint(&model, setup, MeshShape::new(16, 16), 8);
        assert!(on256.weights * 4 == on64.weights);
        assert!(on256.total() < on64.total());
    }
}
