//! Deterministic parallel sweep driver.
//!
//! Every headline sweep of this reproduction — robust tuning, the logged
//! mesh search, the straggler-sensitivity grid, the figure harnesses — is
//! an embarrassingly parallel loop over *independent* simulations. This
//! module fans those loops out over a small hermetic [`std::thread`]
//! scoped pool while preserving the repo's bit-identical determinism
//! guarantee:
//!
//! * each [`Engine`](meshslice_sim::Engine) run stays single-threaded
//!   internally; only whole simulations run concurrently, and
//! * results are placed by **input index**, so the returned `Vec` is
//!   byte-identical to a plain serial `map` regardless of the thread
//!   count or OS scheduling.
//!
//! The worker count resolves, in order, from: an explicit
//! [`set_threads`] override (the CLI's `--threads N`), the
//! `MESHSLICE_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. A count of 1 short-circuits to
//! a plain serial loop on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count used by [`parallel_map`] (the CLI's
/// `--threads N`). Passing 0 clears the override, falling back to
/// `MESHSLICE_THREADS` and then the machine's available parallelism.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The worker count [`parallel_map`] will use: the [`set_threads`]
/// override if set, else `MESHSLICE_THREADS` if set and positive, else
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("MESHSLICE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on the ambient worker count ([`threads`]),
/// returning results in input order.
///
/// Deterministic by construction: output slot `i` always holds
/// `f(&items[i])`, so any thread count — including 1 — yields a `Vec`
/// identical to `items.iter().map(f).collect()`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_threads(threads(), items, f)
}

/// [`parallel_map`] with an explicit worker count.
pub fn parallel_map_threads<T, R, F>(num_threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(num_threads, items, || (), move |(), item| f(item))
}

/// The general form: each worker builds one private state with `init`
/// (e.g. a [`RunScratch`](meshslice_sim::RunScratch)) and maps its share
/// of `items` through `f(&mut state, &item)`. Results are still placed by
/// input index, so the output is independent of how items were divided
/// among workers.
///
/// With `num_threads <= 1` (or one item), everything runs on the calling
/// thread with a single state — the serial reference path.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread.
pub fn parallel_map_with<T, R, S, F, I>(num_threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, &T) -> R + Sync,
    I: Fn() -> S + Sync,
{
    if num_threads <= 1 || items.len() <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let workers = num_threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut partials: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return out;
                        }
                        out.push((i, f(&mut state, &items[i])));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in &mut partials {
        for (i, r) in part.drain(..) {
            debug_assert!(slots[i].is_none(), "item {i} mapped twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("item {i} was never mapped")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_input_ordered_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = parallel_map_threads(threads, &items, |&x| x * x);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_threads(8, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map_threads(8, &[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker's state counts its own calls; the mapped output must
        // still be position-exact no matter how calls were distributed.
        let items: Vec<usize> = (0..50).collect();
        let out = parallel_map_with(
            4,
            &items,
            || 0usize,
            |calls, &x| {
                *calls += 1;
                (x, *calls >= 1)
            },
        );
        for (i, &(x, counted)) in out.iter().enumerate() {
            assert_eq!(x, i);
            assert!(counted);
        }
    }

    #[test]
    fn explicit_override_beats_env() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..16).collect();
        parallel_map_threads(4, &items, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }
}
