//! 3D training-cluster composition: DP × PP × 2D-TP (§2.2, §7).
//!
//! Contemporary LLM training combines data, pipeline, and tensor
//! parallelism. The paper's §2.2 argues that replacing 8-way 1D TP with
//! wide 2D TP either (a) scales the cluster further at the same DP/PP
//! degrees, or (b) holds the cluster size and shrinks the DP/PP degrees —
//! in both cases cutting the per-chip data-parallel traffic (each chip
//! holds a smaller weight shard) and the pipeline depth.
//!
//! [`plan_cluster`] searches the (DP, PP, 2D-TP-mesh) space with the
//! analytical cost models and returns the fastest composition, including
//! the classic pipeline-bubble and gradient-all-reduce terms the paper's
//! FC-only evaluation abstracts away.

use std::fmt;

use meshslice_mesh::MeshShape;
use meshslice_sim::{Duration, SimConfig};

use crate::autotuner::Autotuner;
use crate::llm::{LlmConfig, TrainingSetup};
use crate::memory::{dp_traffic_per_chip, training_footprint};

/// One composition of a 3D training cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterPlan {
    /// Data-parallel replicas.
    pub dp: usize,
    /// Pipeline stages.
    pub pp: usize,
    /// The 2D tensor-parallel mesh of one pipeline stage of one replica.
    pub tp_mesh: MeshShape,
    /// Estimated training-step time.
    pub step_time: Duration,
    /// Estimated per-chip DP gradient traffic per step (bytes).
    pub dp_traffic: u64,
    /// Estimated per-chip memory footprint (bytes).
    pub memory: u64,
}

impl ClusterPlan {
    /// Total chips of the composition.
    pub fn chips(&self) -> usize {
        self.dp * self.pp * self.tp_mesh.num_chips()
    }
}

impl fmt::Display for ClusterPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DP{} x PP{} x TP{} ({} chips): step {:.1} ms, DP traffic {:.0} MB/chip, mem {:.1} GiB/chip",
            self.dp,
            self.pp,
            self.tp_mesh,
            self.chips(),
            self.step_time.as_secs() * 1e3,
            self.dp_traffic as f64 / 1e6,
            self.memory as f64 / (1u64 << 30) as f64,
        )
    }
}

/// Constraints and knobs of the composition search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanOptions {
    /// Per-chip HBM capacity in bytes (32 GiB on TPUv4).
    pub hbm_capacity: u64,
    /// Microbatches in flight per pipeline (for the bubble term).
    pub microbatches: usize,
    /// Bandwidth of the data-parallel all-reduce per chip, bytes/s
    /// (typically the DCN/third-torus-dimension rate, below ICI).
    pub dp_bandwidth: f64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            hbm_capacity: 32 << 30,
            microbatches: 16,
            dp_bandwidth: 25e9,
        }
    }
}

/// Estimated step time of one composition, or `None` when infeasible.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    model: &LlmConfig,
    global_batch: usize,
    seq_len: usize,
    dp: usize,
    pp: usize,
    tp_mesh: MeshShape,
    cfg: &SimConfig,
    opt: &PlanOptions,
) -> Option<ClusterPlan> {
    if !global_batch.is_multiple_of(dp) || !model.layers.is_multiple_of(pp) || global_batch / dp < 1
    {
        return None;
    }
    let setup = TrainingSetup {
        batch: global_batch / dp,
        seq_len,
    };
    let tuner = Autotuner::new(cfg.clone());
    let (fc_block, _) = tuner.estimate_on_mesh(model, setup, tp_mesh)?;
    let non_fc = model.non_fc_block_time(setup, tp_mesh.num_chips(), cfg);
    let per_block = fc_block.as_secs() + non_fc.as_secs();
    let blocks_per_stage = model.layers / pp;

    // Pipeline: the work of one stage runs `microbatches + pp − 1` slots
    // (GPipe-style bubble).
    let slots = (opt.microbatches + pp - 1) as f64 / opt.microbatches as f64;
    let compute = per_block * blocks_per_stage as f64 * slots;

    // DP gradient all-reduce, overlappable with the backward pass up to
    // half (a standard engineering assumption — exposed share 0.5).
    let tp_degree = tp_mesh.num_chips() * pp;
    let dp_traffic = dp_traffic_per_chip(model, tp_degree, dp, cfg.elem_bytes);
    let dp_time = 0.5 * dp_traffic as f64 / opt.dp_bandwidth;

    let step_time = Duration::from_secs(compute + dp_time);
    let memory = {
        let f = training_footprint(model, setup, tp_mesh, 8);
        // Weights scale with PP too (each stage holds layers/pp of them).
        f.total() / pp as u64
    };
    if memory > opt.hbm_capacity {
        return None;
    }
    Some(ClusterPlan {
        dp,
        pp,
        tp_mesh,
        step_time,
        dp_traffic,
        memory,
    })
}

/// Searches (DP, PP, 2D mesh) compositions of `chips` chips and returns
/// all feasible plans sorted fastest-first.
///
/// `max_tp` bounds the tensor-parallel degree (the paper explores up to
/// 256-way 2D TP).
pub fn plan_cluster(
    model: &LlmConfig,
    chips: usize,
    global_batch: usize,
    seq_len: usize,
    max_tp: usize,
    cfg: &SimConfig,
    opt: &PlanOptions,
) -> Vec<ClusterPlan> {
    let mut plans = Vec::new();
    for dp in (1..=chips).filter(|d| chips.is_multiple_of(*d)) {
        let per_replica = chips / dp;
        for pp in (1..=per_replica).filter(|p| per_replica.is_multiple_of(*p)) {
            let tp = per_replica / pp;
            if tp > max_tp || tp < 2 {
                continue;
            }
            for mesh in MeshShape::factorizations_min(tp, 2) {
                if let Some(plan) = evaluate(model, global_batch, seq_len, dp, pp, mesh, cfg, opt) {
                    plans.push(plan);
                }
            }
        }
    }
    plans.sort_by_key(|a| a.step_time);
    plans
}

/// Simulated (rather than cost-model-estimated) step time of a cluster
/// plan: the FC block runs through the event-driven simulator on the
/// plan's 2D mesh, the non-FC block time is added analytically, the
/// pipeline bubble scales the per-stage work, and the data-parallel
/// gradient all-reduce is simulated as a bidirectional ring over the
/// replicas (half of it hidden under the backward pass).
///
/// Returns `None` if the plan's FC step cannot be simulated.
pub fn simulate_plan(
    model: &LlmConfig,
    plan: &ClusterPlan,
    global_batch: usize,
    seq_len: usize,
    cfg: &SimConfig,
    opt: &PlanOptions,
) -> Option<Duration> {
    use crate::training::{simulate_fc_step, Algorithm};
    use meshslice_mesh::{CommAxis, Torus2d};
    use meshslice_sim::{CollectiveKind, Engine, ProgramBuilder};

    let setup = TrainingSetup {
        batch: global_batch / plan.dp,
        seq_len,
    };
    let fc = simulate_fc_step(
        model,
        setup,
        plan.tp_mesh.num_chips(),
        Algorithm::MeshSlice,
        cfg,
    )?;
    let non_fc = model.non_fc_block_time(setup, plan.tp_mesh.num_chips(), cfg);
    let per_block = fc.block_time().as_secs() + non_fc.as_secs();
    let blocks_per_stage = model.layers / plan.pp;
    let slots = (opt.microbatches + plan.pp - 1) as f64 / opt.microbatches as f64;
    let compute = per_block * blocks_per_stage as f64 * slots;

    // Gradient all-reduce over the DP replicas: ReduceScatter + AllGather
    // of each chip's gradient shard on a ring of `dp` representatives,
    // run at the (slower) DP-plane bandwidth.
    let dp_time = if plan.dp > 1 {
        let ring = Torus2d::new(plan.dp, 1);
        let dp_cfg = SimConfig {
            link_bandwidth: opt.dp_bandwidth / 2.0, // per direction
            ..cfg.clone()
        };
        let shard = plan.dp_traffic / 2 / (plan.dp as u64 - 1).max(1) * plan.dp as u64;
        let mut b = ProgramBuilder::new(&ring);
        let rds = b.next_tag();
        let ag = b.next_tag();
        for chip in ring.chips() {
            let r = b.collective(
                chip,
                rds,
                CollectiveKind::ReduceScatter,
                CommAxis::InterRow,
                shard / plan.dp as u64,
                2,
                &[],
            );
            b.collective(
                chip,
                ag,
                CollectiveKind::AllGather,
                CommAxis::InterRow,
                shard / plan.dp as u64,
                2,
                &[r],
            );
        }
        let report = Engine::new(ring, dp_cfg).run(&b.build());
        0.5 * report.makespan().as_secs()
    } else {
        0.0
    };
    Some(Duration::from_secs(compute + dp_time))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> LlmConfig {
        LlmConfig {
            name: "Small".to_string(),
            hidden: 2048,
            heads: 16,
            layers: 24,
            ffn_mult: 4,
        }
    }

    #[test]
    fn planner_finds_feasible_compositions() {
        let cfg = SimConfig::tpu_v4();
        let plans = plan_cluster(
            &small_model(),
            64,
            64,
            2048,
            64,
            &cfg,
            &PlanOptions::default(),
        );
        assert!(!plans.is_empty());
        let best = &plans[0];
        assert_eq!(best.chips(), 64);
        // Sorted fastest-first.
        assert!(plans.windows(2).all(|w| w[0].step_time <= w[1].step_time));
    }

    #[test]
    fn wider_tp_cuts_dp_traffic() {
        // §2.2: within the same cluster, plans with a higher TP degree
        // carry less per-chip DP traffic.
        let cfg = SimConfig::tpu_v4();
        let plans = plan_cluster(
            &small_model(),
            64,
            64,
            2048,
            64,
            &cfg,
            &PlanOptions::default(),
        );
        let narrow = plans
            .iter()
            .find(|p| p.tp_mesh.num_chips() * p.pp == 4)
            .or_else(|| plans.iter().min_by_key(|p| p.tp_mesh.num_chips() * p.pp));
        let wide = plans
            .iter()
            .max_by_key(|p| p.tp_mesh.num_chips() * p.pp)
            .unwrap();
        if let Some(narrow) = narrow {
            if narrow.dp > 1 && wide.dp > 1 && wide.tp_mesh.num_chips() > narrow.tp_mesh.num_chips()
            {
                assert!(wide.dp_traffic < narrow.dp_traffic);
            }
        }
    }

    #[test]
    fn simulated_plan_is_close_to_the_estimate() {
        let cfg = SimConfig::tpu_v4();
        let model = small_model();
        let opt = PlanOptions::default();
        let plans = plan_cluster(&model, 32, 32, 2048, 32, &cfg, &opt);
        let best = &plans[0];
        let simulated = simulate_plan(&model, best, 32, 2048, &cfg, &opt).unwrap();
        let ratio = simulated.as_secs() / best.step_time.as_secs();
        assert!(
            (0.7..1.3).contains(&ratio),
            "simulated/estimated ratio {ratio}"
        );
    }

    #[test]
    fn memory_constraint_rejects_tiny_clusters_for_big_models() {
        let cfg = SimConfig::tpu_v4();
        let plans = plan_cluster(
            &LlmConfig::megatron_nlg(),
            8,
            8,
            2048,
            8,
            &cfg,
            &PlanOptions::default(),
        );
        // 530B parameters cannot fit on 8 x 32 GiB chips.
        assert!(plans.is_empty());
    }

    #[test]
    fn pipeline_bubble_penalizes_deep_pipelines() {
        let cfg = SimConfig::tpu_v4();
        let model = small_model();
        let opt = PlanOptions {
            microbatches: 4,
            ..PlanOptions::default()
        };
        let shallow = evaluate(&model, 64, 2048, 1, 2, MeshShape::new(4, 4), &cfg, &opt);
        let deep = evaluate(&model, 64, 2048, 1, 8, MeshShape::new(2, 2), &cfg, &opt);
        let (shallow, deep) = (shallow.unwrap(), deep.unwrap());
        // Same chip count; the deep pipeline pays a larger bubble per
        // unit of compute.
        assert_eq!(shallow.chips(), deep.chips());
        let bubble = |p: usize| (opt.microbatches + p - 1) as f64 / opt.microbatches as f64;
        assert!(bubble(8) > bubble(2));
    }

    #[test]
    fn plan_display_is_informative() {
        let cfg = SimConfig::tpu_v4();
        let plans = plan_cluster(
            &small_model(),
            16,
            16,
            2048,
            16,
            &cfg,
            &PlanOptions::default(),
        );
        let s = plans[0].to_string();
        assert!(s.contains("DP") && s.contains("PP") && s.contains("chips"));
    }
}
