//! Plain-text table formatting for experiment output.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use meshslice::report::Table;
///
/// let mut t = Table::new(vec!["chips".into(), "util".into()]);
/// t.row(vec!["16".into(), "81.2%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("chips"));
/// assert!(s.contains("81.2%"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells for {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Table {
    /// Renders the table as CSV (headers + rows), quoting cells that
    /// contain commas or quotes.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a utilization fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats an optional utilization, printing `-` for absent values.
pub fn pct_opt(x: Option<f64>) -> String {
    x.map(pct).unwrap_or_else(|| "-".to_string())
}

/// Formats seconds as engineering-friendly milliseconds.
pub fn ms(secs: f64) -> String {
    format!("{:.3} ms", secs * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["12345".into(), "x".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a'));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn mismatched_row_panics() {
        Table::new(vec!["a".into()]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"1,5\",plain\n");
    }

    #[test]
    fn csv_round_trips_through_a_file() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["42".into()]);
        let path = std::env::temp_dir().join("meshslice_report_test.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n42\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.6743), "67.4%");
        assert_eq!(pct_opt(None), "-");
        assert_eq!(ms(0.0123), "12.300 ms");
    }
}
