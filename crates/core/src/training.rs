//! Simulating one training step of an LLM's FC layers with any
//! distributed GeMM algorithm.
//!
//! A training step of one transformer block runs twelve GeMMs (four FC
//! layers × three passes). Each GeMM is simulated as its own program —
//! the passes are serially dependent in real training — and the reports
//! are merged. Every algorithm gets its own tuned mesh shape and
//! iteration-count parameters (§4.2: "for fairness, we compare the
//! performance with optimal mesh shapes for each algorithm"), derived from
//! the analytical cost models.

use std::fmt;

use meshslice_gemm::{
    Cannon, Collective, Dataflow, DistributedGemm, Fsdp, GemmProblem, MeshSlice, OneDimTp, Summa,
    Wang,
};
use meshslice_mesh::{MeshShape, Torus2d};
use meshslice_sim::{Duration, Engine, SimConfig, SimReport};
use meshslice_tensor::GemmShape;

use crate::autotuner::{Autotuner, LayerPlan};
use crate::costmodel::CostModel;
use crate::llm::{LlmConfig, TrainingSetup};

/// The distributed GeMM algorithms under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's contribution (§3.1).
    MeshSlice,
    /// Collective 2D GeMM (§2.3.4).
    Collective,
    /// Wang et al.'s one-direction overlap (state of the art).
    Wang,
    /// SUMMA (§2.3.3).
    Summa,
    /// Cannon's algorithm (§2.3.2); square meshes only.
    Cannon,
    /// 1D tensor parallelism with sequence parallelism (§4.3).
    OneDimTp,
    /// Fully-sharded data parallelism (§4.3).
    Fsdp,
}

impl Algorithm {
    /// All seven algorithms of the weak-scaling study (Figure 9).
    pub const ALL: [Algorithm; 7] = [
        Algorithm::MeshSlice,
        Algorithm::Collective,
        Algorithm::Wang,
        Algorithm::Summa,
        Algorithm::Cannon,
        Algorithm::OneDimTp,
        Algorithm::Fsdp,
    ];

    /// The five 2D algorithms (Figure 11).
    pub const TWO_D: [Algorithm; 5] = [
        Algorithm::MeshSlice,
        Algorithm::Collective,
        Algorithm::Wang,
        Algorithm::Summa,
        Algorithm::Cannon,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::MeshSlice => "MeshSlice",
            Algorithm::Collective => "Collective",
            Algorithm::Wang => "Wang",
            Algorithm::Summa => "SUMMA",
            Algorithm::Cannon => "Cannon",
            Algorithm::OneDimTp => "1DTP",
            Algorithm::Fsdp => "FSDP",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Result of simulating one block's FC layers with one algorithm.
#[derive(Clone, Debug)]
pub struct FcStepResult {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// The mesh shape the algorithm ran on.
    pub mesh_shape: MeshShape,
    /// Merged simulation report of the twelve GeMMs.
    pub report: SimReport,
}

impl FcStepResult {
    /// FC-layer FLOP utilization (the y-axis of Figures 9 and 12).
    pub fn utilization(&self) -> f64 {
        self.report.flop_utilization()
    }

    /// FC time of one transformer block.
    pub fn block_time(&self) -> Duration {
        self.report.makespan()
    }
}

/// Simulates one block's twelve FC GeMMs with the given algorithm, using
/// per-algorithm tuned mesh shapes and parameters.
///
/// Returns `None` when the algorithm cannot run this configuration at all
/// (e.g. Cannon on a non-square chip count).
pub fn simulate_fc_step(
    model: &LlmConfig,
    setup: TrainingSetup,
    chips: usize,
    algorithm: Algorithm,
    cfg: &SimConfig,
) -> Option<FcStepResult> {
    let tuner = Autotuner::new(cfg.clone());
    match algorithm {
        Algorithm::MeshSlice => {
            let plan = tuner.tune(model, setup, chips);
            let mesh = Torus2d::from_shape(plan.mesh_shape);
            let reports = run_plan(&mesh, cfg, &plan.layers, |problem, s| {
                Box::new(MeshSlice::new(
                    s,
                    block_for(s, &tuner, plan.mesh_shape, problem),
                ))
            })?;
            Some(result(algorithm, plan.mesh_shape, reports))
        }
        Algorithm::Collective => {
            let (mesh_shape, layers) = tune_mesh(&tuner, model, setup, chips, |cm, mesh, p, _| {
                Some(cm.collective_algo_time(mesh, p, cm.config().elem_bytes))
            })?;
            let mesh = Torus2d::from_shape(mesh_shape);
            let reports = run_plan(&mesh, cfg, &layers, |_, _| Box::new(Collective))?;
            Some(result(algorithm, mesh_shape, reports))
        }
        Algorithm::Wang => {
            let (mesh_shape, layers) = tune_mesh(&tuner, model, setup, chips, |cm, mesh, p, s| {
                Some(cm.wang_time(mesh, p, s, cm.config().elem_bytes))
            })?;
            let mesh = Torus2d::from_shape(mesh_shape);
            let reports = run_plan(&mesh, cfg, &layers, |_, s| {
                Box::new(Wang::new().with_unroll(s))
            })?;
            Some(result(algorithm, mesh_shape, reports))
        }
        Algorithm::Summa => {
            let (mesh_shape, layers) = tune_mesh(&tuner, model, setup, chips, |cm, mesh, p, s| {
                let panels = summa_panels(mesh, p, s)?;
                Some(cm.summa_time(mesh, p, panels, cm.config().elem_bytes))
            })?;
            let mesh = Torus2d::from_shape(mesh_shape);
            let reports = run_plan(&mesh, cfg, &layers, |problem, s| {
                let panels = summa_panels(mesh_shape, problem, s)
                    .expect("tuning already validated the panel count");
                Box::new(Summa::new(panels))
            })?;
            Some(result(algorithm, mesh_shape, reports))
        }
        Algorithm::Cannon => {
            let mesh_shape = MeshShape::square(chips)?;
            let mesh = Torus2d::from_shape(mesh_shape);
            // Cannon is OS-only: every pass runs output-stationary.
            let mut reports = Vec::new();
            for g in model.fc_gemms(setup) {
                let problem = GemmProblem::new(g.shape, Dataflow::Os);
                let program = Cannon.schedule(&mesh, problem, cfg.elem_bytes).ok()?;
                reports.push(Engine::new(mesh.clone(), cfg.clone()).run(&program));
            }
            Some(result(algorithm, mesh_shape, reports))
        }
        Algorithm::OneDimTp | Algorithm::Fsdp => {
            let mesh_shape = MeshShape::new(chips, 1);
            let mesh = Torus2d::from_shape(mesh_shape);
            let cm = CostModel::new(cfg.clone());
            let mut reports = Vec::new();
            for g in model.fc_gemms(setup) {
                let problem = GemmProblem::new(g.shape, Dataflow::Os);
                let unroll = tune_one_d_unroll(&cm, chips, g.shape, algorithm, cfg.elem_bytes);
                let algo: Box<dyn DistributedGemm> = match algorithm {
                    Algorithm::OneDimTp => Box::new(OneDimTp::with_unroll(unroll)),
                    _ => Box::new(Fsdp::with_unroll(unroll)),
                };
                let program = algo.schedule(&mesh, problem, cfg.elem_bytes).ok()?;
                reports.push(Engine::new(mesh.clone(), cfg.clone()).run(&program));
            }
            Some(result(algorithm, mesh_shape, reports))
        }
    }
}

/// Simulates one block's twelve FC GeMMs as a *single fused program*: the
/// partial GeMMs of consecutive passes are chained in compute order (data
/// flow), but slicing and communication prefetch freely across pass
/// boundaries — amortizing every pass's prologue/epilogue under the
/// neighboring pass's compute. This is an upper bound on cross-pass
/// pipelining; [`simulate_fc_step`] models the passes as strictly serial.
///
/// Returns `None` if a tuned pass cannot be scheduled (should not happen
/// for the standard models).
pub fn simulate_fused_block(
    model: &LlmConfig,
    setup: TrainingSetup,
    chips: usize,
    cfg: &SimConfig,
) -> Option<FcStepResult> {
    let tuner = Autotuner::new(cfg.clone());
    let plan = tuner.tune(model, setup, chips);
    let mesh = Torus2d::from_shape(plan.mesh_shape);
    let mut b = meshslice_sim::ProgramBuilder::new(&mesh);
    let mut prev: Vec<meshslice_sim::OpId> = Vec::new();
    let mut prev2: Vec<meshslice_sim::OpId> = Vec::new();
    for layer in &plan.layers {
        for pass in &layer.passes {
            let block = block_for(pass.slice_count, &tuner, plan.mesh_shape, pass.problem);
            let algo = MeshSlice::new(pass.slice_count, block);
            let gemms = algo
                .schedule_chained(&mut b, pass.problem, cfg.elem_bytes, &prev, &prev2)
                .ok()?;
            prev2 = std::mem::replace(&mut prev, gemms);
        }
    }
    let report = Engine::new(mesh, cfg.clone()).run(&b.build());
    Some(FcStepResult {
        algorithm: Algorithm::MeshSlice,
        mesh_shape: plan.mesh_shape,
        report,
    })
}

/// End-to-end step time: FC block time plus the non-FC block time, scaled
/// to the whole model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EndToEnd {
    /// FC time per block.
    pub fc_block: Duration,
    /// Non-FC time per block (identical for all algorithms).
    pub non_fc_block: Duration,
    /// Full-model step time (`layers × (fc + non_fc)`).
    pub step: Duration,
}

/// Combines an FC result with the analytical non-FC model.
pub fn end_to_end(
    model: &LlmConfig,
    setup: TrainingSetup,
    chips: usize,
    fc: &FcStepResult,
    cfg: &SimConfig,
) -> EndToEnd {
    let non_fc = model.non_fc_block_time(setup, chips, cfg);
    let per_block = fc.block_time() + non_fc;
    EndToEnd {
        fc_block: fc.block_time(),
        non_fc_block: non_fc,
        step: Duration::from_secs(per_block.as_secs() * model.layers as f64),
    }
}

fn result(algorithm: Algorithm, mesh_shape: MeshShape, reports: Vec<SimReport>) -> FcStepResult {
    FcStepResult {
        algorithm,
        mesh_shape,
        report: SimReport::merge_serial(&reports),
    }
}

/// Runs the twelve GeMMs of a layer plan, constructing the algorithm per
/// pass from its problem and tuned slice count.
fn run_plan(
    mesh: &Torus2d,
    cfg: &SimConfig,
    layers: &[LayerPlan],
    make: impl Fn(GemmProblem, usize) -> Box<dyn DistributedGemm>,
) -> Option<Vec<SimReport>> {
    let mut reports = Vec::new();
    for layer in layers {
        for pass in &layer.passes {
            let algo = make(pass.problem, pass.slice_count);
            let program = algo.schedule(mesh, pass.problem, cfg.elem_bytes).ok()?;
            reports.push(Engine::new(mesh.clone(), cfg.clone()).run(&program));
        }
    }
    Some(reports)
}

/// Per-algorithm mesh-shape tuning: evaluates every candidate mesh with
/// the algorithm's own cost estimator (the per-pass MeshSlice slice count
/// is still tuned first, since the paper derives the baselines' iteration
/// counts from it).
fn tune_mesh(
    tuner: &Autotuner,
    model: &LlmConfig,
    setup: TrainingSetup,
    chips: usize,
    estimate: impl Fn(&CostModel, MeshShape, GemmProblem, usize) -> Option<Duration>,
) -> Option<(MeshShape, Vec<LayerPlan>)> {
    let cm = tuner.cost_model();
    let eb = cm.config().elem_bytes;
    let mut best: Option<(Duration, MeshShape, Vec<LayerPlan>)> = None;
    for mesh in Autotuner::candidate_meshes(chips) {
        let Some((_, layers)) = tuner.estimate_on_mesh(model, setup, mesh) else {
            continue;
        };
        let mut total = Duration::ZERO;
        let mut ok = true;
        for layer in &layers {
            for pass in &layer.passes {
                let s = tuner.best_slice_count(mesh, pass.problem, eb).0;
                match estimate(cm, mesh, pass.problem, s) {
                    Some(t) => total += t,
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
        }
        if !ok {
            continue;
        }
        if best.as_ref().map(|(t, _, _)| total < *t).unwrap_or(true) {
            best = Some((total, mesh, layers));
        }
    }
    best.map(|(_, mesh, layers)| (mesh, layers))
}

/// SUMMA's panel count: the smallest multiple of `lcm(Pr, Pc)` that is at
/// least the MeshSlice slice count (the paper's unrolling parity) and
/// divides the paneled dimension.
pub fn summa_panels(mesh: MeshShape, problem: GemmProblem, slice_count: usize) -> Option<usize> {
    let gcd = {
        fn g(a: usize, b: usize) -> usize {
            if b == 0 {
                a
            } else {
                g(b, a % b)
            }
        }
        g(mesh.rows(), mesh.cols())
    };
    let lcm = mesh.rows() / gcd * mesh.cols();
    let dim = match problem.dataflow {
        Dataflow::Os => problem.shape.k,
        Dataflow::Ls => problem.shape.n,
        Dataflow::Rs => problem.shape.m,
    };
    let mut panels = lcm * slice_count.div_ceil(lcm).max(1);
    // Search upward for a divisor of the paneled dimension.
    for _ in 0..16 {
        if dim % panels == 0 {
            return Some(panels);
        }
        panels += lcm;
    }
    // Fall back to the smallest legal panel count.
    (dim % lcm == 0).then_some(lcm)
}

/// Tunes the unroll factor of the 1D baselines with the cost model.
fn tune_one_d_unroll(
    cm: &CostModel,
    chips: usize,
    shape: GemmShape,
    algorithm: Algorithm,
    elem_bytes: usize,
) -> usize {
    let (shard, per_arrival) = one_d_parameters(chips, shape, algorithm, elem_bytes);
    let mut best = (chips, cm.one_d_time(chips, shard, per_arrival, chips));
    let mut u = 1;
    while u <= chips {
        if chips.is_multiple_of(u) {
            let t = cm.one_d_time(chips, shard, per_arrival, u);
            if t < best.1 {
                best = (u, t);
            }
        }
        u *= 2;
    }
    best.0
}

/// The rotated shard bytes and per-arrival GeMM of a 1D baseline.
fn one_d_parameters(
    chips: usize,
    shape: GemmShape,
    algorithm: Algorithm,
    elem_bytes: usize,
) -> (u64, GemmShape) {
    let GemmShape { m, n, k } = shape;
    match algorithm {
        Algorithm::OneDimTp => (
            (m / chips * k * elem_bytes) as u64,
            GemmShape::new(m / chips, n / chips, k),
        ),
        _ => (
            (k / chips * n * elem_bytes) as u64,
            GemmShape::new(m / chips, n, k / chips),
        ),
    }
}

/// The MeshSlice block size for a problem: the TPU block (8) when the
/// sliced extents allow it, otherwise 1 (pure vector slicing).
fn block_for(
    slice_count: usize,
    tuner: &Autotuner,
    mesh: MeshShape,
    problem: GemmProblem,
) -> usize {
    if tuner
        .legal_slice_counts(mesh, problem)
        .contains(&slice_count)
    {
        tuner.block()
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small model that keeps test simulations fast.
    fn tiny_model() -> LlmConfig {
        LlmConfig {
            name: "Tiny".to_string(),
            hidden: 512,
            heads: 8,
            layers: 4,
            ffn_mult: 4,
        }
    }

    fn setup() -> TrainingSetup {
        TrainingSetup {
            batch: 4,
            seq_len: 256,
        }
    }

    #[test]
    fn meshslice_step_runs_and_reports_utilization() {
        let r = simulate_fc_step(
            &tiny_model(),
            setup(),
            8,
            Algorithm::MeshSlice,
            &SimConfig::tpu_v4(),
        )
        .unwrap();
        assert!(r.utilization() > 0.002 && r.utilization() <= 1.0);
        assert_eq!(r.mesh_shape.num_chips(), 8);
    }

    #[test]
    fn all_algorithms_run_on_a_square_cluster() {
        for algo in Algorithm::ALL {
            let r = simulate_fc_step(&tiny_model(), setup(), 4, algo, &SimConfig::tpu_v4());
            let r = r.unwrap_or_else(|| panic!("{algo} failed"));
            assert!(r.utilization() > 0.0, "{algo}");
        }
    }

    #[test]
    fn cannon_skips_non_square_chip_counts() {
        assert!(simulate_fc_step(
            &tiny_model(),
            setup(),
            8,
            Algorithm::Cannon,
            &SimConfig::tpu_v4()
        )
        .is_none());
    }

    #[test]
    fn meshslice_is_fastest_on_a_comm_bound_cluster() {
        // Make communication expensive so overlap matters.
        let cfg = SimConfig {
            link_bandwidth: 10e9,
            ..SimConfig::tpu_v4()
        };
        let ms = simulate_fc_step(&tiny_model(), setup(), 8, Algorithm::MeshSlice, &cfg).unwrap();
        let coll =
            simulate_fc_step(&tiny_model(), setup(), 8, Algorithm::Collective, &cfg).unwrap();
        assert!(
            ms.block_time() <= coll.block_time(),
            "MeshSlice {} vs Collective {}",
            ms.block_time(),
            coll.block_time()
        );
    }

    #[test]
    fn fused_block_is_no_slower_than_serial_passes() {
        let cfg = SimConfig::tpu_v4();
        let serial =
            simulate_fc_step(&tiny_model(), setup(), 8, Algorithm::MeshSlice, &cfg).unwrap();
        let fused = simulate_fused_block(&tiny_model(), setup(), 8, &cfg).unwrap();
        assert!(
            fused.block_time() <= serial.block_time(),
            "fused {} vs serial {}",
            fused.block_time(),
            serial.block_time()
        );
        // Same work either way.
        assert_eq!(fused.report.total_flops(), serial.report.total_flops());
    }

    #[test]
    fn end_to_end_adds_non_fc_time() {
        let model = tiny_model();
        let cfg = SimConfig::tpu_v4();
        let fc = simulate_fc_step(&model, setup(), 4, Algorithm::Collective, &cfg).unwrap();
        let e2e = end_to_end(&model, setup(), 4, &fc, &cfg);
        assert!(e2e.step.as_secs() > fc.block_time().as_secs());
        assert!(e2e.non_fc_block.as_secs() > 0.0);
    }

    #[test]
    fn summa_panels_prefers_lcm_multiples() {
        let mesh = MeshShape::new(4, 2);
        let problem = GemmProblem::new(GemmShape::new(64, 64, 64), Dataflow::Os);
        // lcm = 4; slice count 6 rounds up to 8, which divides K = 64.
        assert_eq!(summa_panels(mesh, problem, 6), Some(8));
        assert_eq!(summa_panels(mesh, problem, 1), Some(4));
    }

    #[test]
    fn one_d_parameters_match_the_gathered_matrix() {
        let (shard_tp, per_tp) =
            one_d_parameters(4, GemmShape::new(64, 32, 16), Algorithm::OneDimTp, 2);
        assert_eq!(shard_tp, (64 / 4 * 16 * 2) as u64);
        assert_eq!(per_tp, GemmShape::new(16, 8, 16));
        let (shard_fsdp, per_fsdp) =
            one_d_parameters(4, GemmShape::new(64, 32, 16), Algorithm::Fsdp, 2);
        assert_eq!(shard_fsdp, (16 / 4 * 32 * 2) as u64);
        assert_eq!(per_fsdp, GemmShape::new(16, 32, 4));
    }
}
