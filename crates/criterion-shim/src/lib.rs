//! A vendored, dependency-free subset of the `criterion` benchmarking
//! API.
//!
//! The workspace builds in hermetic environments with no registry
//! access, so the slice of `criterion` the microbenchmarks use is
//! implemented here and wired in via Cargo dependency renaming
//! (`criterion = { path = "crates/criterion-shim", package =
//! "meshslice-criterion-shim" }`). Bench files keep their upstream
//! imports unchanged.
//!
//! Measurement is intentionally simple: a short warm-up sizes the batch
//! so one sample lasts a few milliseconds, then several samples are
//! timed and the per-iteration mean/min are reported. There are no
//! statistical comparisons against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Number of measured samples per benchmark.
const SAMPLES: usize = 7;

/// Entry point for registering and running benchmarks.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _parent: self }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&id.label);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timer handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive via a sink so the
    /// optimizer cannot delete the work.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: find how many iterations fill one sample window.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET || batch >= 1 << 20 {
                break;
            }
            // Grow geometrically toward the target window.
            batch = if elapsed.is_zero() {
                batch * 8
            } else {
                let scale = SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64();
                (batch as f64 * scale.clamp(1.5, 8.0)).ceil() as u64
            };
        }

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let sample = start.elapsed();
            total += sample;
            min = min.min(sample);
        }
        let denom = (SAMPLES as u64 * batch) as f64;
        self.mean_ns = total.as_nanos() as f64 / denom;
        self.min_ns = min.as_nanos() as f64 / batch as f64;
        self.iters = SAMPLES as u64 * batch;
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("  {label}: no measurement (b.iter never called)");
            return;
        }
        println!(
            "  {label}: mean {} (min {}, {} iters)",
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            self.iters
        );
    }
}

/// Formats nanoseconds with an engineering-friendly unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| {
            b.iter(|| std::hint::black_box(1u64) + std::hint::black_box(2u64))
        });
    }

    #[test]
    fn group_api_matches_upstream_shape() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        for n in [1usize, 2] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        group.bench_function("unparameterized", |b| {
            b.iter(|| std::hint::black_box(3u64) * std::hint::black_box(5u64))
        });
        group.finish();
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("matmul", 64).label, "matmul/64");
    }
}
