//! Deterministic fault-injection models for the MeshSlice simulator.
//!
//! The simulator (`meshslice-sim`) consumes a concrete
//! [`ClusterProfile`] — *which* chips are slow, *which* links degraded,
//! *when* outages happen. This crate generates such profiles from
//! compact stochastic descriptions: a [`FaultSpec`] combines fixed
//! stragglers, heavy-tailed compute jitter, per-link bandwidth
//! degradation, and transient link outages, and [`FaultSpec::sample`]
//! draws one profile from a seed.
//!
//! Sampling is fully deterministic: the same `(spec, num_chips, seed)`
//! triple always yields the same profile, so any simulated result is
//! reproducible from its seed. The draw *structure* is also independent
//! of the continuous parameters — changing only a severity value (e.g.
//! `straggler_slowdown`) rescales the same underlying draw instead of
//! re-rolling it, which makes simulated makespans monotone in severity
//! for a fixed seed and lets sensitivity sweeps vary one knob cleanly.
//!
//! # Example
//!
//! ```
//! use meshslice_faults::FaultSpec;
//!
//! let spec = FaultSpec::stragglers(2, 1.5);
//! let profile = spec.sample(16, 42);
//! assert_eq!(profile, spec.sample(16, 42)); // same seed, same draw
//! let slow_chips = (0..16)
//!     .filter(|&c| profile.compute_slowdown(c) > 1.0)
//!     .count();
//! assert_eq!(slow_chips, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use meshslice_mesh::LinkDir;
use meshslice_sim::{ClusterProfile, LinkOutage};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Distribution of per-chip compute jitter multipliers (all `>= 1`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JitterModel {
    /// No jitter: every non-straggler chip runs at nominal speed.
    None,
    /// `exp(sigma * |z|)` with `z` standard normal — a folded log-normal,
    /// concentrated near 1 with a moderate upper tail.
    LogNormal {
        /// Log-scale spread; 0.05–0.2 is a realistic range.
        sigma: f64,
    },
    /// `1 + scale * (x - 1)` with `x` Pareto(alpha, 1) — the heavy tail
    /// observed in large-fleet straggler studies.
    Pareto {
        /// Tail exponent; smaller is heavier. Must be positive.
        alpha: f64,
        /// Scales the excess over 1. Must be non-negative.
        scale: f64,
    },
}

impl JitterModel {
    /// Draws one multiplier `>= 1`.
    fn draw(&self, rng: &mut StdRng) -> f64 {
        // Every arm consumes the same number of uniform draws so the RNG
        // stream stays aligned when only distribution parameters change.
        let u1 = unit_open(rng);
        let u2 = unit_open(rng);
        match *self {
            JitterModel::None => 1.0,
            JitterModel::LogNormal { sigma } => {
                // Box-Muller; fold the normal to keep multipliers >= 1.
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (sigma * z.abs()).exp()
            }
            JitterModel::Pareto { alpha, scale } => {
                let x = u1.powf(-1.0 / alpha);
                1.0 + scale * (x - 1.0)
            }
        }
    }
}

/// A stochastic description of cluster variability, sampled into concrete
/// [`ClusterProfile`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Number of fixed straggler chips.
    pub stragglers: usize,
    /// Compute-time multiplier of each straggler (`>= 1`).
    pub straggler_slowdown: f64,
    /// Jitter applied to *every* chip (stragglers compound on top).
    pub jitter: JitterModel,
    /// Probability that any given link direction is statically degraded.
    pub link_degrade_prob: f64,
    /// Lower bound of the degraded-link bandwidth multiplier; degraded
    /// links draw uniformly from `[link_floor, 1)`.
    pub link_floor: f64,
    /// Expected number of transient outages per link over the horizon.
    pub outages_per_link: f64,
    /// Duration of each outage window, seconds.
    pub outage_duration: f64,
    /// Bandwidth multiplier during an outage, in `(0, 1]`.
    pub outage_floor: f64,
    /// Time horizon outage start times are drawn from, seconds.
    pub horizon: f64,
}

impl FaultSpec {
    /// The empty spec: sampling it yields the ideal profile.
    pub fn none() -> Self {
        FaultSpec {
            stragglers: 0,
            straggler_slowdown: 1.0,
            jitter: JitterModel::None,
            link_degrade_prob: 0.0,
            link_floor: 0.5,
            outages_per_link: 0.0,
            outage_duration: 0.0,
            outage_floor: 0.1,
            horizon: 1.0,
        }
    }

    /// `count` fixed stragglers, each `slowdown`× slower; nothing else.
    pub fn stragglers(count: usize, slowdown: f64) -> Self {
        FaultSpec {
            stragglers: count,
            straggler_slowdown: slowdown,
            ..FaultSpec::none()
        }
    }

    /// Adds compute jitter on every chip.
    pub fn with_jitter(self, jitter: JitterModel) -> Self {
        FaultSpec { jitter, ..self }
    }

    /// Makes each link direction degraded with probability `prob`, drawing
    /// its multiplier uniformly from `[floor, 1)`.
    pub fn with_link_degradation(self, prob: f64, floor: f64) -> Self {
        FaultSpec {
            link_degrade_prob: prob,
            link_floor: floor,
            ..self
        }
    }

    /// Adds transient outages: `per_link` expected windows of `duration`
    /// seconds at `floor`× bandwidth, with start times over `[0, horizon)`.
    pub fn with_outages(self, per_link: f64, duration: f64, floor: f64, horizon: f64) -> Self {
        FaultSpec {
            outages_per_link: per_link,
            outage_duration: duration,
            outage_floor: floor,
            horizon,
            ..self
        }
    }

    /// Draws one concrete profile for a `num_chips` cluster.
    ///
    /// Deterministic in `(self, num_chips, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (negative probabilities,
    /// slowdowns below 1, floors outside `(0, 1]`, …).
    pub fn sample(&self, num_chips: usize, seed: u64) -> ClusterProfile {
        self.validate();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut profile = ClusterProfile::ideal(num_chips);

        // Per-chip jitter (drawn for every chip in every model so the
        // stream is parameter-independent).
        for chip in 0..num_chips {
            let m = self.jitter.draw(&mut rng);
            if m > 1.0 {
                profile.set_compute_slowdown(chip, m);
            }
        }

        // Straggler selection: a partial Fisher-Yates shuffle picks the
        // straggler set independently of the slowdown value, so raising
        // the severity slows the *same* chips further.
        let count = self.stragglers.min(num_chips);
        let mut order: Vec<usize> = (0..num_chips).collect();
        for i in 0..count {
            let j = rng.gen_range(i..num_chips);
            order.swap(i, j);
        }
        if self.straggler_slowdown > 1.0 {
            for &chip in order.iter().take(count) {
                let jittered = profile.compute_slowdown(chip);
                profile.set_compute_slowdown(chip, jittered * self.straggler_slowdown);
            }
        }

        // Static link degradation. The hit/level pair is drawn for every
        // link regardless of the probability, again to keep the stream
        // aligned across parameter changes.
        for chip in 0..num_chips {
            for dir in LinkDir::ALL {
                let hit = rng.gen_bool(self.link_degrade_prob);
                let level = unit_open(&mut rng);
                if hit {
                    let m = self.link_floor + level * (1.0 - self.link_floor);
                    profile.set_link_multiplier(chip, dir, m.min(1.0));
                }
            }
        }

        // Transient outages: per link, floor(expected) windows plus one
        // more with the fractional probability; starts uniform over the
        // horizon, overlapping draws dropped (windows on one link rarely
        // collide for realistic rates).
        if self.outages_per_link > 0.0 && self.outage_duration > 0.0 {
            let whole = self.outages_per_link.floor() as usize;
            let frac = self.outages_per_link.fract();
            for chip in 0..num_chips {
                for dir in LinkDir::ALL {
                    let extra = rng.gen_bool(frac) as usize;
                    let span = (self.horizon - self.outage_duration).max(0.0);
                    let mut starts: Vec<f64> = (0..whole + extra)
                        .map(|_| unit_open(&mut rng) * span)
                        .collect();
                    starts.sort_by(f64::total_cmp);
                    let mut last_end = f64::NEG_INFINITY;
                    for start in starts {
                        if start < last_end {
                            continue;
                        }
                        let end = start + self.outage_duration;
                        profile.add_outage(
                            chip,
                            dir,
                            LinkOutage::new(start, end, self.outage_floor),
                        );
                        last_end = end;
                    }
                }
            }
        }

        profile
    }

    /// Draws `n` profiles from consecutive seeds `base_seed..base_seed+n`.
    pub fn sample_profiles(
        &self,
        num_chips: usize,
        base_seed: u64,
        n: usize,
    ) -> Vec<ClusterProfile> {
        (0..n as u64)
            .map(|i| self.sample(num_chips, base_seed.wrapping_add(i)))
            .collect()
    }

    fn validate(&self) {
        assert!(
            self.straggler_slowdown >= 1.0 && self.straggler_slowdown.is_finite(),
            "straggler slowdown {} must be >= 1",
            self.straggler_slowdown
        );
        assert!(
            (0.0..=1.0).contains(&self.link_degrade_prob),
            "link degrade probability {} must be in [0, 1]",
            self.link_degrade_prob
        );
        assert!(
            self.link_floor > 0.0 && self.link_floor <= 1.0,
            "link floor {} must be in (0, 1]",
            self.link_floor
        );
        assert!(
            self.outage_floor > 0.0 && self.outage_floor <= 1.0,
            "outage floor {} must be in (0, 1]",
            self.outage_floor
        );
        assert!(
            self.outages_per_link >= 0.0 && self.outage_duration >= 0.0,
            "outage rate/duration must be non-negative"
        );
        assert!(
            self.horizon > 0.0 && self.horizon.is_finite(),
            "horizon {} must be positive",
            self.horizon
        );
        if let JitterModel::LogNormal { sigma } = self.jitter {
            assert!(sigma >= 0.0, "jitter sigma {sigma} must be non-negative");
        }
        if let JitterModel::Pareto { alpha, scale } = self.jitter {
            assert!(alpha > 0.0, "Pareto alpha {alpha} must be positive");
            assert!(scale >= 0.0, "Pareto scale {scale} must be non-negative");
        }
    }
}

/// A uniform draw in the open interval `(0, 1)` — safe for `ln` and
/// `powf(-1/alpha)`.
fn unit_open(rng: &mut StdRng) -> f64 {
    loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_samples_ideal() {
        let p = FaultSpec::none().sample(16, 7);
        assert!(p.is_ideal());
    }

    #[test]
    fn same_seed_same_profile() {
        let spec = FaultSpec::stragglers(2, 1.8)
            .with_jitter(JitterModel::LogNormal { sigma: 0.1 })
            .with_link_degradation(0.2, 0.4)
            .with_outages(1.5, 1e-3, 0.1, 0.1);
        assert_eq!(spec.sample(32, 99), spec.sample(32, 99));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::stragglers(2, 1.8);
        assert_ne!(spec.sample(32, 1), spec.sample(32, 2));
    }

    #[test]
    fn straggler_count_is_exact() {
        let spec = FaultSpec::stragglers(3, 2.0);
        let p = spec.sample(16, 5);
        let slow = (0..16).filter(|&c| p.compute_slowdown(c) > 1.0).count();
        assert_eq!(slow, 3);
        // More stragglers than chips saturates at the chip count.
        let p = FaultSpec::stragglers(99, 2.0).sample(4, 5);
        assert!((0..4).all(|c| p.compute_slowdown(c) > 1.0));
    }

    #[test]
    fn severity_rescales_the_same_draw() {
        // Same seed, different severities: the same chips straggle, and
        // every chip's slowdown is monotone in the severity.
        let mild = FaultSpec::stragglers(2, 1.2).sample(16, 11);
        let harsh = FaultSpec::stragglers(2, 2.5).sample(16, 11);
        for chip in 0..16 {
            let (a, b) = (mild.compute_slowdown(chip), harsh.compute_slowdown(chip));
            assert_eq!(a > 1.0, b > 1.0, "straggler set changed with severity");
            assert!(b >= a);
        }
    }

    #[test]
    fn jitter_multipliers_are_at_least_one() {
        for (i, jitter) in [
            JitterModel::LogNormal { sigma: 0.3 },
            JitterModel::Pareto {
                alpha: 2.0,
                scale: 0.5,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let p = FaultSpec::none().with_jitter(jitter).sample(64, i as u64);
            for chip in 0..64 {
                assert!(p.compute_slowdown(chip) >= 1.0);
            }
        }
    }

    #[test]
    fn link_degradation_respects_the_floor() {
        let p = FaultSpec::none()
            .with_link_degradation(1.0, 0.6)
            .sample(8, 3);
        for chip in 0..8 {
            for dir in LinkDir::ALL {
                let m = p.base_link_multiplier(chip, dir);
                assert!((0.6..=1.0).contains(&m), "multiplier {m}");
            }
        }
    }

    #[test]
    fn outages_fit_the_horizon_and_do_not_overlap() {
        let spec = FaultSpec::none().with_outages(3.0, 2e-3, 0.1, 0.05);
        let p = spec.sample(8, 17);
        let mut saw_any = false;
        for chip in 0..8 {
            for dir in LinkDir::ALL {
                let mut last_end = f64::NEG_INFINITY;
                for w in p.outages(chip, dir) {
                    saw_any = true;
                    assert!(w.start >= last_end);
                    assert!(w.end <= 0.05 + 1e-12);
                    assert!((w.end - w.start - 2e-3).abs() < 1e-12);
                    last_end = w.end;
                }
            }
        }
        assert!(saw_any, "expected some outages at rate 3 per link");
    }

    #[test]
    fn sample_profiles_uses_consecutive_seeds() {
        let spec = FaultSpec::stragglers(1, 1.5);
        let many = spec.sample_profiles(8, 100, 3);
        assert_eq!(many.len(), 3);
        assert_eq!(many[0], spec.sample(8, 100));
        assert_eq!(many[2], spec.sample(8, 102));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn sub_unity_slowdown_panics() {
        FaultSpec::stragglers(1, 0.5).sample(4, 0);
    }
}
