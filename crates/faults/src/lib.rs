//! Deterministic fault-injection models for the MeshSlice simulator.
//!
//! The simulator (`meshslice-sim`) consumes a concrete
//! [`ClusterProfile`] — *which* chips are slow, *which* links degraded,
//! *when* outages happen. This crate generates such profiles from
//! compact stochastic descriptions: a [`FaultSpec`] combines fixed
//! stragglers, heavy-tailed compute jitter, per-link bandwidth
//! degradation, and transient link outages, and [`FaultSpec::sample`]
//! draws one profile from a seed.
//!
//! Sampling is fully deterministic: the same `(spec, num_chips, seed)`
//! triple always yields the same profile, so any simulated result is
//! reproducible from its seed. The draw *structure* is also independent
//! of the continuous parameters — changing only a severity value (e.g.
//! `straggler_slowdown`) rescales the same underlying draw instead of
//! re-rolling it, which makes simulated makespans monotone in severity
//! for a fixed seed and lets sensitivity sweeps vary one knob cleanly.
//!
//! # Example
//!
//! ```
//! use meshslice_faults::FaultSpec;
//!
//! let spec = FaultSpec::stragglers(2, 1.5);
//! let profile = spec.sample(16, 42);
//! assert_eq!(profile, spec.sample(16, 42)); // same seed, same draw
//! let slow_chips = (0..16)
//!     .filter(|&c| profile.compute_slowdown(c) > 1.0)
//!     .count();
//! assert_eq!(slow_chips, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use meshslice_mesh::LinkDir;
use meshslice_sim::{ChipFailure, ClusterProfile, LinkOutage};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// An out-of-range field of a [`FaultSpec`] or [`FailureSpec`], reported
/// by [`FaultSpec::validate`] / [`FailureSpec::validate`] instead of
/// silently producing a nonsense profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpecError {
    /// `straggler_slowdown` below 1 (or non-finite).
    StragglerSlowdown(f64),
    /// `link_degrade_prob` outside `[0, 1]`.
    LinkDegradeProb(f64),
    /// `link_floor` outside `(0, 1]`.
    LinkFloor(f64),
    /// `outage_floor` outside `(0, 1]`.
    OutageFloor(f64),
    /// Negative `outages_per_link` or `outage_duration`.
    NegativeOutage {
        /// The configured expected outages per link.
        rate: f64,
        /// The configured outage duration, seconds.
        duration: f64,
    },
    /// Non-positive (or non-finite) `horizon`.
    Horizon(f64),
    /// Negative log-normal jitter sigma.
    JitterSigma(f64),
    /// Non-positive Pareto tail exponent.
    ParetoAlpha(f64),
    /// Negative Pareto scale.
    ParetoScale(f64),
    /// Non-positive MTBF (`FailureSpec`; `f64::INFINITY` means "never").
    Mtbf(f64),
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultSpecError::StragglerSlowdown(v) => {
                write!(f, "straggler slowdown {v} must be >= 1")
            }
            FaultSpecError::LinkDegradeProb(v) => {
                write!(f, "link degrade probability {v} must be in [0, 1]")
            }
            FaultSpecError::LinkFloor(v) => write!(f, "link floor {v} must be in (0, 1]"),
            FaultSpecError::OutageFloor(v) => write!(f, "outage floor {v} must be in (0, 1]"),
            FaultSpecError::NegativeOutage { rate, duration } => write!(
                f,
                "outage rate/duration must be non-negative (rate {rate}, duration {duration})"
            ),
            FaultSpecError::Horizon(v) => write!(f, "horizon {v} must be positive"),
            FaultSpecError::JitterSigma(v) => {
                write!(f, "jitter sigma {v} must be non-negative")
            }
            FaultSpecError::ParetoAlpha(v) => write!(f, "Pareto alpha {v} must be positive"),
            FaultSpecError::ParetoScale(v) => {
                write!(f, "Pareto scale {v} must be non-negative")
            }
            FaultSpecError::Mtbf(v) => write!(f, "MTBF {v} must be positive"),
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Distribution of per-chip compute jitter multipliers (all `>= 1`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum JitterModel {
    /// No jitter: every non-straggler chip runs at nominal speed.
    None,
    /// `exp(sigma * |z|)` with `z` standard normal — a folded log-normal,
    /// concentrated near 1 with a moderate upper tail.
    LogNormal {
        /// Log-scale spread; 0.05–0.2 is a realistic range.
        sigma: f64,
    },
    /// `1 + scale * (x - 1)` with `x` Pareto(alpha, 1) — the heavy tail
    /// observed in large-fleet straggler studies.
    Pareto {
        /// Tail exponent; smaller is heavier. Must be positive.
        alpha: f64,
        /// Scales the excess over 1. Must be non-negative.
        scale: f64,
    },
}

impl JitterModel {
    /// Draws one multiplier `>= 1`.
    fn draw(&self, rng: &mut StdRng) -> f64 {
        // Every arm consumes the same number of uniform draws so the RNG
        // stream stays aligned when only distribution parameters change.
        let u1 = unit_open(rng);
        let u2 = unit_open(rng);
        match *self {
            JitterModel::None => 1.0,
            JitterModel::LogNormal { sigma } => {
                // Box-Muller; fold the normal to keep multipliers >= 1.
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (sigma * z.abs()).exp()
            }
            JitterModel::Pareto { alpha, scale } => {
                let x = u1.powf(-1.0 / alpha);
                1.0 + scale * (x - 1.0)
            }
        }
    }
}

/// A stochastic description of cluster variability, sampled into concrete
/// [`ClusterProfile`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Number of fixed straggler chips.
    pub stragglers: usize,
    /// Compute-time multiplier of each straggler (`>= 1`).
    pub straggler_slowdown: f64,
    /// Jitter applied to *every* chip (stragglers compound on top).
    pub jitter: JitterModel,
    /// Probability that any given link direction is statically degraded.
    pub link_degrade_prob: f64,
    /// Lower bound of the degraded-link bandwidth multiplier; degraded
    /// links draw uniformly from `[link_floor, 1)`.
    pub link_floor: f64,
    /// Expected number of transient outages per link over the horizon.
    pub outages_per_link: f64,
    /// Duration of each outage window, seconds.
    pub outage_duration: f64,
    /// Bandwidth multiplier during an outage, in `(0, 1]`.
    pub outage_floor: f64,
    /// Time horizon outage start times are drawn from, seconds.
    pub horizon: f64,
}

impl FaultSpec {
    /// The empty spec: sampling it yields the ideal profile.
    pub fn none() -> Self {
        FaultSpec {
            stragglers: 0,
            straggler_slowdown: 1.0,
            jitter: JitterModel::None,
            link_degrade_prob: 0.0,
            link_floor: 0.5,
            outages_per_link: 0.0,
            outage_duration: 0.0,
            outage_floor: 0.1,
            horizon: 1.0,
        }
    }

    /// `count` fixed stragglers, each `slowdown`× slower; nothing else.
    pub fn stragglers(count: usize, slowdown: f64) -> Self {
        FaultSpec {
            stragglers: count,
            straggler_slowdown: slowdown,
            ..FaultSpec::none()
        }
    }

    /// Adds compute jitter on every chip.
    pub fn with_jitter(self, jitter: JitterModel) -> Self {
        FaultSpec { jitter, ..self }
    }

    /// Makes each link direction degraded with probability `prob`, drawing
    /// its multiplier uniformly from `[floor, 1)`.
    pub fn with_link_degradation(self, prob: f64, floor: f64) -> Self {
        FaultSpec {
            link_degrade_prob: prob,
            link_floor: floor,
            ..self
        }
    }

    /// Adds transient outages: `per_link` expected windows of `duration`
    /// seconds at `floor`× bandwidth, with start times over `[0, horizon)`.
    pub fn with_outages(self, per_link: f64, duration: f64, floor: f64, horizon: f64) -> Self {
        FaultSpec {
            outages_per_link: per_link,
            outage_duration: duration,
            outage_floor: floor,
            horizon,
            ..self
        }
    }

    /// Draws one concrete profile for a `num_chips` cluster.
    ///
    /// Deterministic in `(self, num_chips, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (negative probabilities,
    /// slowdowns below 1, floors outside `(0, 1]`, …); use
    /// [`validate`](Self::validate) to check fields without panicking.
    pub fn sample(&self, num_chips: usize, seed: u64) -> ClusterProfile {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut profile = ClusterProfile::ideal(num_chips);

        // Per-chip jitter (drawn for every chip in every model so the
        // stream is parameter-independent).
        for chip in 0..num_chips {
            let m = self.jitter.draw(&mut rng);
            if m > 1.0 {
                profile.set_compute_slowdown(chip, m);
            }
        }

        // Straggler selection: a partial Fisher-Yates shuffle picks the
        // straggler set independently of the slowdown value, so raising
        // the severity slows the *same* chips further.
        let count = self.stragglers.min(num_chips);
        let mut order: Vec<usize> = (0..num_chips).collect();
        for i in 0..count {
            let j = rng.gen_range(i..num_chips);
            order.swap(i, j);
        }
        if self.straggler_slowdown > 1.0 {
            for &chip in order.iter().take(count) {
                let jittered = profile.compute_slowdown(chip);
                profile.set_compute_slowdown(chip, jittered * self.straggler_slowdown);
            }
        }

        // Static link degradation. The hit/level pair is drawn for every
        // link regardless of the probability, again to keep the stream
        // aligned across parameter changes.
        for chip in 0..num_chips {
            for dir in LinkDir::ALL {
                let hit = rng.gen_bool(self.link_degrade_prob);
                let level = unit_open(&mut rng);
                if hit {
                    let m = self.link_floor + level * (1.0 - self.link_floor);
                    profile.set_link_multiplier(chip, dir, m.min(1.0));
                }
            }
        }

        // Transient outages: per link, floor(expected) windows plus one
        // more with the fractional probability; starts uniform over the
        // horizon, overlapping draws dropped (windows on one link rarely
        // collide for realistic rates).
        if self.outages_per_link > 0.0 && self.outage_duration > 0.0 {
            let whole = self.outages_per_link.floor() as usize;
            let frac = self.outages_per_link.fract();
            for chip in 0..num_chips {
                for dir in LinkDir::ALL {
                    let extra = rng.gen_bool(frac) as usize;
                    let span = (self.horizon - self.outage_duration).max(0.0);
                    let mut starts: Vec<f64> = (0..whole + extra)
                        .map(|_| unit_open(&mut rng) * span)
                        .collect();
                    starts.sort_by(f64::total_cmp);
                    let mut last_end = f64::NEG_INFINITY;
                    for start in starts {
                        if start < last_end {
                            continue;
                        }
                        // Clamp at the horizon so a duration longer than
                        // the horizon cannot leak a window past it.
                        let end = (start + self.outage_duration).min(self.horizon);
                        profile.add_outage(
                            chip,
                            dir,
                            LinkOutage::new(start, end, self.outage_floor),
                        );
                        last_end = end;
                    }
                }
            }
        }

        profile
    }

    /// Draws `n` profiles from consecutive seeds `base_seed..base_seed+n`.
    pub fn sample_profiles(
        &self,
        num_chips: usize,
        base_seed: u64,
        n: usize,
    ) -> Vec<ClusterProfile> {
        (0..n as u64)
            .map(|i| self.sample(num_chips, base_seed.wrapping_add(i)))
            .collect()
    }

    /// Checks every field range, returning the first violation as a typed
    /// error instead of panicking.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        if !(self.straggler_slowdown >= 1.0 && self.straggler_slowdown.is_finite()) {
            return Err(FaultSpecError::StragglerSlowdown(self.straggler_slowdown));
        }
        if !(0.0..=1.0).contains(&self.link_degrade_prob) {
            return Err(FaultSpecError::LinkDegradeProb(self.link_degrade_prob));
        }
        if !(self.link_floor > 0.0 && self.link_floor <= 1.0) {
            return Err(FaultSpecError::LinkFloor(self.link_floor));
        }
        if !(self.outage_floor > 0.0 && self.outage_floor <= 1.0) {
            return Err(FaultSpecError::OutageFloor(self.outage_floor));
        }
        if !(self.outages_per_link >= 0.0 && self.outage_duration >= 0.0) {
            return Err(FaultSpecError::NegativeOutage {
                rate: self.outages_per_link,
                duration: self.outage_duration,
            });
        }
        if !(self.horizon > 0.0 && self.horizon.is_finite()) {
            return Err(FaultSpecError::Horizon(self.horizon));
        }
        if let JitterModel::LogNormal { sigma } = self.jitter {
            if sigma < 0.0 {
                return Err(FaultSpecError::JitterSigma(sigma));
            }
        }
        if let JitterModel::Pareto { alpha, scale } = self.jitter {
            if alpha <= 0.0 || alpha.is_nan() {
                return Err(FaultSpecError::ParetoAlpha(alpha));
            }
            if scale < 0.0 {
                return Err(FaultSpecError::ParetoScale(scale));
            }
        }
        Ok(())
    }
}

/// A permanent-failure model: per-chip and per-link MTBF, sampled into
/// concrete failure instants with seeded exponential draws.
///
/// Unlike [`FaultSpec`], whose perturbations are *transient* (a link
/// outage window ends and the link recovers), a [`FailureSpec`] event is
/// *permanent*: once a chip fails it never returns, and the run must
/// detect the failure, abort, and restart from a checkpoint (modeled by
/// `meshslice-recovery`). The sampling discipline matches [`FaultSpec`]:
/// deterministic in `(spec, num_chips, seed)`, with one exponential draw
/// per chip and per link regardless of the parameter values, so changing
/// an MTBF rescales the same underlying draw.
///
/// # Example
///
/// ```
/// use meshslice_faults::FailureSpec;
///
/// let spec = FailureSpec::chip_mtbf(3600.0, 7200.0);
/// let draw = spec.sample(16, 42);
/// assert_eq!(draw, spec.sample(16, 42)); // same seed, same failures
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureSpec {
    /// Mean time between failures of one chip, seconds. `f64::INFINITY`
    /// means chips never fail.
    pub chip_mtbf: f64,
    /// Mean time between permanent failures of one link, seconds.
    /// `f64::INFINITY` means links never fail.
    pub link_mtbf: f64,
    /// Time horizon failures are sampled over, seconds (the wall-clock
    /// length of the training run being modeled).
    pub horizon: f64,
}

/// A permanent link failure sampled from a [`FailureSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFailure {
    /// The chip owning the failed link.
    pub chip: usize,
    /// The failed link direction.
    pub dir: LinkDir,
    /// Failure instant, seconds.
    pub at: f64,
}

/// One concrete draw of permanent failures over the horizon, sorted by
/// failure time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FailureDraw {
    /// Permanent chip failures, sorted by time.
    pub chip_failures: Vec<ChipFailure>,
    /// Permanent link failures, sorted by time.
    pub link_failures: Vec<LinkFailure>,
}

impl FailureDraw {
    /// The earliest chip failure, if any chip fails within the horizon.
    pub fn first_chip_failure(&self) -> Option<ChipFailure> {
        self.chip_failures.first().copied()
    }

    /// All failure instants (chip and link), sorted.
    pub fn event_times(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .chip_failures
            .iter()
            .map(|f| f.at)
            .chain(self.link_failures.iter().map(|f| f.at))
            .collect();
        times.sort_by(f64::total_cmp);
        times
    }

    /// Whether the draw contains no failure at all.
    pub fn is_empty(&self) -> bool {
        self.chip_failures.is_empty() && self.link_failures.is_empty()
    }
}

impl FailureSpec {
    /// The failure-free spec: nothing ever fails.
    pub fn none() -> Self {
        FailureSpec {
            chip_mtbf: f64::INFINITY,
            link_mtbf: f64::INFINITY,
            horizon: 1.0,
        }
    }

    /// Chips fail with the given MTBF over `horizon` seconds; links never
    /// fail.
    pub fn chip_mtbf(mtbf: f64, horizon: f64) -> Self {
        FailureSpec {
            chip_mtbf: mtbf,
            link_mtbf: f64::INFINITY,
            horizon,
        }
    }

    /// Adds a per-link MTBF.
    pub fn with_link_mtbf(self, mtbf: f64) -> Self {
        FailureSpec {
            link_mtbf: mtbf,
            ..self
        }
    }

    /// Checks field ranges, returning a typed error on violation.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        if self.chip_mtbf <= 0.0 || self.chip_mtbf.is_nan() {
            return Err(FaultSpecError::Mtbf(self.chip_mtbf));
        }
        if self.link_mtbf <= 0.0 || self.link_mtbf.is_nan() {
            return Err(FaultSpecError::Mtbf(self.link_mtbf));
        }
        if !(self.horizon > 0.0 && self.horizon.is_finite()) {
            return Err(FaultSpecError::Horizon(self.horizon));
        }
        Ok(())
    }

    /// The cluster-level MTBF: the mean time to the *first* failure
    /// anywhere in a `num_chips` cluster, combining the chip failure rate
    /// with the per-chip link failure rate (each chip owns two physical
    /// links of the torus: its `RowPlus` and `ColPlus` sides).
    ///
    /// Returns `f64::INFINITY` for a failure-free spec. This is the `M` of
    /// the Young–Daly interval `sqrt(2 C M)`.
    pub fn cluster_mtbf(&self, num_chips: usize) -> f64 {
        let chip_rate = if self.chip_mtbf.is_finite() {
            num_chips as f64 / self.chip_mtbf
        } else {
            0.0
        };
        let link_rate = if self.link_mtbf.is_finite() {
            2.0 * num_chips as f64 / self.link_mtbf
        } else {
            0.0
        };
        let rate = chip_rate + link_rate;
        if rate > 0.0 {
            1.0 / rate
        } else {
            f64::INFINITY
        }
    }

    /// Draws the permanent failures of a `num_chips` cluster over the
    /// horizon. Deterministic in `(self, num_chips, seed)`.
    ///
    /// Each chip and each link gets one exponential first-arrival draw
    /// (`-MTBF · ln(u)`); arrivals past the horizon are dropped. Only the
    /// first failure per component matters — the component never recovers.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters; use
    /// [`validate`](Self::validate) to check without panicking.
    pub fn sample(&self, num_chips: usize, seed: u64) -> FailureDraw {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draw = FailureDraw::default();
        // One draw per chip and per link regardless of the MTBF values, so
        // the stream stays aligned when only a severity changes (an
        // infinite MTBF maps every draw past the horizon).
        for chip in 0..num_chips {
            let at = -self.chip_mtbf * unit_open(&mut rng).ln();
            if at < self.horizon {
                draw.chip_failures.push(ChipFailure { chip, at });
            }
        }
        for chip in 0..num_chips {
            for dir in [LinkDir::RowPlus, LinkDir::ColPlus] {
                let at = -self.link_mtbf * unit_open(&mut rng).ln();
                if at < self.horizon {
                    draw.link_failures.push(LinkFailure { chip, dir, at });
                }
            }
        }
        draw.chip_failures.sort_by(|a, b| a.at.total_cmp(&b.at));
        draw.link_failures.sort_by(|a, b| a.at.total_cmp(&b.at));
        draw
    }
}

/// A uniform draw in the open interval `(0, 1)` — safe for `ln` and
/// `powf(-1/alpha)`.
fn unit_open(rng: &mut StdRng) -> f64 {
    loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_samples_ideal() {
        let p = FaultSpec::none().sample(16, 7);
        assert!(p.is_ideal());
    }

    #[test]
    fn same_seed_same_profile() {
        let spec = FaultSpec::stragglers(2, 1.8)
            .with_jitter(JitterModel::LogNormal { sigma: 0.1 })
            .with_link_degradation(0.2, 0.4)
            .with_outages(1.5, 1e-3, 0.1, 0.1);
        assert_eq!(spec.sample(32, 99), spec.sample(32, 99));
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::stragglers(2, 1.8);
        assert_ne!(spec.sample(32, 1), spec.sample(32, 2));
    }

    #[test]
    fn straggler_count_is_exact() {
        let spec = FaultSpec::stragglers(3, 2.0);
        let p = spec.sample(16, 5);
        let slow = (0..16).filter(|&c| p.compute_slowdown(c) > 1.0).count();
        assert_eq!(slow, 3);
        // More stragglers than chips saturates at the chip count.
        let p = FaultSpec::stragglers(99, 2.0).sample(4, 5);
        assert!((0..4).all(|c| p.compute_slowdown(c) > 1.0));
    }

    #[test]
    fn severity_rescales_the_same_draw() {
        // Same seed, different severities: the same chips straggle, and
        // every chip's slowdown is monotone in the severity.
        let mild = FaultSpec::stragglers(2, 1.2).sample(16, 11);
        let harsh = FaultSpec::stragglers(2, 2.5).sample(16, 11);
        for chip in 0..16 {
            let (a, b) = (mild.compute_slowdown(chip), harsh.compute_slowdown(chip));
            assert_eq!(a > 1.0, b > 1.0, "straggler set changed with severity");
            assert!(b >= a);
        }
    }

    #[test]
    fn jitter_multipliers_are_at_least_one() {
        for (i, jitter) in [
            JitterModel::LogNormal { sigma: 0.3 },
            JitterModel::Pareto {
                alpha: 2.0,
                scale: 0.5,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let p = FaultSpec::none().with_jitter(jitter).sample(64, i as u64);
            for chip in 0..64 {
                assert!(p.compute_slowdown(chip) >= 1.0);
            }
        }
    }

    #[test]
    fn link_degradation_respects_the_floor() {
        let p = FaultSpec::none()
            .with_link_degradation(1.0, 0.6)
            .sample(8, 3);
        for chip in 0..8 {
            for dir in LinkDir::ALL {
                let m = p.base_link_multiplier(chip, dir);
                assert!((0.6..=1.0).contains(&m), "multiplier {m}");
            }
        }
    }

    #[test]
    fn outages_fit_the_horizon_and_do_not_overlap() {
        let spec = FaultSpec::none().with_outages(3.0, 2e-3, 0.1, 0.05);
        let p = spec.sample(8, 17);
        let mut saw_any = false;
        for chip in 0..8 {
            for dir in LinkDir::ALL {
                let mut last_end = f64::NEG_INFINITY;
                for w in p.outages(chip, dir) {
                    saw_any = true;
                    assert!(w.start >= last_end);
                    assert!(w.end <= 0.05 + 1e-12);
                    assert!((w.end - w.start - 2e-3).abs() < 1e-12);
                    last_end = w.end;
                }
            }
        }
        assert!(saw_any, "expected some outages at rate 3 per link");
    }

    #[test]
    fn sample_profiles_uses_consecutive_seeds() {
        let spec = FaultSpec::stragglers(1, 1.5);
        let many = spec.sample_profiles(8, 100, 3);
        assert_eq!(many.len(), 3);
        assert_eq!(many[0], spec.sample(8, 100));
        assert_eq!(many[2], spec.sample(8, 102));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn sub_unity_slowdown_panics() {
        FaultSpec::stragglers(1, 0.5).sample(4, 0);
    }

    #[test]
    fn validate_returns_typed_errors() {
        assert_eq!(FaultSpec::none().validate(), Ok(()));
        assert_eq!(
            FaultSpec::stragglers(1, 0.5).validate(),
            Err(FaultSpecError::StragglerSlowdown(0.5))
        );
        let mut bad = FaultSpec::none();
        bad.outage_floor = 0.0;
        assert_eq!(bad.validate(), Err(FaultSpecError::OutageFloor(0.0)));
        let mut bad = FaultSpec::none();
        bad.outage_duration = -1.0;
        assert!(matches!(
            bad.validate(),
            Err(FaultSpecError::NegativeOutage { .. })
        ));
        let mut bad = FaultSpec::none();
        bad.horizon = 0.0;
        assert_eq!(bad.validate(), Err(FaultSpecError::Horizon(0.0)));
        let err = FaultSpecError::LinkFloor(1.5).to_string();
        assert!(err.contains("must be in (0, 1]"), "{err}");
    }

    #[test]
    fn failure_spec_none_never_fails() {
        let draw = FailureSpec::none().sample(64, 3);
        assert!(draw.is_empty());
        assert_eq!(FailureSpec::none().cluster_mtbf(64), f64::INFINITY);
    }

    #[test]
    fn failure_draws_are_deterministic_and_inside_the_horizon() {
        let spec = FailureSpec::chip_mtbf(50.0, 100.0).with_link_mtbf(200.0);
        let a = spec.sample(16, 9);
        assert_eq!(a, spec.sample(16, 9));
        assert!(!a.is_empty(), "MTBF 50 over 100 s should fail sometimes");
        for f in &a.chip_failures {
            assert!(f.at >= 0.0 && f.at < 100.0, "chip failure at {}", f.at);
        }
        for f in &a.link_failures {
            assert!(f.at >= 0.0 && f.at < 100.0, "link failure at {}", f.at);
        }
        let times = a.event_times();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(times.len(), a.chip_failures.len() + a.link_failures.len());
    }

    #[test]
    fn shorter_mtbf_rescales_the_same_draw() {
        // Parameter-independent draw structure: halving the MTBF halves
        // every arrival time, so the set of failing chips only grows.
        let slow = FailureSpec::chip_mtbf(100.0, 50.0).sample(32, 4);
        let fast = FailureSpec::chip_mtbf(50.0, 50.0).sample(32, 4);
        let slow_chips: Vec<usize> = slow.chip_failures.iter().map(|f| f.chip).collect();
        for chip in &slow_chips {
            assert!(
                fast.chip_failures.iter().any(|f| f.chip == *chip),
                "chip {chip} failed at MTBF 100 but not at MTBF 50"
            );
        }
        assert!(fast.chip_failures.len() >= slow.chip_failures.len());
    }

    #[test]
    fn cluster_mtbf_combines_chip_and_link_rates() {
        let spec = FailureSpec::chip_mtbf(100.0, 1.0).with_link_mtbf(400.0);
        // 16 chips: rate = 16/100 + 32/400 = 0.24 → MTBF 1/0.24.
        let m = spec.cluster_mtbf(16);
        assert!((m - 1.0 / 0.24).abs() < 1e-12, "cluster MTBF {m}");
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn non_positive_mtbf_panics() {
        FailureSpec::chip_mtbf(0.0, 1.0).sample(4, 0);
    }
}
