//! The common interface of distributed GeMM algorithms.

use meshslice_mesh::Torus2d;
use meshslice_sim::Program;
use meshslice_tensor::shard::ShardGrid;

use crate::error::GemmError;
use crate::plan::{Plan, FUNCTIONAL_ELEM_BYTES};
use crate::problem::GemmProblem;

/// A distributed GeMM algorithm: MeshSlice or one of the baselines.
///
/// Implementations provide one lowering — [`DistributedGemm::plan`] —
/// that emits a data-annotated [`Plan`]. Both execution modes derive
/// from it:
///
/// - [`DistributedGemm::execute`] interprets the plan functionally
///   (really moving and multiplying matrix shards, for correctness
///   testing at small scale);
/// - [`DistributedGemm::schedule`] strips the data annotations and hands
///   the lowered [`Program`] to the timing simulator (priced at full LLM
///   scale).
///
/// Because both walk the same lowered op DAG, the schedule the simulator
/// prices is the computation that is verified numerically — the two
/// cannot drift.
///
/// The trait is object-safe so experiment drivers can iterate over
/// `&dyn DistributedGemm` baselines.
pub trait DistributedGemm {
    /// Short human-readable name (e.g. `"MeshSlice"`).
    fn name(&self) -> &str;

    /// Checks whether the algorithm can run this problem on this mesh.
    ///
    /// # Errors
    ///
    /// Returns the same error `plan` would.
    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError>;

    /// Lowers the algorithm to one data-annotated plan.
    ///
    /// `elem_bytes` is the storage size of a matrix element (2 for bf16);
    /// it affects only the op byte counts the simulator prices, never the
    /// data annotations.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the mesh, dataflow, or dimensions are
    /// unsupported.
    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError>;

    /// Checks that `a` and `b` match the shard layout this algorithm
    /// expects for the problem.
    ///
    /// The default is the standard 2D convention (both inputs sharded
    /// over the full mesh); the 1D baselines override it.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::ShardLayout`] describing the first mismatch.
    fn check_layout(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<(), GemmError> {
        check_inputs(mesh, problem, a, b)
    }

    /// Computes the distributed product over per-chip shards by
    /// interpreting the plan.
    ///
    /// `a` and `b` are sharded according to the problem's
    /// [`Dataflow`](crate::Dataflow) storage convention; the result is the
    /// `C` shard grid (`M × N` globally).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the mesh, dataflow, dimensions, or input
    /// shard layouts are unsupported.
    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError> {
        self.check_layout(mesh, problem, a, b)?;
        self.plan(mesh, problem, FUNCTIONAL_ELEM_BYTES)?
            .interpret(a, b)
    }

    /// Builds the timing-simulation task DAG by lowering the plan and
    /// erasing its data annotations.
    ///
    /// `elem_bytes` is the storage size of a matrix element (2 for bf16).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the mesh, dataflow, or dimensions are
    /// unsupported.
    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError> {
        Ok(self.plan(mesh, problem, elem_bytes)?.into_program())
    }
}

/// Checks that `a` and `b` match the problem's standard 2D shard layout
/// on `mesh`.
pub(crate) fn check_inputs(
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<(), GemmError> {
    if a.global_dims() != problem.a_dims() {
        return Err(GemmError::ShardLayout {
            what: format!("A global dims do not match {problem}"),
            found: a.global_dims(),
            expected: problem.a_dims(),
        });
    }
    if b.global_dims() != problem.b_dims() {
        return Err(GemmError::ShardLayout {
            what: format!("B global dims do not match {problem}"),
            found: b.global_dims(),
            expected: problem.b_dims(),
        });
    }
    if (a.mesh_rows(), a.mesh_cols()) != (mesh.rows(), mesh.cols()) {
        return Err(GemmError::ShardLayout {
            what: "A shard grid does not match the mesh".to_string(),
            found: (a.mesh_rows(), a.mesh_cols()),
            expected: (mesh.rows(), mesh.cols()),
        });
    }
    if (b.mesh_rows(), b.mesh_cols()) != (mesh.rows(), mesh.cols()) {
        return Err(GemmError::ShardLayout {
            what: "B shard grid does not match the mesh".to_string(),
            found: (b.mesh_rows(), b.mesh_cols()),
            expected: (mesh.rows(), mesh.cols()),
        });
    }
    Ok(())
}
