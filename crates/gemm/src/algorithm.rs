//! The common interface of distributed GeMM algorithms.

use meshslice_mesh::Torus2d;
use meshslice_sim::Program;
use meshslice_tensor::shard::ShardGrid;

use crate::error::GemmError;
use crate::problem::GemmProblem;

/// A distributed GeMM algorithm: MeshSlice or one of the baselines.
///
/// Implementations provide both a *functional* executor (really moving and
/// multiplying matrix shards, for correctness testing at small scale) and a
/// *schedule builder* (emitting the per-chip task DAG the timing simulator
/// executes at full LLM scale). The two must describe the same algorithm:
/// the integration tests cross-check, for example, that the schedule's
/// total GeMM FLOPs equal the problem's FLOPs.
///
/// The trait is object-safe so experiment drivers can iterate over
/// `&dyn DistributedGemm` baselines.
pub trait DistributedGemm {
    /// Short human-readable name (e.g. `"MeshSlice"`).
    fn name(&self) -> &str;

    /// Checks whether the algorithm can run this problem on this mesh.
    ///
    /// # Errors
    ///
    /// Returns the same error `execute`/`schedule` would.
    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError>;

    /// Computes the distributed product over per-chip shards.
    ///
    /// `a` and `b` are sharded according to the problem's
    /// [`Dataflow`](crate::Dataflow) storage convention; the result is the
    /// `C` shard grid (`M × N` globally).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the mesh, dataflow, or dimensions are
    /// unsupported.
    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError>;

    /// Builds the timing-simulation task DAG for the problem.
    ///
    /// `elem_bytes` is the storage size of a matrix element (2 for bf16).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the mesh, dataflow, or dimensions are
    /// unsupported.
    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError>;
}

/// Asserts that `a` and `b` match the problem's shard layout on `mesh`.
pub(crate) fn check_inputs(mesh: &Torus2d, problem: GemmProblem, a: &ShardGrid, b: &ShardGrid) {
    assert_eq!(
        a.global_dims(),
        problem.a_dims(),
        "A global dims do not match {problem}"
    );
    assert_eq!(
        b.global_dims(),
        problem.b_dims(),
        "B global dims do not match {problem}"
    );
    assert_eq!(
        (a.mesh_rows(), a.mesh_cols()),
        (mesh.rows(), mesh.cols()),
        "A shard grid does not match the mesh"
    );
    assert_eq!(
        (b.mesh_rows(), b.mesh_cols()),
        (mesh.rows(), mesh.cols()),
        "B shard grid does not match the mesh"
    );
}
