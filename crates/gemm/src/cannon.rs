//! Cannon's algorithm (§2.3.2).
//!
//! Cannon skews the input shards, then systolically rotates them with
//! SendRecv exchanges, computing one partial GeMM per rotation. The shifts
//! overlap with computation, but the algorithm only works on square meshes
//! and the initial skew is pure extra traffic — the two inefficiencies the
//! paper highlights.

use meshslice_mesh::{Coord, LinkDir, Torus2d};
use meshslice_sim::OpId;
use meshslice_tensor::GemmShape;

use crate::algorithm::DistributedGemm;
use crate::error::GemmError;
use crate::plan::{DataOp, MatKind, MatmulStep, Plan, TileRead};
use crate::problem::{Dataflow, GemmProblem};

/// Cannon's algorithm. Output-stationary only; square meshes only.
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Cannon, Dataflow, DistributedGemm, GemmProblem};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(3, 3);
/// let problem = GemmProblem::new(GemmShape::new(6, 6, 6), Dataflow::Os);
/// let (a, b) = problem.random_inputs(&mesh, 3);
/// let c = Cannon.execute(&mesh, problem, &a, &b)?;
/// assert!(c.assemble().approx_eq(&problem.reference(&a.assemble(), &b.assemble()), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cannon;

impl DistributedGemm for Cannon {
    fn name(&self) -> &str {
        "Cannon"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        if problem.dataflow != Dataflow::Os {
            return Err(GemmError::UnsupportedDataflow {
                algorithm: "Cannon (output-stationary only)".to_string(),
            });
        }
        if mesh.rows() != mesh.cols() {
            return Err(GemmError::UnsupportedMesh {
                requirement: format!("Cannon requires a square mesh, got {}", mesh.shape()),
            });
        }
        problem.check_divisible(mesh.shape())
    }

    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError> {
        self.check(mesh, problem)?;
        let p = mesh.rows();
        let shape = problem.shape;
        let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
        let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
        let local = GemmShape::new(shape.m / p, shape.n / p, shape.k / p);
        Plan::build(mesh, |pb| {
            let (a_rows, a_cols) = problem.a_shard_dims(mesh.shape());
            let (b_rows, b_cols) = problem.b_shard_dims(mesh.shape());
            let (c_rows, c_cols) = problem.c_shard_dims(mesh.shape());
            let a = pb.input_a(a_rows, a_cols);
            let b = pb.input_b(b_rows, b_cols);
            let c = pb.zeros(c_rows, c_cols);
            for chip in mesh.chips() {
                let coord = mesh.coord_of(chip);
                let (i, j) = (coord.row(), coord.col());
                // The A shard resident on this chip after the skew plus t
                // systolic rotations is A_{i, j+i+t}; likewise B_{i+j+t, j}.
                let a_home = |t: usize| mesh.chip_at(Coord::new(i, (j + i + t) % p));
                let b_home = |t: usize| mesh.chip_at(Coord::new((i + j + t) % p, j));
                // Skew prologue: row i rotates A left i times; column j rotates
                // B up j times. Pure extra traffic before any compute.
                let mut a_prev: Option<OpId> = None;
                for r in 0..i {
                    let deps: Vec<OpId> = a_prev.into_iter().collect();
                    let sr = pb.sim().send_recv(chip, LinkDir::ColMinus, a_bytes, &deps);
                    pb.attach(
                        sr,
                        DataOp::Carries {
                            tile: TileRead::whole(a, mesh.chip_at(Coord::new(i, (j + r + 1) % p))),
                        },
                    );
                    a_prev = Some(sr);
                }
                let mut b_prev: Option<OpId> = None;
                for r in 0..j {
                    let deps: Vec<OpId> = b_prev.into_iter().collect();
                    let sr = pb.sim().send_recv(chip, LinkDir::RowMinus, b_bytes, &deps);
                    pb.attach(
                        sr,
                        DataOp::Carries {
                            tile: TileRead::whole(b, mesh.chip_at(Coord::new((i + r + 1) % p, j))),
                        },
                    );
                    b_prev = Some(sr);
                }
                // Systolic steps: GeMM t uses the shards delivered by shift
                // t − 1 (the skew for t = 0); shift t overlaps with GeMM t.
                for step in 0..p {
                    let mut deps: Vec<OpId> = Vec::new();
                    deps.extend(a_prev);
                    deps.extend(b_prev);
                    let gemm = pb.sim().gemm(chip, local, &deps);
                    pb.attach(
                        gemm,
                        DataOp::Compute {
                            steps: vec![MatmulStep {
                                kind: MatKind::Ab,
                                lhs: TileRead::whole(a, a_home(step)),
                                rhs: TileRead::whole(b, b_home(step)),
                                dst: c,
                                dst_chip: chip,
                                dst_off: (0, 0),
                            }],
                        },
                    );
                    if step + 1 < p {
                        let a_deps: Vec<OpId> = a_prev.into_iter().collect();
                        let sr = pb
                            .sim()
                            .send_recv(chip, LinkDir::ColMinus, a_bytes, &a_deps);
                        pb.attach(
                            sr,
                            DataOp::Carries {
                                tile: TileRead::whole(a, a_home(step + 1)),
                            },
                        );
                        a_prev = Some(sr);
                        let b_deps: Vec<OpId> = b_prev.into_iter().collect();
                        let sr = pb
                            .sim()
                            .send_recv(chip, LinkDir::RowMinus, b_bytes, &b_deps);
                        pb.attach(
                            sr,
                            DataOp::Carries {
                                tile: TileRead::whole(b, b_home(step + 1)),
                            },
                        );
                        b_prev = Some(sr);
                    }
                }
            }
            Ok(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_functional(mesh_dim: usize, shape: (usize, usize, usize)) {
        let mesh = Torus2d::new(mesh_dim, mesh_dim);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), Dataflow::Os);
        let (a, b) = problem.random_inputs(&mesh, 31);
        let c = Cannon.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "P={mesh_dim}: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn two_by_two_matches_dense() {
        check_functional(2, (4, 4, 4));
    }

    #[test]
    fn three_by_three_matches_dense() {
        check_functional(3, (6, 9, 12));
    }

    #[test]
    fn four_by_four_matches_dense() {
        check_functional(4, (8, 8, 8));
    }

    #[test]
    fn rejects_rectangular_meshes() {
        let mesh = Torus2d::new(2, 4);
        let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
        assert!(matches!(
            Cannon.check(&mesh, problem),
            Err(GemmError::UnsupportedMesh { .. })
        ));
    }

    #[test]
    fn rejects_non_os_dataflows() {
        let mesh = Torus2d::new(2, 2);
        for df in [Dataflow::Ls, Dataflow::Rs] {
            let problem = GemmProblem::new(GemmShape::new(8, 8, 8), df);
            assert!(matches!(
                Cannon.check(&mesh, problem),
                Err(GemmError::UnsupportedDataflow { .. })
            ));
        }
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(3, 3);
        let shape = GemmShape::new(12, 12, 12);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let prog = Cannon.schedule(&mesh, problem, 2).unwrap();
        assert_eq!(prog.total_flops(), shape.flops());
    }

    #[test]
    fn schedule_skew_traffic_grows_with_coordinates() {
        // Chip (0,0) needs no skew; chip (P-1, P-1) needs 2(P-1) exchanges.
        let mesh = Torus2d::new(3, 3);
        let problem = GemmProblem::new(GemmShape::new(12, 12, 12), Dataflow::Os);
        let prog = Cannon.schedule(&mesh, problem, 2).unwrap();
        let sends_of = |chip: usize| {
            prog.ops()
                .iter()
                .filter(|op| {
                    op.chip.index() == chip
                        && matches!(op.kind, meshslice_sim::OpKind::SendRecv { .. })
                })
                .count()
        };
        // Chip 0: no skew, 2 shifts per systolic step x (P-1) = 4.
        assert_eq!(sends_of(0), 4);
        // Chip 8 = (2,2): skew 4 + systolic 4 = 8.
        assert_eq!(sends_of(8), 8);
    }
}
