//! Cannon's algorithm (§2.3.2).
//!
//! Cannon skews the input shards, then systolically rotates them with
//! SendRecv exchanges, computing one partial GeMM per rotation. The shifts
//! overlap with computation, but the algorithm only works on square meshes
//! and the initial skew is pure extra traffic — the two inefficiencies the
//! paper highlights.

use meshslice_collectives::{shift, shift_by};
use meshslice_mesh::{CommAxis, LinkDir, Torus2d};
use meshslice_sim::{OpId, Program, ProgramBuilder};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::{GemmShape, Matrix};

use crate::algorithm::{check_inputs, DistributedGemm};
use crate::collective::grid_state;
use crate::error::GemmError;
use crate::problem::{Dataflow, GemmProblem};

/// Cannon's algorithm. Output-stationary only; square meshes only.
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Cannon, Dataflow, DistributedGemm, GemmProblem};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(3, 3);
/// let problem = GemmProblem::new(GemmShape::new(6, 6, 6), Dataflow::Os);
/// let (a, b) = problem.random_inputs(&mesh, 3);
/// let c = Cannon.execute(&mesh, problem, &a, &b)?;
/// assert!(c.assemble().approx_eq(&problem.reference(&a.assemble(), &b.assemble()), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cannon;

impl DistributedGemm for Cannon {
    fn name(&self) -> &str {
        "Cannon"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        if problem.dataflow != Dataflow::Os {
            return Err(GemmError::UnsupportedDataflow {
                algorithm: "Cannon (output-stationary only)".to_string(),
            });
        }
        if mesh.rows() != mesh.cols() {
            return Err(GemmError::UnsupportedMesh {
                requirement: format!("Cannon requires a square mesh, got {}", mesh.shape()),
            });
        }
        problem.check_divisible(mesh.shape())
    }

    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError> {
        self.check(mesh, problem)?;
        check_inputs(mesh, problem, a, b);
        let p = mesh.rows();
        // Skew: chip (i, j) starts with A_{i, j+i} and B_{i+j, j}.
        let mut a_cur = shift_by(
            mesh,
            CommAxis::InterCol,
            |c| (p - c.row % p) % p,
            &grid_state(a),
        );
        let mut b_cur = shift_by(
            mesh,
            CommAxis::InterRow,
            |c| (p - c.col % p) % p,
            &grid_state(b),
        );
        let (cr, cc) = problem.c_shard_dims(mesh.shape());
        let mut c_state: Vec<Matrix> = vec![Matrix::zeros(cr, cc); mesh.num_chips()];
        for step in 0..p {
            for (c, (x, y)) in c_state.iter_mut().zip(a_cur.iter().zip(&b_cur)) {
                dense::matmul_acc(c, x, y);
            }
            if step + 1 < p {
                // Receive-from-the-right: steps = P − 1 pulls the value of
                // ring position j + 1 onto position j.
                a_cur = shift(mesh, CommAxis::InterCol, p - 1, &a_cur);
                b_cur = shift(mesh, CommAxis::InterRow, p - 1, &b_cur);
            }
        }
        Ok(ShardGrid::from_shards(p, p, c_state))
    }

    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError> {
        self.check(mesh, problem)?;
        let p = mesh.rows();
        let shape = problem.shape;
        let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
        let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
        let local = GemmShape::new(shape.m / p, shape.n / p, shape.k / p);
        let mut b = ProgramBuilder::new(mesh);
        for chip in mesh.chips() {
            let coord = mesh.coord_of(chip);
            // Skew prologue: row i rotates A left i times; column j rotates
            // B up j times. Pure extra traffic before any compute.
            let mut a_prev: Option<OpId> = None;
            for _ in 0..coord.row {
                let deps: Vec<OpId> = a_prev.into_iter().collect();
                a_prev = Some(b.send_recv(chip, LinkDir::ColMinus, a_bytes, &deps));
            }
            let mut b_prev: Option<OpId> = None;
            for _ in 0..coord.col {
                let deps: Vec<OpId> = b_prev.into_iter().collect();
                b_prev = Some(b.send_recv(chip, LinkDir::RowMinus, b_bytes, &deps));
            }
            // Systolic steps: GeMM t uses the shards delivered by shift
            // t − 1 (the skew for t = 0); shift t overlaps with GeMM t.
            for step in 0..p {
                let mut deps: Vec<OpId> = Vec::new();
                deps.extend(a_prev);
                deps.extend(b_prev);
                b.gemm(chip, local, &deps);
                if step + 1 < p {
                    let a_deps: Vec<OpId> = a_prev.into_iter().collect();
                    a_prev = Some(b.send_recv(chip, LinkDir::ColMinus, a_bytes, &a_deps));
                    let b_deps: Vec<OpId> = b_prev.into_iter().collect();
                    b_prev = Some(b.send_recv(chip, LinkDir::RowMinus, b_bytes, &b_deps));
                }
            }
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_functional(mesh_dim: usize, shape: (usize, usize, usize)) {
        let mesh = Torus2d::new(mesh_dim, mesh_dim);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), Dataflow::Os);
        let (a, b) = problem.random_inputs(&mesh, 31);
        let c = Cannon.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "P={mesh_dim}: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn two_by_two_matches_dense() {
        check_functional(2, (4, 4, 4));
    }

    #[test]
    fn three_by_three_matches_dense() {
        check_functional(3, (6, 9, 12));
    }

    #[test]
    fn four_by_four_matches_dense() {
        check_functional(4, (8, 8, 8));
    }

    #[test]
    fn rejects_rectangular_meshes() {
        let mesh = Torus2d::new(2, 4);
        let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
        assert!(matches!(
            Cannon.check(&mesh, problem),
            Err(GemmError::UnsupportedMesh { .. })
        ));
    }

    #[test]
    fn rejects_non_os_dataflows() {
        let mesh = Torus2d::new(2, 2);
        for df in [Dataflow::Ls, Dataflow::Rs] {
            let problem = GemmProblem::new(GemmShape::new(8, 8, 8), df);
            assert!(matches!(
                Cannon.check(&mesh, problem),
                Err(GemmError::UnsupportedDataflow { .. })
            ));
        }
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(3, 3);
        let shape = GemmShape::new(12, 12, 12);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let prog = Cannon.schedule(&mesh, problem, 2).unwrap();
        assert_eq!(prog.total_flops(), shape.flops());
    }

    #[test]
    fn schedule_skew_traffic_grows_with_coordinates() {
        // Chip (0,0) needs no skew; chip (P-1, P-1) needs 2(P-1) exchanges.
        let mesh = Torus2d::new(3, 3);
        let problem = GemmProblem::new(GemmShape::new(12, 12, 12), Dataflow::Os);
        let prog = Cannon.schedule(&mesh, problem, 2).unwrap();
        let sends_of = |chip: usize| {
            prog.ops()
                .iter()
                .filter(|op| {
                    op.chip.index() == chip
                        && matches!(op.kind, meshslice_sim::OpKind::SendRecv { .. })
                })
                .count()
        };
        // Chip 0: no skew, 2 shifts per systolic step x (P-1) = 4.
        assert_eq!(sends_of(0), 4);
        // Chip 8 = (2,2): skew 4 + systolic 4 = 8.
        assert_eq!(sends_of(8), 8);
    }
}
