//! Collective 2D GeMM (§2.3.4, Figure 2b).
//!
//! The whole communication of each direction is performed as a single
//! AllGather / ReduceScatter, followed (or preceded) by one local GeMM.
//! This maximizes communication efficiency — the fewest launches and
//! synchronizations of all algorithms — but nothing can be overlapped with
//! computation: there is no loop to software-pipeline.

use meshslice_collectives::{all_gather, reduce_scatter};
use meshslice_mesh::Torus2d;
use meshslice_sim::{CollectiveKind, Program, ProgramBuilder};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::{GemmShape, Matrix};

use crate::algorithm::{check_inputs, DistributedGemm};
use crate::error::GemmError;
use crate::problem::{Dataflow, GemmProblem};

/// The Collective 2D GeMM algorithm.
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Collective, Dataflow, DistributedGemm, GemmProblem};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(2, 2);
/// let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Ls);
/// let (a, b) = problem.random_inputs(&mesh, 1);
/// let c = Collective.execute(&mesh, problem, &a, &b)?;
/// assert_eq!(c.global_dims(), (8, 8));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Collective;

pub(crate) fn grid_state(grid: &ShardGrid) -> Vec<Matrix> {
    grid.iter().map(|(_, s)| s.clone()).collect()
}

impl DistributedGemm for Collective {
    fn name(&self) -> &str {
        "Collective"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        problem.check_divisible(mesh.shape())
    }

    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError> {
        self.check(mesh, problem)?;
        check_inputs(mesh, problem, a, b);
        let a_state = grid_state(a);
        let b_state = grid_state(b);
        let shards = match problem.dataflow {
            Dataflow::Os => {
                // A_i* = AG_col(A_ij); B_*j = AG_row(B_ij); C_ij = A_i* B_*j.
                let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_state);
                let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_state);
                ga.iter()
                    .zip(&gb)
                    .map(|(x, y)| dense::matmul(x, y))
                    .collect()
            }
            Dataflow::Ls => {
                // B_*j = AG_row(B_ij); C'_i* = A_ij (B_*j)ᵀ; C_ij = RdS_col(C').
                let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_state);
                let partial: Vec<Matrix> = a_state
                    .iter()
                    .zip(&gb)
                    .map(|(x, y)| dense::matmul_a_bt(x, y))
                    .collect();
                reduce_scatter(mesh, problem.c_axis().unwrap(), &partial)
            }
            Dataflow::Rs => {
                // A_i* = AG_col(A_ij); C'_*j = (A_i*)ᵀ B_ij; C_ij = RdS_row(C').
                let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_state);
                let partial: Vec<Matrix> = ga
                    .iter()
                    .zip(&b_state)
                    .map(|(x, y)| dense::matmul_at_b(x, y))
                    .collect();
                reduce_scatter(mesh, problem.c_axis().unwrap(), &partial)
            }
        };
        Ok(ShardGrid::from_shards(mesh.rows(), mesh.cols(), shards))
    }

    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError> {
        self.check(mesh, problem)?;
        let shape = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let mut b = ProgramBuilder::new(mesh);
        match problem.dataflow {
            Dataflow::Os => {
                let tag_a = b.next_tag();
                let tag_b = b.next_tag();
                let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
                let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
                let local = GemmShape::new(shape.m / pr, shape.n / pc, shape.k);
                for chip in mesh.chips() {
                    // Bidirectional rings: TPU collectives fully utilize
                    // the ICI links (both directions at once).
                    let ag_a = b.collective(
                        chip,
                        tag_a,
                        CollectiveKind::AllGather,
                        problem.a_axis().unwrap(),
                        a_bytes,
                        2,
                        &[],
                    );
                    let ag_b = b.collective(
                        chip,
                        tag_b,
                        CollectiveKind::AllGather,
                        problem.b_axis().unwrap(),
                        b_bytes,
                        2,
                        &[],
                    );
                    b.gemm(chip, local, &[ag_a, ag_b]);
                }
            }
            Dataflow::Ls => {
                let tag_b = b.next_tag();
                let tag_c = b.next_tag();
                let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
                let c_bytes = problem.c_shard_bytes(mesh.shape(), elem_bytes);
                let local = GemmShape::new(shape.m / pr, shape.n, shape.k / pc);
                for chip in mesh.chips() {
                    let ag_b = b.collective(
                        chip,
                        tag_b,
                        CollectiveKind::AllGather,
                        problem.b_axis().unwrap(),
                        b_bytes,
                        2,
                        &[],
                    );
                    let gemm = b.gemm(chip, local, &[ag_b]);
                    b.collective(
                        chip,
                        tag_c,
                        CollectiveKind::ReduceScatter,
                        problem.c_axis().unwrap(),
                        c_bytes,
                        2,
                        &[gemm],
                    );
                }
            }
            Dataflow::Rs => {
                let tag_a = b.next_tag();
                let tag_c = b.next_tag();
                let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
                let c_bytes = problem.c_shard_bytes(mesh.shape(), elem_bytes);
                let local = GemmShape::new(shape.m, shape.n / pc, shape.k / pr);
                for chip in mesh.chips() {
                    let ag_a = b.collective(
                        chip,
                        tag_a,
                        CollectiveKind::AllGather,
                        problem.a_axis().unwrap(),
                        a_bytes,
                        2,
                        &[],
                    );
                    let gemm = b.gemm(chip, local, &[ag_a]);
                    b.collective(
                        chip,
                        tag_c,
                        CollectiveKind::ReduceScatter,
                        problem.c_axis().unwrap(),
                        c_bytes,
                        2,
                        &[gemm],
                    );
                }
            }
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_functional(df: Dataflow, mesh: (usize, usize), shape: (usize, usize, usize)) {
        let mesh = Torus2d::new(mesh.0, mesh.1);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), df);
        let (a, b) = problem.random_inputs(&mesh, 123);
        let c = Collective.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "{df} mismatch: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn os_matches_dense() {
        check_functional(Dataflow::Os, (2, 3), (4, 6, 12));
    }

    #[test]
    fn ls_matches_dense() {
        check_functional(Dataflow::Ls, (2, 3), (4, 6, 12));
    }

    #[test]
    fn rs_matches_dense() {
        check_functional(Dataflow::Rs, (2, 3), (6, 6, 4));
    }

    #[test]
    fn single_chip_degenerates_to_dense() {
        check_functional(Dataflow::Os, (1, 1), (4, 4, 4));
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(2, 4);
        let shape = GemmShape::new(64, 32, 16);
        for df in Dataflow::ALL {
            let problem = GemmProblem::new(shape, df);
            let prog = Collective.schedule(&mesh, problem, 2).unwrap();
            assert_eq!(prog.total_flops(), shape.flops(), "{df}");
        }
    }

    #[test]
    fn schedule_rejects_indivisible_problems() {
        let mesh = Torus2d::new(3, 3);
        let problem = GemmProblem::new(GemmShape::new(4, 4, 4), Dataflow::Os);
        assert!(Collective.schedule(&mesh, problem, 2).is_err());
    }
}
