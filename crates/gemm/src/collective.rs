//! Collective 2D GeMM (§2.3.4, Figure 2b).
//!
//! The whole communication of each direction is performed as a single
//! AllGather / ReduceScatter, followed (or preceded) by one local GeMM.
//! This maximizes communication efficiency — the fewest launches and
//! synchronizations of all algorithms — but nothing can be overlapped with
//! computation: there is no loop to software-pipeline.

use meshslice_mesh::Torus2d;
use meshslice_sim::CollectiveKind;
#[cfg(test)]
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::GemmShape;
#[cfg(test)]
use meshslice_tensor::Matrix;

use crate::algorithm::DistributedGemm;
use crate::error::GemmError;
use crate::plan::{DataOp, MatKind, MatmulStep, Plan, TileRead};
use crate::problem::{Dataflow, GemmProblem};

/// The Collective 2D GeMM algorithm.
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Collective, Dataflow, DistributedGemm, GemmProblem};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(2, 2);
/// let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Ls);
/// let (a, b) = problem.random_inputs(&mesh, 1);
/// let c = Collective.execute(&mesh, problem, &a, &b)?;
/// assert_eq!(c.global_dims(), (8, 8));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Collective;

#[cfg(test)]
pub(crate) fn grid_state(grid: &ShardGrid) -> Vec<Matrix> {
    grid.iter().map(|(_, s)| s.clone()).collect()
}

impl DistributedGemm for Collective {
    fn name(&self) -> &str {
        "Collective"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        problem.check_divisible(mesh.shape())
    }

    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError> {
        self.check(mesh, problem)?;
        let shape = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        Plan::build(mesh, |pb| {
            let (a_rows, a_cols) = problem.a_shard_dims(mesh.shape());
            let (b_rows, b_cols) = problem.b_shard_dims(mesh.shape());
            let a = pb.input_a(a_rows, a_cols);
            let b = pb.input_b(b_rows, b_cols);
            match problem.dataflow {
                Dataflow::Os => {
                    // A_i* = AG_col(A_ij); B_*j = AG_row(B_ij); C_ij = A_i* B_*j.
                    let ga = pb.gathered(a, problem.a_axis().unwrap());
                    let gb = pb.gathered(b, problem.b_axis().unwrap());
                    let local = GemmShape::new(shape.m / pr, shape.n / pc, shape.k);
                    let c = pb.zeros(local.m, local.n);
                    let ag_a_act = pb.action(DataOp::AllGather {
                        src: a,
                        dst: ga,
                        axis: problem.a_axis().unwrap(),
                    });
                    let ag_b_act = pb.action(DataOp::AllGather {
                        src: b,
                        dst: gb,
                        axis: problem.b_axis().unwrap(),
                    });
                    let tag_a = pb.sim().next_tag();
                    let tag_b = pb.sim().next_tag();
                    let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
                    let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
                    for chip in mesh.chips() {
                        // Bidirectional rings: TPU collectives fully utilize
                        // the ICI links (both directions at once).
                        let ag_a = pb.sim().collective(
                            chip,
                            tag_a,
                            CollectiveKind::AllGather,
                            problem.a_axis().unwrap(),
                            a_bytes,
                            2,
                            &[],
                        );
                        pb.anchor(ag_a_act, ag_a);
                        let ag_b = pb.sim().collective(
                            chip,
                            tag_b,
                            CollectiveKind::AllGather,
                            problem.b_axis().unwrap(),
                            b_bytes,
                            2,
                            &[],
                        );
                        pb.anchor(ag_b_act, ag_b);
                        let g = pb.sim().gemm(chip, local, &[ag_a, ag_b]);
                        pb.attach(
                            g,
                            DataOp::Compute {
                                steps: vec![MatmulStep {
                                    kind: MatKind::Ab,
                                    lhs: TileRead::whole(ga, chip),
                                    rhs: TileRead::whole(gb, chip),
                                    dst: c,
                                    dst_chip: chip,
                                    dst_off: (0, 0),
                                }],
                            },
                        );
                    }
                    Ok(c)
                }
                Dataflow::Ls => {
                    // B_*j = AG_row(B_ij); C'_i* = A_ij (B_*j)ᵀ; C_ij = RdS_col(C').
                    let gb = pb.gathered(b, problem.b_axis().unwrap());
                    let local = GemmShape::new(shape.m / pr, shape.n, shape.k / pc);
                    let partial = pb.zeros(local.m, local.n);
                    let (c_rows, c_cols) = problem.c_shard_dims(mesh.shape());
                    let c = pb.reg(c_rows, c_cols);
                    let ag_act = pb.action(DataOp::AllGather {
                        src: b,
                        dst: gb,
                        axis: problem.b_axis().unwrap(),
                    });
                    let rds_act = pb.action(DataOp::ReduceScatter {
                        src: partial,
                        dst: c,
                        axis: problem.c_axis().unwrap(),
                    });
                    let tag_b = pb.sim().next_tag();
                    let tag_c = pb.sim().next_tag();
                    let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
                    let c_bytes = problem.c_shard_bytes(mesh.shape(), elem_bytes);
                    for chip in mesh.chips() {
                        let ag_b = pb.sim().collective(
                            chip,
                            tag_b,
                            CollectiveKind::AllGather,
                            problem.b_axis().unwrap(),
                            b_bytes,
                            2,
                            &[],
                        );
                        pb.anchor(ag_act, ag_b);
                        let gemm = pb.sim().gemm(chip, local, &[ag_b]);
                        pb.attach(
                            gemm,
                            DataOp::Compute {
                                steps: vec![MatmulStep {
                                    kind: MatKind::Abt,
                                    lhs: TileRead::whole(a, chip),
                                    rhs: TileRead::whole(gb, chip),
                                    dst: partial,
                                    dst_chip: chip,
                                    dst_off: (0, 0),
                                }],
                            },
                        );
                        let rds = pb.sim().collective(
                            chip,
                            tag_c,
                            CollectiveKind::ReduceScatter,
                            problem.c_axis().unwrap(),
                            c_bytes,
                            2,
                            &[gemm],
                        );
                        pb.anchor(rds_act, rds);
                    }
                    Ok(c)
                }
                Dataflow::Rs => {
                    // A_i* = AG_col(A_ij); C'_*j = (A_i*)ᵀ B_ij; C_ij = RdS_row(C').
                    let ga = pb.gathered(a, problem.a_axis().unwrap());
                    let local = GemmShape::new(shape.m, shape.n / pc, shape.k / pr);
                    let partial = pb.zeros(local.m, local.n);
                    let (c_rows, c_cols) = problem.c_shard_dims(mesh.shape());
                    let c = pb.reg(c_rows, c_cols);
                    let ag_act = pb.action(DataOp::AllGather {
                        src: a,
                        dst: ga,
                        axis: problem.a_axis().unwrap(),
                    });
                    let rds_act = pb.action(DataOp::ReduceScatter {
                        src: partial,
                        dst: c,
                        axis: problem.c_axis().unwrap(),
                    });
                    let tag_a = pb.sim().next_tag();
                    let tag_c = pb.sim().next_tag();
                    let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
                    let c_bytes = problem.c_shard_bytes(mesh.shape(), elem_bytes);
                    for chip in mesh.chips() {
                        let ag_a = pb.sim().collective(
                            chip,
                            tag_a,
                            CollectiveKind::AllGather,
                            problem.a_axis().unwrap(),
                            a_bytes,
                            2,
                            &[],
                        );
                        pb.anchor(ag_act, ag_a);
                        let gemm = pb.sim().gemm(chip, local, &[ag_a]);
                        pb.attach(
                            gemm,
                            DataOp::Compute {
                                steps: vec![MatmulStep {
                                    kind: MatKind::Atb,
                                    lhs: TileRead::whole(ga, chip),
                                    rhs: TileRead::whole(b, chip),
                                    dst: partial,
                                    dst_chip: chip,
                                    dst_off: (0, 0),
                                }],
                            },
                        );
                        let rds = pb.sim().collective(
                            chip,
                            tag_c,
                            CollectiveKind::ReduceScatter,
                            problem.c_axis().unwrap(),
                            c_bytes,
                            2,
                            &[gemm],
                        );
                        pb.anchor(rds_act, rds);
                    }
                    Ok(c)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_functional(df: Dataflow, mesh: (usize, usize), shape: (usize, usize, usize)) {
        let mesh = Torus2d::new(mesh.0, mesh.1);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), df);
        let (a, b) = problem.random_inputs(&mesh, 123);
        let c = Collective.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "{df} mismatch: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn os_matches_dense() {
        check_functional(Dataflow::Os, (2, 3), (4, 6, 12));
    }

    #[test]
    fn ls_matches_dense() {
        check_functional(Dataflow::Ls, (2, 3), (4, 6, 12));
    }

    #[test]
    fn rs_matches_dense() {
        check_functional(Dataflow::Rs, (2, 3), (6, 6, 4));
    }

    #[test]
    fn single_chip_degenerates_to_dense() {
        check_functional(Dataflow::Os, (1, 1), (4, 4, 4));
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(2, 4);
        let shape = GemmShape::new(64, 32, 16);
        for df in Dataflow::ALL {
            let problem = GemmProblem::new(shape, df);
            let prog = Collective.schedule(&mesh, problem, 2).unwrap();
            assert_eq!(prog.total_flops(), shape.flops(), "{df}");
        }
    }

    #[test]
    fn schedule_rejects_indivisible_problems() {
        let mesh = Torus2d::new(3, 3);
        let problem = GemmProblem::new(GemmShape::new(4, 4, 4), Dataflow::Os);
        assert!(Collective.schedule(&mesh, problem, 2).is_err());
    }

    #[test]
    fn execute_rejects_mismatched_layout() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
        let (a, b) = problem.random_inputs(&mesh, 7);
        let wrong = GemmProblem::new(GemmShape::new(8, 8, 16), Dataflow::Os);
        let err = Collective.execute(&mesh, wrong, &a, &b).unwrap_err();
        assert!(matches!(err, GemmError::ShardLayout { .. }), "{err}");
    }
}
