//! Error type shared by the distributed GeMM algorithms.

use std::error::Error;
use std::fmt;

use meshslice_mesh::MeshError;
use meshslice_sim::CycleError;

/// Why an algorithm cannot run a given problem on a given mesh.
#[derive(Clone, Debug, PartialEq)]
pub enum GemmError {
    /// A matrix dimension is not divisible as the algorithm requires.
    Indivisible {
        /// Which quantity failed to divide (e.g. `"K/Pc by S*B"`).
        what: String,
        /// The dimension value.
        dim: usize,
        /// The required divisor.
        by: usize,
    },
    /// The mesh shape is unsupported (e.g. Cannon on a non-square mesh).
    UnsupportedMesh {
        /// Human-readable requirement.
        requirement: String,
    },
    /// The dataflow is unsupported by this algorithm.
    UnsupportedDataflow {
        /// The algorithm's name.
        algorithm: String,
    },
    /// An input shard grid does not match the layout the problem expects.
    ShardLayout {
        /// Which input is malformed and how.
        what: String,
        /// The dimensions found, `(rows, cols)`.
        found: (usize, usize),
        /// The dimensions the layout requires, `(rows, cols)`.
        expected: (usize, usize),
    },
    /// A plan's lowered program has a dependency cycle (a plan-IR
    /// construction bug; programs built through [`ProgramBuilder`] cannot
    /// cycle).
    ///
    /// [`ProgramBuilder`]: meshslice_sim::ProgramBuilder
    CyclicProgram(CycleError),
    /// The mesh shape, view, or coordinate itself is invalid.
    Mesh(MeshError),
}

impl fmt::Display for GemmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemmError::Indivisible { what, dim, by } => {
                write!(f, "{what}: {dim} is not divisible by {by}")
            }
            GemmError::UnsupportedMesh { requirement } => {
                write!(f, "unsupported mesh shape: {requirement}")
            }
            GemmError::UnsupportedDataflow { algorithm } => {
                write!(f, "dataflow not supported by {algorithm}")
            }
            GemmError::ShardLayout {
                what,
                found,
                expected,
            } => {
                write!(
                    f,
                    "{what}: found {}x{}, expected {}x{}",
                    found.0, found.1, expected.0, expected.1
                )
            }
            GemmError::CyclicProgram(cycle) => write!(f, "invalid plan: {cycle}"),
            GemmError::Mesh(err) => write!(f, "invalid mesh: {err}"),
        }
    }
}

impl From<MeshError> for GemmError {
    fn from(err: MeshError) -> Self {
        GemmError::Mesh(err)
    }
}

impl From<CycleError> for GemmError {
    fn from(cycle: CycleError) -> Self {
        GemmError::CyclicProgram(cycle)
    }
}

impl Error for GemmError {}

/// Checks divisibility, producing a [`GemmError::Indivisible`] otherwise.
pub(crate) fn ensure_divides(what: &str, dim: usize, by: usize) -> Result<usize, GemmError> {
    if by == 0 || !dim.is_multiple_of(by) {
        Err(GemmError::Indivisible {
            what: what.to_string(),
            dim,
            by,
        })
    } else {
        Ok(dim / by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_divides_ok() {
        assert_eq!(ensure_divides("K by P", 12, 4), Ok(3));
    }

    #[test]
    fn ensure_divides_err_message() {
        let err = ensure_divides("K by P", 10, 4).unwrap_err();
        assert_eq!(err.to_string(), "K by P: 10 is not divisible by 4");
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(ensure_divides("x", 10, 0).is_err());
    }
}
