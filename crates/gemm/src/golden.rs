//! Golden equivalence tests for the unified plan IR.
//!
//! Every algorithm must satisfy two invariants against its pre-refactor
//! implementation (kept verbatim in [`crate::reference`]):
//!
//! 1. **Bit-for-bit schedule**: the plan's lowered
//!    [`Program`](meshslice_sim::Program) equals the old schedule builder's
//!    output — same ops, same order, same tags, same deps — and therefore
//!    produces an identical [`SimReport`](meshslice_sim::SimReport).
//! 2. **Functional match**: interpreting the *same* plan moves real shards
//!    to the same result (up to float summation order) as the old
//!    executor, which in turn matches dense GeMM.

use meshslice_mesh::Torus2d;
use meshslice_sim::{Engine, Program, SimConfig};
use meshslice_tensor::shard::{partition_cols, partition_rows, ShardGrid};
use meshslice_tensor::{GemmShape, Matrix};

use crate::algorithm::DistributedGemm;
use crate::problem::{Dataflow, GemmProblem};
use crate::reference;
use crate::{Cannon, Collective, Fsdp, MeshSlice, OneDimTp, Summa, Wang, WangOverlap};

/// Schedule elem width used throughout the golden comparisons (bf16).
const EB: usize = 2;

/// Asserts both invariants for one `(algorithm, mesh, problem)` cell, given
/// the pre-refactor schedule and executor outputs.
#[allow(clippy::too_many_arguments)]
fn golden(
    algo: &dyn DistributedGemm,
    mesh: &Torus2d,
    problem: GemmProblem,
    seed: u64,
    ref_prog: &Program,
    ref_c: &ShardGrid,
    a: &ShardGrid,
    b: &ShardGrid,
) {
    golden_with_dense(algo, mesh, problem, seed, ref_prog, ref_c, a, b, None);
}

/// Like [`golden`], with an explicit dense expectation for layouts whose
/// shard grid does not `assemble()` into the global C (the 1D baselines).
#[allow(clippy::too_many_arguments)]
fn golden_with_dense(
    algo: &dyn DistributedGemm,
    mesh: &Torus2d,
    problem: GemmProblem,
    seed: u64,
    ref_prog: &Program,
    ref_c: &ShardGrid,
    a: &ShardGrid,
    b: &ShardGrid,
    dense: Option<&Matrix>,
) {
    let plan = algo.plan(mesh, problem, EB).unwrap();
    assert_eq!(
        plan.program(),
        ref_prog,
        "{} {problem}: plan-lowered Program differs from pre-refactor schedule",
        algo.name()
    );
    let engine = Engine::new(mesh.clone(), SimConfig::tpu_v4());
    assert_eq!(
        engine.run(plan.program()),
        engine.run(ref_prog),
        "{} {problem}: SimReport differs",
        algo.name()
    );

    let got = plan.interpret(a, b).unwrap().assemble();
    let want = ref_c.assemble();
    assert!(
        got.approx_eq(&want, 1e-3),
        "{} {problem}: plan interpreter differs from pre-refactor executor, max diff {}",
        algo.name(),
        got.max_abs_diff(&want)
    );
    // The shard grids of the 2D dataflow layouts assemble straight into
    // the global matrices; the 1D baselines pass their dense expectation in
    // (already arranged to match `assemble()`'s stacking).
    let dense = match dense {
        Some(d) => d.clone(),
        None => problem.reference(&a.assemble(), &b.assemble()),
    };
    assert!(
        got.approx_eq(&dense, 1e-3),
        "{} {problem}: plan interpreter differs from dense GeMM, max diff {}",
        algo.name(),
        got.max_abs_diff(&dense)
    );
    let _ = seed;
}

#[test]
fn collective_golden_4x4() {
    let mesh = Torus2d::new(4, 4);
    for df in Dataflow::ALL {
        let problem = GemmProblem::new(GemmShape::new(32, 32, 32), df);
        let (a, b) = problem.random_inputs(&mesh, 101);
        let ref_prog = reference::schedule_collective(&mesh, problem, EB).unwrap();
        let ref_c = reference::execute_collective(&mesh, problem, &a, &b).unwrap();
        golden(&Collective, &mesh, problem, 101, &ref_prog, &ref_c, &a, &b);
    }
}

#[test]
fn meshslice_golden_4x4() {
    let mesh = Torus2d::new(4, 4);
    for df in Dataflow::ALL {
        for slices in [1, 2, 4] {
            let algo = MeshSlice::new(slices, 1);
            let problem = GemmProblem::new(GemmShape::new(32, 32, 32), df);
            let (a, b) = problem.random_inputs(&mesh, 202 + slices as u64);
            let ref_prog = reference::schedule_meshslice(&algo, &mesh, problem, EB).unwrap();
            let ref_c = reference::execute_meshslice(&algo, &mesh, problem, &a, &b).unwrap();
            golden(&algo, &mesh, problem, 202, &ref_prog, &ref_c, &a, &b);
        }
    }
}

#[test]
fn cannon_golden_4x4() {
    let mesh = Torus2d::new(4, 4);
    let problem = GemmProblem::new(GemmShape::new(32, 32, 32), Dataflow::Os);
    let (a, b) = problem.random_inputs(&mesh, 303);
    let ref_prog = reference::schedule_cannon(&mesh, problem, EB).unwrap();
    let ref_c = reference::execute_cannon(&mesh, problem, &a, &b).unwrap();
    golden(&Cannon, &mesh, problem, 303, &ref_prog, &ref_c, &a, &b);
}

#[test]
fn summa_golden_4x4() {
    let mesh = Torus2d::new(4, 4);
    for df in Dataflow::ALL {
        for panels in [4, 8] {
            let algo = Summa::new(panels);
            let problem = GemmProblem::new(GemmShape::new(32, 32, 32), df);
            let (a, b) = problem.random_inputs(&mesh, 404 + panels as u64);
            let ref_prog = reference::schedule_summa(&algo, &mesh, problem, EB).unwrap();
            let ref_c = reference::execute_summa(&algo, &mesh, problem, &a, &b).unwrap();
            golden(&algo, &mesh, problem, 404, &ref_prog, &ref_c, &a, &b);
        }
    }
}

#[test]
fn wang_golden_4x4() {
    let mesh = Torus2d::new(4, 4);
    for df in Dataflow::ALL {
        for overlap in [WangOverlap::InterRow, WangOverlap::InterCol] {
            let algo = Wang::with_overlap(overlap);
            let problem = GemmProblem::new(GemmShape::new(32, 32, 32), df);
            let (a, b) = problem.random_inputs(&mesh, 505);
            let ref_prog = reference::schedule_wang(&algo, &mesh, problem, EB).unwrap();
            let ref_c = reference::execute_wang(&algo, &mesh, problem, &a, &b).unwrap();
            golden(&algo, &mesh, problem, 505, &ref_prog, &ref_c, &a, &b);
        }
    }
}

#[test]
fn wang_unrolled_golden_4x4() {
    let mesh = Torus2d::new(4, 4);
    let algo = Wang::with_overlap(WangOverlap::InterRow).with_unroll(2);
    let problem = GemmProblem::new(GemmShape::new(32, 32, 32), Dataflow::Os);
    let (a, b) = problem.random_inputs(&mesh, 606);
    let ref_prog = reference::schedule_wang(&algo, &mesh, problem, EB).unwrap();
    let ref_c = reference::execute_wang(&algo, &mesh, problem, &a, &b).unwrap();
    golden(&algo, &mesh, problem, 606, &ref_prog, &ref_c, &a, &b);
}

/// Manually sharded inputs for the 1D ring baselines (their layouts are
/// not the 2D dataflow layouts `random_inputs` produces). Returns the
/// globals alongside the shard grids.
fn one_d_inputs(
    n: usize,
    dim: usize,
    seed: u64,
    col_sharded_b: bool,
) -> (Matrix, Matrix, ShardGrid, ShardGrid) {
    let a_global = Matrix::random(dim, dim, seed);
    let b_global = Matrix::random(dim, dim, seed.wrapping_add(9));
    let a = ShardGrid::from_shards(n, 1, partition_rows(&a_global, n));
    let b = if col_sharded_b {
        ShardGrid::from_shards(n, 1, partition_cols(&b_global, n))
    } else {
        ShardGrid::from_shards(n, 1, partition_rows(&b_global, n))
    };
    (a_global, b_global, a, b)
}

/// 1D TP's C grid stacks each chip's full-`M` column panel vertically, so
/// the matching dense expectation is the column panels of `A·B` restacked
/// the same way.
fn tp_stacked_dense(a_global: &Matrix, b_global: &Matrix, n: usize) -> Matrix {
    let expect = meshslice_tensor::gemm::matmul(a_global, b_global);
    let (m, nn) = (expect.rows(), expect.cols());
    let mut stacked = Matrix::zeros(n * m, nn / n);
    for i in 0..n {
        stacked.add_block(i * m, 0, &expect.block(0, i * (nn / n), m, nn / n));
    }
    stacked
}

#[test]
fn one_dim_tp_golden_8x1() {
    let mesh = Torus2d::new(8, 1);
    let problem = GemmProblem::new(GemmShape::new(64, 64, 64), Dataflow::Os);
    let (a_global, b_global, a, b) = one_d_inputs(8, 64, 707, true);
    let dense = tp_stacked_dense(&a_global, &b_global, 8);
    for algo in [OneDimTp::new(), OneDimTp::with_unroll(4)] {
        let ref_prog = reference::schedule_one_dim_tp(&algo, &mesh, problem, EB).unwrap();
        let ref_c = reference::execute_one_dim_tp(&mesh, problem, &a, &b).unwrap();
        golden_with_dense(
            &algo,
            &mesh,
            problem,
            707,
            &ref_prog,
            &ref_c,
            &a,
            &b,
            Some(&dense),
        );
    }
}

#[test]
fn fsdp_golden_8x1() {
    let mesh = Torus2d::new(8, 1);
    let problem = GemmProblem::new(GemmShape::new(64, 64, 64), Dataflow::Os);
    let (a_global, b_global, a, b) = one_d_inputs(8, 64, 808, false);
    let dense = meshslice_tensor::gemm::matmul(&a_global, &b_global);
    for algo in [Fsdp::new(), Fsdp::with_unroll(2)] {
        let ref_prog = reference::schedule_fsdp(&algo, &mesh, problem, EB).unwrap();
        let ref_c = reference::execute_fsdp(&mesh, problem, &a, &b).unwrap();
        golden_with_dense(
            &algo,
            &mesh,
            problem,
            808,
            &ref_prog,
            &ref_c,
            &a,
            &b,
            Some(&dense),
        );
    }
}

mod differential {
    use super::*;
    use proptest::prelude::*;

    fn dataflow() -> impl Strategy<Value = Dataflow> {
        prop_oneof![Just(Dataflow::Os), Just(Dataflow::Ls), Just(Dataflow::Rs)]
    }

    /// Interprets `algo`'s plan and compares against a pre-refactor
    /// executor result and dense GeMM.
    fn diff(
        algo: &dyn DistributedGemm,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
        ref_c: &ShardGrid,
        dense: Option<&Matrix>,
    ) -> Result<(), TestCaseError> {
        let got = algo
            .execute(mesh, problem, a, b)
            .unwrap_or_else(|e| panic!("{} failed on {problem}: {e}", algo.name()))
            .assemble();
        let want = ref_c.assemble();
        prop_assert!(
            got.approx_eq(&want, 1e-3),
            "{} {problem}: interpreter vs pre-refactor executor, max diff {}",
            algo.name(),
            got.max_abs_diff(&want)
        );
        let dense = match dense {
            Some(d) => d.clone(),
            None => problem.reference(&a.assemble(), &b.assemble()),
        };
        prop_assert!(
            got.approx_eq(&dense, 1e-3),
            "{} {problem}: interpreter vs dense, max diff {}",
            algo.name(),
            got.max_abs_diff(&dense)
        );
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The 2D algorithms, over random meshes, dataflows, and slice
        /// counts: plan interpreter == pre-refactor executor == dense.
        #[test]
        fn two_d_algorithms_match_reference_and_dense(
            pr in 1usize..4, pc in 1usize..4,
            slices in 1usize..4,
            df in dataflow(), seed in any::<u64>(),
        ) {
            let mesh = Torus2d::new(pr, pc);
            // Multiples of pr*pc*slices keep every sharding and slicing
            // constraint satisfiable across all algorithms.
            let unit = pr * pc * slices;
            let shape = GemmShape::new(unit * 2, unit * 2, unit * 2);
            let problem = GemmProblem::new(shape, df);
            let (a, b) = problem.random_inputs(&mesh, seed);

            let ms = MeshSlice::new(slices, 1);
            diff(&ms, &mesh, problem,
                 &a, &b, &reference::execute_meshslice(&ms, &mesh, problem, &a, &b).unwrap(), None)?;
            diff(&Collective, &mesh, problem,
                 &a, &b, &reference::execute_collective(&mesh, problem, &a, &b).unwrap(), None)?;
            let su = Summa::auto(&mesh);
            diff(&su, &mesh, problem,
                 &a, &b, &reference::execute_summa(&su, &mesh, problem, &a, &b).unwrap(), None)?;
            let wa = Wang::new();
            diff(&wa, &mesh, problem,
                 &a, &b, &reference::execute_wang(&wa, &mesh, problem, &a, &b).unwrap(), None)?;
            if pr == pc && df == Dataflow::Os {
                diff(&Cannon, &mesh, problem,
                     &a, &b, &reference::execute_cannon(&mesh, problem, &a, &b).unwrap(), None)?;
            }
        }

        /// The 1D ring baselines on `n × 1` meshes.
        #[test]
        fn one_d_baselines_match_reference_and_dense(
            n in 1usize..6, scale in 1usize..3, unroll in 1usize..4, seed in any::<u64>(),
        ) {
            let mesh = Torus2d::new(n, 1);
            let dim = n * scale * 12;
            let problem = GemmProblem::new(GemmShape::new(dim, dim, dim), Dataflow::Os);

            let (a_global, b_global, a, b) = one_d_inputs(n, dim, seed, true);
            let tp_dense = tp_stacked_dense(&a_global, &b_global, n);
            diff(&OneDimTp::with_unroll(unroll), &mesh, problem,
                 &a, &b, &reference::execute_one_dim_tp(&mesh, problem, &a, &b).unwrap(),
                 Some(&tp_dense))?;

            let (a_global, b_global, a, b) = one_d_inputs(n, dim, seed, false);
            let fsdp_dense = meshslice_tensor::gemm::matmul(&a_global, &b_global);
            diff(&Fsdp::with_unroll(unroll), &mesh, problem,
                 &a, &b, &reference::execute_fsdp(&mesh, problem, &a, &b).unwrap(),
                 Some(&fsdp_dense))?;
        }
    }
}
