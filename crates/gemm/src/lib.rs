//! Distributed GeMM algorithms for 2D tensor parallelism.
//!
//! This crate implements the paper's five 2D GeMM algorithms and two 1D
//! baselines. Each algorithm lowers to **one** data-annotated [`Plan`]
//! from which both execution modes are derived:
//!
//! 1. **functional**: [`Plan::interpret`] walks the plan's data actions
//!    in dependency order, really computing the distributed product over
//!    per-chip matrix shards (via `meshslice-collectives`), verified
//!    numerically against dense GeMM, and
//! 2. **timing**: [`Plan::program`] is the algorithm's per-chip task DAG
//!    (a [`Program`](meshslice_sim::Program)) with the data annotations
//!    erased, fed to the timing simulator at full LLM scale.
//!
//! Because both modes consume the same lowered plan, the schedule the
//! simulator prices cannot drift from the computation that is
//! numerically verified.
//!
//! | Algorithm | Paper section | Overlap | Mesh shapes | Dataflows |
//! |---|---|---|---|---|
//! | [`MeshSlice`] | §3.1 | both directions | any | OS, LS, RS |
//! | [`Collective`] | §2.3.4 | none | any | OS, LS, RS |
//! | [`Summa`] | §2.3.3 | both (fine-grain bcast) | any | OS, LS, RS |
//! | [`Cannon`] | §2.3.2 | both (SendRecv) | square only | OS |
//! | [`Wang`] | §2.3.4 | one direction | any | OS, LS, RS |
//! | [`OneDimTp`] | §4.3 | one direction | ring | OS |
//! | [`Fsdp`] | §4.3 | one direction | ring | OS |
//! | [`TwoFiveD`] | §7 | both (Cannon per layer) | square × depth | OS |
//!
//! # Example
//!
//! ```
//! use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, MeshSlice};
//! use meshslice_mesh::Torus2d;
//! use meshslice_tensor::GemmShape;
//!
//! # fn main() -> Result<(), meshslice_gemm::GemmError> {
//! let mesh = Torus2d::new(2, 2);
//! let problem = GemmProblem::new(GemmShape::new(16, 16, 16), Dataflow::Os);
//! let algo = MeshSlice::new(2, 2); // S = 2 sub-shards, block B = 2
//!
//! // Functional: compute C = A·B distributed over 4 chips and check it.
//! let (a, b) = problem.random_inputs(&mesh, 42);
//! let c = algo.execute(&mesh, problem, &a, &b)?;
//! let expect = problem.reference(&a.assemble(), &b.assemble());
//! assert!(c.assemble().approx_eq(&expect, 1e-4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod cannon;
mod collective;
mod error;
#[cfg(test)]
mod golden;
mod meshslice_algo;
mod one_d;
mod plan;
mod problem;
#[cfg(test)]
mod reference;
mod summa;
mod two_five_d;
mod wang;

pub use algorithm::DistributedGemm;
pub use cannon::Cannon;
pub use collective::Collective;
pub use error::GemmError;
pub use meshslice_algo::MeshSlice;
pub use one_d::{Fsdp, OneDimTp};
pub use plan::{
    ActionId, DataOp, MatKind, MatmulStep, Plan, PlanAction, PlanBuilder, Reg, Region, TileRead,
    FUNCTIONAL_ELEM_BYTES,
};
pub use problem::{Dataflow, GemmProblem};
pub use summa::Summa;
pub use two_five_d::TwoFiveD;
pub use wang::{Wang, WangOverlap};
