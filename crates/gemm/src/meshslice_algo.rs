//! The MeshSlice 2D GeMM algorithm (§3.1, Figure 5).
//!
//! MeshSlice slices every moving matrix shard into `S` blocked sub-shards
//! (Algorithm 2) and runs `S` loop iterations, each performing *partial*
//! AllGather / ReduceScatter collectives and a partial GeMM. Software
//! pipelining overlaps the collectives of one iteration with the GeMM of
//! another — in **both** mesh directions, which no prior algorithm achieves
//! (Cannon needs square meshes, SUMMA pays fine-grain synchronization,
//! Collective cannot overlap at all, and Wang overlaps one direction only).

use meshslice_mesh::Torus2d;
use meshslice_sim::{CollectiveKind, OpId, ProgramBuilder};
use meshslice_tensor::slice::SliceSpec;
use meshslice_tensor::GemmShape;

use crate::algorithm::DistributedGemm;
use crate::error::{ensure_divides, GemmError};
use crate::plan::{DataOp, MatKind, MatmulStep, Plan, PlanBuilder, Reg, TileRead};
use crate::problem::{Dataflow, GemmProblem};

/// The MeshSlice algorithm with slice count `S` and block size `B`.
///
/// `S` controls communication granularity: larger values shrink the
/// non-overlapped prologue/epilogue but add per-iteration launch and
/// synchronization overhead (§3.1). `B` is the architecture's efficient
/// memory-access block (8 for TPUs, which read 128×8 chunks).
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, MeshSlice};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(2, 2);
/// let problem = GemmProblem::new(GemmShape::new(8, 8, 16), Dataflow::Os);
/// let algo = MeshSlice::new(2, 2);
/// let (a, b) = problem.random_inputs(&mesh, 0);
/// let c = algo.execute(&mesh, problem, &a, &b)?;
/// assert!(c.assemble().approx_eq(&problem.reference(&a.assemble(), &b.assemble()), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshSlice {
    slice_count: usize,
    block: usize,
}

impl MeshSlice {
    /// Creates a MeshSlice instance with `S = slice_count` and block `B`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(slice_count: usize, block: usize) -> Self {
        assert!(slice_count > 0, "slice count must be positive");
        assert!(block > 0, "block size must be positive");
        MeshSlice { slice_count, block }
    }

    /// Creates an instance with the TPU block size (`B = 8`).
    pub fn with_tpu_block(slice_count: usize) -> Self {
        MeshSlice::new(slice_count, 8)
    }

    /// The slice count `S`.
    pub fn slice_count(&self) -> usize {
        self.slice_count
    }

    /// The block size `B`.
    pub fn block(&self) -> usize {
        self.block
    }

    pub(crate) fn spec(&self) -> SliceSpec {
        SliceSpec::new(self.slice_count, self.block)
    }

    /// The two local extents the slicing applies to, per dataflow:
    /// OS slices `K` on both inputs, LS slices `N`, RS slices `M`.
    fn sliced_extents(&self, mesh: &Torus2d, problem: GemmProblem) -> [(String, usize); 2] {
        let GemmShape { m, n, k } = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        match problem.dataflow {
            Dataflow::Os => [
                ("K/Pc (A sub-shard)".into(), k / pc),
                ("K/Pr (B sub-shard)".into(), k / pr),
            ],
            Dataflow::Ls => [
                ("N/Pr (B sub-shard)".into(), n / pr),
                ("N/Pc (C sub-shard)".into(), n / pc),
            ],
            Dataflow::Rs => [
                ("M/Pc (A sub-shard)".into(), m / pc),
                ("M/Pr (C sub-shard)".into(), m / pr),
            ],
        }
    }
}

impl Default for MeshSlice {
    /// `S = 1`, `B = 8`: degenerates to the Collective algorithm.
    fn default() -> Self {
        MeshSlice::with_tpu_block(1)
    }
}

impl DistributedGemm for MeshSlice {
    fn name(&self) -> &str {
        "MeshSlice"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        problem.check_divisible(mesh.shape())?;
        let unit = self.slice_count * self.block;
        for (what, extent) in self.sliced_extents(mesh, problem) {
            ensure_divides(&format!("{what} by S*B"), extent, unit)?;
        }
        Ok(())
    }

    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError> {
        Plan::build(mesh, |pb| {
            self.plan_chained(pb, problem, elem_bytes, &[], &[])
                .map(|(_, c)| c)
        })
    }
}

impl MeshSlice {
    /// Appends this pass's schedule into an existing builder, returning
    /// the last partial-GeMM op of every chip.
    ///
    /// `prev_gemms` (empty, or one entry per chip) are compute-order
    /// predecessors: every GeMM of this pass runs after them, modeling the
    /// data flow between consecutive training passes. `prefetch_after`
    /// (empty, or one entry per chip) bounds how early this pass's slicing
    /// and communication may start — pass `p − 2`'s GeMMs for classic
    /// double buffering, so pass `p`'s communication overlaps pass
    /// `p − 1`'s compute without crowding earlier passes. This is the
    /// building block of fused multi-pass schedules (see the
    /// `ext_fused_pipeline` ablation).
    ///
    /// The data annotations produced along the way are discarded: a fused
    /// schedule's inputs flow between passes, which the plan IR does not
    /// model (each plan describes one stand-alone GeMM).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the mesh, dataflow, or dimensions are
    /// unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `prev_gemms` or `prefetch_after` is neither empty nor one
    /// entry per chip.
    pub fn schedule_chained(
        &self,
        b: &mut ProgramBuilder,
        problem: GemmProblem,
        elem_bytes: usize,
        prev_gemms: &[OpId],
        prefetch_after: &[OpId],
    ) -> Result<Vec<OpId>, GemmError> {
        let mut pb = PlanBuilder::new(b);
        let (gemms, _) =
            self.plan_chained(&mut pb, problem, elem_bytes, prev_gemms, prefetch_after)?;
        Ok(gemms)
    }

    /// Emits this pass's ops and data annotations into `pb`, returning the
    /// last partial-GeMM op of every chip and the result register.
    pub(crate) fn plan_chained(
        &self,
        pb: &mut PlanBuilder,
        problem: GemmProblem,
        elem_bytes: usize,
        prev_gemms: &[OpId],
        prefetch_after: &[OpId],
    ) -> Result<(Vec<OpId>, Reg), GemmError> {
        let mesh = pb.mesh().clone();
        let mesh = &mesh;
        self.check(mesh, problem)?;
        assert!(
            prev_gemms.is_empty() || prev_gemms.len() == mesh.num_chips(),
            "prev_gemms must be empty or one op per chip"
        );
        assert!(
            prefetch_after.is_empty() || prefetch_after.len() == mesh.num_chips(),
            "prefetch_after must be empty or one op per chip"
        );
        let prefetch_dep = |chip: meshslice_mesh::ChipId| -> Vec<OpId> {
            prefetch_after
                .get(chip.index())
                .copied()
                .into_iter()
                .collect()
        };
        let spec = self.spec();
        let s_count = self.slice_count as u64;
        let shape = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let mesh_shape = mesh.shape();
        let a_sub = problem.a_shard_bytes(mesh_shape, elem_bytes) / s_count;
        let b_sub = problem.b_shard_bytes(mesh_shape, elem_bytes) / s_count;
        let c_sub = problem.c_shard_bytes(mesh_shape, elem_bytes) / s_count;
        // With S = 1 the algorithm *is* Collective: real implementations
        // skip the identity slicing, and so does the schedule.
        let slicing = self.slice_count > 1;
        // Per-chip compute-order chain, seeded with the previous pass.
        let mut last_gemm: Vec<Option<OpId>> = if prev_gemms.is_empty() {
            vec![None; mesh.num_chips()]
        } else {
            prev_gemms.iter().copied().map(Some).collect()
        };

        let (a_rows, a_cols) = problem.a_shard_dims(mesh_shape);
        let (b_rows, b_cols) = problem.b_shard_dims(mesh_shape);
        let (c_rows, c_cols) = problem.c_shard_dims(mesh_shape);
        let a = pb.input_a(a_rows, a_cols);
        let b = pb.input_b(b_rows, b_cols);
        // OS accumulates partial products into C; LS/RS scatter each
        // slice's columns/rows into a zero-initialized C (or, with S = 1,
        // one ReduceScatter writes the whole shard).
        let c = if problem.dataflow == Dataflow::Os || slicing {
            pb.zeros(c_rows, c_cols)
        } else {
            pb.reg(c_rows, c_cols)
        };

        for s in 0..self.slice_count {
            match problem.dataflow {
                Dataflow::Os => {
                    let tag_a = pb.sim().next_tag();
                    let tag_b = pb.sim().next_tag();
                    let local =
                        GemmShape::new(shape.m / pr, shape.n / pc, shape.k / self.slice_count);
                    let a_src = if slicing {
                        pb.reg(a_rows, a_cols / self.slice_count)
                    } else {
                        a
                    };
                    let b_src = if slicing {
                        pb.reg(b_rows / self.slice_count, b_cols)
                    } else {
                        b
                    };
                    let ga = pb.gathered(a_src, problem.a_axis().unwrap());
                    let gb = pb.gathered(b_src, problem.b_axis().unwrap());
                    let ag_a_act = pb.action(DataOp::AllGather {
                        src: a_src,
                        dst: ga,
                        axis: problem.a_axis().unwrap(),
                    });
                    let ag_b_act = pb.action(DataOp::AllGather {
                        src: b_src,
                        dst: gb,
                        axis: problem.b_axis().unwrap(),
                    });
                    for chip in mesh.chips() {
                        let a_deps = if slicing {
                            let sc = pb.sim().slice_copy(chip, a_sub, &prefetch_dep(chip));
                            pb.attach(
                                sc,
                                DataOp::SliceCols {
                                    chip,
                                    src: a,
                                    dst: a_src,
                                    spec,
                                    index: s,
                                },
                            );
                            vec![sc]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_a = pb.sim().collective(
                            chip,
                            tag_a,
                            CollectiveKind::AllGather,
                            problem.a_axis().unwrap(),
                            a_sub,
                            2,
                            &a_deps,
                        );
                        pb.anchor(ag_a_act, ag_a);
                        let b_deps = if slicing {
                            let sc = pb.sim().slice_copy(chip, b_sub, &prefetch_dep(chip));
                            pb.attach(
                                sc,
                                DataOp::SliceRows {
                                    chip,
                                    src: b,
                                    dst: b_src,
                                    spec,
                                    index: s,
                                },
                            );
                            vec![sc]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_b = pb.sim().collective(
                            chip,
                            tag_b,
                            CollectiveKind::AllGather,
                            problem.b_axis().unwrap(),
                            b_sub,
                            2,
                            &b_deps,
                        );
                        pb.anchor(ag_b_act, ag_b);
                        let mut gemm_deps = vec![ag_a, ag_b];
                        gemm_deps.extend(last_gemm[chip.index()]);
                        let gemm = pb.sim().gemm(chip, local, &gemm_deps);
                        pb.attach(
                            gemm,
                            DataOp::Compute {
                                steps: vec![MatmulStep {
                                    kind: MatKind::Ab,
                                    lhs: TileRead::whole(ga, chip),
                                    rhs: TileRead::whole(gb, chip),
                                    dst: c,
                                    dst_chip: chip,
                                    dst_off: (0, 0),
                                }],
                            },
                        );
                        last_gemm[chip.index()] = Some(gemm);
                    }
                }
                Dataflow::Ls => {
                    let tag_b = pb.sim().next_tag();
                    let tag_c = pb.sim().next_tag();
                    let local =
                        GemmShape::new(shape.m / pr, shape.n / self.slice_count, shape.k / pc);
                    let b_src = if slicing {
                        pb.reg(b_rows / self.slice_count, b_cols)
                    } else {
                        b
                    };
                    let gb = pb.gathered(b_src, problem.b_axis().unwrap());
                    let partial = pb.zeros(local.m, local.n);
                    let scattered = if slicing {
                        pb.reg(c_rows, c_cols / self.slice_count)
                    } else {
                        c
                    };
                    let ag_act = pb.action(DataOp::AllGather {
                        src: b_src,
                        dst: gb,
                        axis: problem.b_axis().unwrap(),
                    });
                    let rds_act = pb.action(DataOp::ReduceScatter {
                        src: partial,
                        dst: scattered,
                        axis: problem.c_axis().unwrap(),
                    });
                    for chip in mesh.chips() {
                        let b_deps = if slicing {
                            let sc = pb.sim().slice_copy(chip, b_sub, &prefetch_dep(chip));
                            pb.attach(
                                sc,
                                DataOp::SliceRows {
                                    chip,
                                    src: b,
                                    dst: b_src,
                                    spec,
                                    index: s,
                                },
                            );
                            vec![sc]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_b = pb.sim().collective(
                            chip,
                            tag_b,
                            CollectiveKind::AllGather,
                            problem.b_axis().unwrap(),
                            b_sub,
                            2,
                            &b_deps,
                        );
                        pb.anchor(ag_act, ag_b);
                        let mut gemm_deps = vec![ag_b];
                        gemm_deps.extend(last_gemm[chip.index()]);
                        let gemm = pb.sim().gemm(chip, local, &gemm_deps);
                        pb.attach(
                            gemm,
                            DataOp::Compute {
                                steps: vec![MatmulStep {
                                    kind: MatKind::Abt,
                                    lhs: TileRead::whole(a, chip),
                                    rhs: TileRead::whole(gb, chip),
                                    dst: partial,
                                    dst_chip: chip,
                                    dst_off: (0, 0),
                                }],
                            },
                        );
                        last_gemm[chip.index()] = Some(gemm);
                        let rds = pb.sim().collective(
                            chip,
                            tag_c,
                            CollectiveKind::ReduceScatter,
                            problem.c_axis().unwrap(),
                            c_sub,
                            2,
                            &[gemm],
                        );
                        pb.anchor(rds_act, rds);
                        if slicing {
                            let sc = pb.sim().slice_copy(chip, c_sub, &[rds]);
                            pb.attach(
                                sc,
                                DataOp::UnsliceCols {
                                    chip,
                                    src: scattered,
                                    dst: c,
                                    spec,
                                    index: s,
                                },
                            );
                        }
                    }
                }
                Dataflow::Rs => {
                    let tag_a = pb.sim().next_tag();
                    let tag_c = pb.sim().next_tag();
                    let local =
                        GemmShape::new(shape.m / self.slice_count, shape.n / pc, shape.k / pr);
                    let a_src = if slicing {
                        pb.reg(a_rows, a_cols / self.slice_count)
                    } else {
                        a
                    };
                    let ga = pb.gathered(a_src, problem.a_axis().unwrap());
                    let partial = pb.zeros(local.m, local.n);
                    let scattered = if slicing {
                        pb.reg(c_rows / self.slice_count, c_cols)
                    } else {
                        c
                    };
                    let ag_act = pb.action(DataOp::AllGather {
                        src: a_src,
                        dst: ga,
                        axis: problem.a_axis().unwrap(),
                    });
                    let rds_act = pb.action(DataOp::ReduceScatter {
                        src: partial,
                        dst: scattered,
                        axis: problem.c_axis().unwrap(),
                    });
                    for chip in mesh.chips() {
                        let a_deps = if slicing {
                            let sc = pb.sim().slice_copy(chip, a_sub, &prefetch_dep(chip));
                            pb.attach(
                                sc,
                                DataOp::SliceCols {
                                    chip,
                                    src: a,
                                    dst: a_src,
                                    spec,
                                    index: s,
                                },
                            );
                            vec![sc]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_a = pb.sim().collective(
                            chip,
                            tag_a,
                            CollectiveKind::AllGather,
                            problem.a_axis().unwrap(),
                            a_sub,
                            2,
                            &a_deps,
                        );
                        pb.anchor(ag_act, ag_a);
                        let mut gemm_deps = vec![ag_a];
                        gemm_deps.extend(last_gemm[chip.index()]);
                        let gemm = pb.sim().gemm(chip, local, &gemm_deps);
                        pb.attach(
                            gemm,
                            DataOp::Compute {
                                steps: vec![MatmulStep {
                                    kind: MatKind::Atb,
                                    lhs: TileRead::whole(ga, chip),
                                    rhs: TileRead::whole(b, chip),
                                    dst: partial,
                                    dst_chip: chip,
                                    dst_off: (0, 0),
                                }],
                            },
                        );
                        last_gemm[chip.index()] = Some(gemm);
                        let rds = pb.sim().collective(
                            chip,
                            tag_c,
                            CollectiveKind::ReduceScatter,
                            problem.c_axis().unwrap(),
                            c_sub,
                            2,
                            &[gemm],
                        );
                        pb.anchor(rds_act, rds);
                        if slicing {
                            let sc = pb.sim().slice_copy(chip, c_sub, &[rds]);
                            pb.attach(
                                sc,
                                DataOp::UnsliceRows {
                                    chip,
                                    src: scattered,
                                    dst: c,
                                    spec,
                                    index: s,
                                },
                            );
                        }
                    }
                }
            }
        }
        let gemms = last_gemm
            .into_iter()
            .map(|g| g.expect("every chip computed at least one partial GeMM"))
            .collect();
        Ok((gemms, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_tensor::GemmShape;

    fn check_functional(
        df: Dataflow,
        mesh: (usize, usize),
        shape: (usize, usize, usize),
        s: usize,
        block: usize,
    ) {
        let mesh = Torus2d::new(mesh.0, mesh.1);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), df);
        let algo = MeshSlice::new(s, block);
        let (a, b) = problem.random_inputs(&mesh, 99);
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "{df} S={s} B={block}: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn os_matches_dense() {
        // K/Pc = 24/3 = 8, K/Pr = 24/2 = 12... both must divide by S*B = 4.
        check_functional(Dataflow::Os, (2, 3), (4, 6, 24), 2, 2);
    }

    #[test]
    fn ls_matches_dense() {
        // N/Pr = 24/2 = 12, N/Pc = 24/3 = 8; S*B = 4 divides both.
        check_functional(Dataflow::Ls, (2, 3), (4, 24, 6), 2, 2);
    }

    #[test]
    fn rs_matches_dense() {
        check_functional(Dataflow::Rs, (2, 3), (24, 6, 4), 2, 2);
    }

    #[test]
    fn slice_count_one_equals_collective() {
        check_functional(Dataflow::Os, (2, 2), (4, 4, 8), 1, 2);
    }

    #[test]
    fn deep_slicing_still_correct() {
        check_functional(Dataflow::Os, (2, 2), (4, 4, 32), 8, 2);
    }

    #[test]
    fn rejects_unsliceable_k() {
        let mesh = Torus2d::new(2, 2);
        // K/Pc = 6 is not divisible by S*B = 4.
        let problem = GemmProblem::new(GemmShape::new(4, 4, 12), Dataflow::Os);
        let err = MeshSlice::new(2, 2).check(&mesh, problem).unwrap_err();
        assert!(matches!(err, GemmError::Indivisible { .. }));
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(2, 4);
        let shape = GemmShape::new(64, 64, 64);
        for df in Dataflow::ALL {
            let problem = GemmProblem::new(shape, df);
            let prog = MeshSlice::new(4, 2).schedule(&mesh, problem, 2).unwrap();
            assert_eq!(prog.total_flops(), shape.flops(), "{df}");
        }
    }

    #[test]
    fn schedule_with_s1_has_no_slice_ops() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(32, 32, 32), Dataflow::Os);
        let prog = MeshSlice::new(1, 8).schedule(&mesh, problem, 2).unwrap();
        let has_slice = prog
            .ops()
            .iter()
            .any(|op| matches!(op.kind, meshslice_sim::OpKind::SliceCopy { .. }));
        assert!(!has_slice);
    }

    #[test]
    fn schedule_op_count_scales_with_s() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(64, 64, 64), Dataflow::Os);
        let p2 = MeshSlice::new(2, 2).schedule(&mesh, problem, 2).unwrap();
        let p4 = MeshSlice::new(4, 2).schedule(&mesh, problem, 2).unwrap();
        assert_eq!(p4.len(), 2 * p2.len());
    }
}
