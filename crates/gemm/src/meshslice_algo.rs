//! The MeshSlice 2D GeMM algorithm (§3.1, Figure 5).
//!
//! MeshSlice slices every moving matrix shard into `S` blocked sub-shards
//! (Algorithm 2) and runs `S` loop iterations, each performing *partial*
//! AllGather / ReduceScatter collectives and a partial GeMM. Software
//! pipelining overlaps the collectives of one iteration with the GeMM of
//! another — in **both** mesh directions, which no prior algorithm achieves
//! (Cannon needs square meshes, SUMMA pays fine-grain synchronization,
//! Collective cannot overlap at all, and Wang overlaps one direction only).

use meshslice_collectives::{all_gather, reduce_scatter};
use meshslice_mesh::Torus2d;
use meshslice_sim::{CollectiveKind, OpId, Program, ProgramBuilder};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::slice::{
    slice_cols, slice_rows, unslice_cols_into, unslice_rows_into, SliceSpec,
};
use meshslice_tensor::{GemmShape, Matrix};

use crate::algorithm::{check_inputs, DistributedGemm};
use crate::collective::grid_state;
use crate::error::{ensure_divides, GemmError};
use crate::problem::{Dataflow, GemmProblem};

/// The MeshSlice algorithm with slice count `S` and block size `B`.
///
/// `S` controls communication granularity: larger values shrink the
/// non-overlapped prologue/epilogue but add per-iteration launch and
/// synchronization overhead (§3.1). `B` is the architecture's efficient
/// memory-access block (8 for TPUs, which read 128×8 chunks).
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, MeshSlice};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(2, 2);
/// let problem = GemmProblem::new(GemmShape::new(8, 8, 16), Dataflow::Os);
/// let algo = MeshSlice::new(2, 2);
/// let (a, b) = problem.random_inputs(&mesh, 0);
/// let c = algo.execute(&mesh, problem, &a, &b)?;
/// assert!(c.assemble().approx_eq(&problem.reference(&a.assemble(), &b.assemble()), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshSlice {
    slice_count: usize,
    block: usize,
}

impl MeshSlice {
    /// Creates a MeshSlice instance with `S = slice_count` and block `B`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(slice_count: usize, block: usize) -> Self {
        assert!(slice_count > 0, "slice count must be positive");
        assert!(block > 0, "block size must be positive");
        MeshSlice { slice_count, block }
    }

    /// Creates an instance with the TPU block size (`B = 8`).
    pub fn with_tpu_block(slice_count: usize) -> Self {
        MeshSlice::new(slice_count, 8)
    }

    /// The slice count `S`.
    pub fn slice_count(&self) -> usize {
        self.slice_count
    }

    /// The block size `B`.
    pub fn block(&self) -> usize {
        self.block
    }

    fn spec(&self) -> SliceSpec {
        SliceSpec::new(self.slice_count, self.block)
    }

    /// The two local extents the slicing applies to, per dataflow:
    /// OS slices `K` on both inputs, LS slices `N`, RS slices `M`.
    fn sliced_extents(&self, mesh: &Torus2d, problem: GemmProblem) -> [(String, usize); 2] {
        let GemmShape { m, n, k } = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        match problem.dataflow {
            Dataflow::Os => [
                ("K/Pc (A sub-shard)".into(), k / pc),
                ("K/Pr (B sub-shard)".into(), k / pr),
            ],
            Dataflow::Ls => [
                ("N/Pr (B sub-shard)".into(), n / pr),
                ("N/Pc (C sub-shard)".into(), n / pc),
            ],
            Dataflow::Rs => [
                ("M/Pc (A sub-shard)".into(), m / pc),
                ("M/Pr (C sub-shard)".into(), m / pr),
            ],
        }
    }
}

impl Default for MeshSlice {
    /// `S = 1`, `B = 8`: degenerates to the Collective algorithm.
    fn default() -> Self {
        MeshSlice::with_tpu_block(1)
    }
}

impl DistributedGemm for MeshSlice {
    fn name(&self) -> &str {
        "MeshSlice"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        problem.check_divisible(mesh.shape())?;
        let unit = self.slice_count * self.block;
        for (what, extent) in self.sliced_extents(mesh, problem) {
            ensure_divides(&format!("{what} by S*B"), extent, unit)?;
        }
        Ok(())
    }

    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError> {
        self.check(mesh, problem)?;
        check_inputs(mesh, problem, a, b);
        let spec = self.spec();
        let s_count = self.slice_count;
        let a_state = grid_state(a);
        let b_state = grid_state(b);
        let (cr, cc) = problem.c_shard_dims(mesh.shape());
        let mut c_state: Vec<Matrix> = vec![Matrix::zeros(cr, cc); mesh.num_chips()];

        for s in 0..s_count {
            match problem.dataflow {
                Dataflow::Os => {
                    // A_s = slice_col(A_ij); B_s = slice_row(B_ij);
                    // A' = AG_col(A_s); B' = AG_row(B_s); C_ij += A'·B'.
                    let a_s: Vec<Matrix> = a_state.iter().map(|x| slice_cols(x, spec, s)).collect();
                    let b_s: Vec<Matrix> = b_state.iter().map(|x| slice_rows(x, spec, s)).collect();
                    let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_s);
                    let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_s);
                    for (c, (x, y)) in c_state.iter_mut().zip(ga.iter().zip(&gb)) {
                        dense::matmul_acc(c, x, y);
                    }
                }
                Dataflow::Ls => {
                    // B_s = slice_row(B_ij); B' = AG_row(B_s);
                    // C' = A_ij·(B')ᵀ; C_s = RdS_col(C').
                    let b_s: Vec<Matrix> = b_state.iter().map(|x| slice_rows(x, spec, s)).collect();
                    let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_s);
                    let partial: Vec<Matrix> = a_state
                        .iter()
                        .zip(&gb)
                        .map(|(x, y)| dense::matmul_a_bt(x, y))
                        .collect();
                    let scattered = reduce_scatter(mesh, problem.c_axis().unwrap(), &partial);
                    for (c, cs) in c_state.iter_mut().zip(&scattered) {
                        unslice_cols_into(c, spec, s, cs);
                    }
                }
                Dataflow::Rs => {
                    // A_s = slice_col(A_ij); A' = AG_col(A_s);
                    // C' = (A')ᵀ·B_ij; C_s = RdS_row(C').
                    let a_s: Vec<Matrix> = a_state.iter().map(|x| slice_cols(x, spec, s)).collect();
                    let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_s);
                    let partial: Vec<Matrix> = ga
                        .iter()
                        .zip(&b_state)
                        .map(|(x, y)| dense::matmul_at_b(x, y))
                        .collect();
                    let scattered = reduce_scatter(mesh, problem.c_axis().unwrap(), &partial);
                    for (c, cs) in c_state.iter_mut().zip(&scattered) {
                        unslice_rows_into(c, spec, s, cs);
                    }
                }
            }
        }
        Ok(ShardGrid::from_shards(mesh.rows(), mesh.cols(), c_state))
    }

    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError> {
        let mut b = ProgramBuilder::new(mesh);
        self.schedule_chained(&mut b, problem, elem_bytes, &[], &[])?;
        Ok(b.build())
    }
}

impl MeshSlice {
    /// Appends this pass's schedule into an existing builder, returning
    /// the last partial-GeMM op of every chip.
    ///
    /// `prev_gemms` (empty, or one entry per chip) are compute-order
    /// predecessors: every GeMM of this pass runs after them, modeling the
    /// data flow between consecutive training passes. `prefetch_after`
    /// (empty, or one entry per chip) bounds how early this pass's slicing
    /// and communication may start — pass `p − 2`'s GeMMs for classic
    /// double buffering, so pass `p`'s communication overlaps pass
    /// `p − 1`'s compute without crowding earlier passes. This is the
    /// building block of fused multi-pass schedules (see the
    /// `ext_fused_pipeline` ablation).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the mesh, dataflow, or dimensions are
    /// unsupported.
    ///
    /// # Panics
    ///
    /// Panics if `prev_gemms` or `prefetch_after` is neither empty nor one
    /// entry per chip.
    pub fn schedule_chained(
        &self,
        b: &mut ProgramBuilder,
        problem: GemmProblem,
        elem_bytes: usize,
        prev_gemms: &[OpId],
        prefetch_after: &[OpId],
    ) -> Result<Vec<OpId>, GemmError> {
        let mesh = b.mesh().clone();
        let mesh = &mesh;
        self.check(mesh, problem)?;
        assert!(
            prev_gemms.is_empty() || prev_gemms.len() == mesh.num_chips(),
            "prev_gemms must be empty or one op per chip"
        );
        assert!(
            prefetch_after.is_empty() || prefetch_after.len() == mesh.num_chips(),
            "prefetch_after must be empty or one op per chip"
        );
        let prefetch_dep = |chip: meshslice_mesh::ChipId| -> Vec<OpId> {
            prefetch_after
                .get(chip.index())
                .copied()
                .into_iter()
                .collect()
        };
        let s_count = self.slice_count as u64;
        let shape = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let mesh_shape = mesh.shape();
        let a_sub = problem.a_shard_bytes(mesh_shape, elem_bytes) / s_count;
        let b_sub = problem.b_shard_bytes(mesh_shape, elem_bytes) / s_count;
        let c_sub = problem.c_shard_bytes(mesh_shape, elem_bytes) / s_count;
        // With S = 1 the algorithm *is* Collective: real implementations
        // skip the identity slicing, and so does the schedule.
        let slicing = self.slice_count > 1;
        // Per-chip compute-order chain, seeded with the previous pass.
        let mut last_gemm: Vec<Option<OpId>> = if prev_gemms.is_empty() {
            vec![None; mesh.num_chips()]
        } else {
            prev_gemms.iter().copied().map(Some).collect()
        };

        for s in 0..self.slice_count {
            match problem.dataflow {
                Dataflow::Os => {
                    let tag_a = b.next_tag();
                    let tag_b = b.next_tag();
                    let local =
                        GemmShape::new(shape.m / pr, shape.n / pc, shape.k / self.slice_count);
                    for chip in mesh.chips() {
                        let a_deps = if slicing {
                            vec![b.slice_copy(chip, a_sub, &prefetch_dep(chip))]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_a = b.collective(
                            chip,
                            tag_a,
                            CollectiveKind::AllGather,
                            problem.a_axis().unwrap(),
                            a_sub,
                            2,
                            &a_deps,
                        );
                        let b_deps = if slicing {
                            vec![b.slice_copy(chip, b_sub, &prefetch_dep(chip))]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_b = b.collective(
                            chip,
                            tag_b,
                            CollectiveKind::AllGather,
                            problem.b_axis().unwrap(),
                            b_sub,
                            2,
                            &b_deps,
                        );
                        let mut gemm_deps = vec![ag_a, ag_b];
                        gemm_deps.extend(last_gemm[chip.index()]);
                        last_gemm[chip.index()] = Some(b.gemm(chip, local, &gemm_deps));
                    }
                }
                Dataflow::Ls => {
                    let tag_b = b.next_tag();
                    let tag_c = b.next_tag();
                    let local =
                        GemmShape::new(shape.m / pr, shape.n / self.slice_count, shape.k / pc);
                    for chip in mesh.chips() {
                        let b_deps = if slicing {
                            vec![b.slice_copy(chip, b_sub, &prefetch_dep(chip))]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_b = b.collective(
                            chip,
                            tag_b,
                            CollectiveKind::AllGather,
                            problem.b_axis().unwrap(),
                            b_sub,
                            2,
                            &b_deps,
                        );
                        let mut gemm_deps = vec![ag_b];
                        gemm_deps.extend(last_gemm[chip.index()]);
                        let gemm = b.gemm(chip, local, &gemm_deps);
                        last_gemm[chip.index()] = Some(gemm);
                        let rds = b.collective(
                            chip,
                            tag_c,
                            CollectiveKind::ReduceScatter,
                            problem.c_axis().unwrap(),
                            c_sub,
                            2,
                            &[gemm],
                        );
                        if slicing {
                            b.slice_copy(chip, c_sub, &[rds]);
                        }
                    }
                }
                Dataflow::Rs => {
                    let tag_a = b.next_tag();
                    let tag_c = b.next_tag();
                    let local =
                        GemmShape::new(shape.m / self.slice_count, shape.n / pc, shape.k / pr);
                    for chip in mesh.chips() {
                        let a_deps = if slicing {
                            vec![b.slice_copy(chip, a_sub, &prefetch_dep(chip))]
                        } else {
                            prefetch_dep(chip)
                        };
                        let ag_a = b.collective(
                            chip,
                            tag_a,
                            CollectiveKind::AllGather,
                            problem.a_axis().unwrap(),
                            a_sub,
                            2,
                            &a_deps,
                        );
                        let mut gemm_deps = vec![ag_a];
                        gemm_deps.extend(last_gemm[chip.index()]);
                        let gemm = b.gemm(chip, local, &gemm_deps);
                        last_gemm[chip.index()] = Some(gemm);
                        let rds = b.collective(
                            chip,
                            tag_c,
                            CollectiveKind::ReduceScatter,
                            problem.c_axis().unwrap(),
                            c_sub,
                            2,
                            &[gemm],
                        );
                        if slicing {
                            b.slice_copy(chip, c_sub, &[rds]);
                        }
                    }
                }
            }
            let _ = s;
        }
        Ok(last_gemm
            .into_iter()
            .map(|g| g.expect("every chip computed at least one partial GeMM"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_functional(
        df: Dataflow,
        mesh: (usize, usize),
        shape: (usize, usize, usize),
        s: usize,
        block: usize,
    ) {
        let mesh = Torus2d::new(mesh.0, mesh.1);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), df);
        let algo = MeshSlice::new(s, block);
        let (a, b) = problem.random_inputs(&mesh, 99);
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "{df} S={s} B={block}: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn os_matches_dense() {
        // K/Pc = 24/3 = 8, K/Pr = 24/2 = 12... both must divide by S*B = 4.
        check_functional(Dataflow::Os, (2, 3), (4, 6, 24), 2, 2);
    }

    #[test]
    fn ls_matches_dense() {
        // N/Pr = 24/2 = 12, N/Pc = 24/3 = 8; S*B = 4 divides both.
        check_functional(Dataflow::Ls, (2, 3), (4, 24, 6), 2, 2);
    }

    #[test]
    fn rs_matches_dense() {
        check_functional(Dataflow::Rs, (2, 3), (24, 6, 4), 2, 2);
    }

    #[test]
    fn slice_count_one_equals_collective() {
        check_functional(Dataflow::Os, (2, 2), (4, 4, 8), 1, 2);
    }

    #[test]
    fn deep_slicing_still_correct() {
        check_functional(Dataflow::Os, (2, 2), (4, 4, 32), 8, 2);
    }

    #[test]
    fn rejects_unsliceable_k() {
        let mesh = Torus2d::new(2, 2);
        // K/Pc = 6 is not divisible by S*B = 4.
        let problem = GemmProblem::new(GemmShape::new(4, 4, 12), Dataflow::Os);
        let err = MeshSlice::new(2, 2).check(&mesh, problem).unwrap_err();
        assert!(matches!(err, GemmError::Indivisible { .. }));
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(2, 4);
        let shape = GemmShape::new(64, 64, 64);
        for df in Dataflow::ALL {
            let problem = GemmProblem::new(shape, df);
            let prog = MeshSlice::new(4, 2).schedule(&mesh, problem, 2).unwrap();
            assert_eq!(prog.total_flops(), shape.flops(), "{df}");
        }
    }

    #[test]
    fn schedule_with_s1_has_no_slice_ops() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(32, 32, 32), Dataflow::Os);
        let prog = MeshSlice::new(1, 8).schedule(&mesh, problem, 2).unwrap();
        let has_slice = prog
            .ops()
            .iter()
            .any(|op| matches!(op.kind, meshslice_sim::OpKind::SliceCopy { .. }));
        assert!(!has_slice);
    }

    #[test]
    fn schedule_op_count_scales_with_s() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(64, 64, 64), Dataflow::Os);
        let p2 = MeshSlice::new(2, 2).schedule(&mesh, problem, 2).unwrap();
        let p4 = MeshSlice::new(4, 2).schedule(&mesh, problem, 2).unwrap();
        assert_eq!(p4.len(), 2 * p2.len());
    }
}
