//! The 1D baselines: tensor parallelism and fully-sharded data parallelism
//! (§4.3).
//!
//! Both run on a ring of `n` chips, expressed as the degenerate torus
//! `Torus2d::new(n, 1)`. A ring chip has only two usable ICI links, so the
//! rotations run bidirectionally (both ring directions at once). Both
//! baselines overlap communication with computation using Wang's method:
//! the AllGather is decomposed into SendRecv exchanges interleaved with
//! partial GeMMs.
//!
//! Shard layouts (documented because they differ from the 2D convention):
//!
//! - [`OneDimTp`] (sequence-parallel 1D TP): `A` is row-sharded
//!   (`M/n × K`), `B` is **column**-sharded (`K × N/n`, stored as the
//!   `(i, 0)` shard of the grid), and the output is column-sharded
//!   (`M × N/n`). Every chip gathers all of `A` — the traffic that makes
//!   1D TP unscalable.
//! - [`Fsdp`]: `A` is row-sharded (`M/n × K`), the weight `B` is
//!   row-sharded (`K/n × N`) and gathered, and the output is row-sharded
//!   (`M/n × N`).

use meshslice_collectives::all_gather;
use meshslice_mesh::{CommAxis, LinkDir, Torus2d};
use meshslice_sim::{OpId, Program, ProgramBuilder};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::{GemmShape, Matrix};

use crate::algorithm::DistributedGemm;
use crate::error::{ensure_divides, GemmError};
use crate::problem::{Dataflow, GemmProblem};

/// 1D tensor parallelism with sequence parallelism (the most popular TP
/// method for LLMs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OneDimTp {
    unroll: Option<usize>,
}

/// Fully-sharded data parallelism: the weight matrix is sharded and
/// gathered right before use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fsdp {
    unroll: Option<usize>,
}

impl OneDimTp {
    /// Full decomposition: one partial GeMM per received shard.
    pub fn new() -> Self {
        OneDimTp::default()
    }

    /// Merges partial GeMMs into `groups` unrolled groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    pub fn with_unroll(groups: usize) -> Self {
        assert!(groups > 0, "unroll group count must be positive");
        OneDimTp {
            unroll: Some(groups),
        }
    }
}

impl Fsdp {
    /// Full decomposition: one partial GeMM per received shard.
    pub fn new() -> Self {
        Fsdp::default()
    }

    /// Merges partial GeMMs into `groups` unrolled groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    pub fn with_unroll(groups: usize) -> Self {
        assert!(groups > 0, "unroll group count must be positive");
        Fsdp {
            unroll: Some(groups),
        }
    }
}

fn check_ring(mesh: &Torus2d, problem: GemmProblem, algorithm: &str) -> Result<(), GemmError> {
    if problem.dataflow != Dataflow::Os {
        return Err(GemmError::UnsupportedDataflow {
            algorithm: format!("{algorithm} (output-stationary storage only)"),
        });
    }
    if mesh.cols() != 1 {
        return Err(GemmError::UnsupportedMesh {
            requirement: format!("{algorithm} runs on a ring (Pc = 1), got {}", mesh.shape()),
        });
    }
    Ok(())
}

/// Builds a bidirectional rotation schedule: `n − 1` shard exchanges split
/// over the two ring directions, with one partial GeMM per arrival (plus
/// one for the local shard), optionally merged into unrolled groups.
fn rotation_schedule(
    mesh: &Torus2d,
    shard_bytes: u64,
    per_arrival: GemmShape,
    merge_dim: fn(GemmShape, usize) -> GemmShape,
    groups: Option<usize>,
) -> Program {
    let n = mesh.rows();
    let mut b = ProgramBuilder::new(mesh);
    let fwd = (n - 1).div_ceil(2);
    let bwd = (n - 1) / 2;
    let total = n; // panels including the local one
    let groups = match groups {
        Some(g) if g <= total && total.is_multiple_of(g) => g,
        _ => total,
    };
    let per_group = total / groups;
    for chip in mesh.chips() {
        // Two independent SendRecv chains, one per direction; each step
        // sends half the traffic of a unidirectional rotation.
        let mut fwd_prev: Option<OpId> = None;
        let mut bwd_prev: Option<OpId> = None;
        let mut fwd_done = 0usize;
        let mut bwd_done = 0usize;
        let mut arrivals = 0usize; // received shards (excluding local)
        for g in 0..groups {
            let target = ((g + 1) * per_group - 1).min(n - 1);
            while arrivals < target {
                // Alternate directions so arrivals interleave evenly.
                if fwd_done <= bwd_done && fwd_done < fwd {
                    let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                    fwd_prev = Some(b.send_recv(chip, LinkDir::RowPlus, shard_bytes, &deps));
                    fwd_done += 1;
                } else if bwd_done < bwd {
                    let deps: Vec<OpId> = bwd_prev.into_iter().collect();
                    bwd_prev = Some(b.send_recv(chip, LinkDir::RowMinus, shard_bytes, &deps));
                    bwd_done += 1;
                } else {
                    let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                    fwd_prev = Some(b.send_recv(chip, LinkDir::RowPlus, shard_bytes, &deps));
                    fwd_done += 1;
                }
                arrivals += 1;
            }
            let mut deps: Vec<OpId> = Vec::new();
            deps.extend(fwd_prev);
            deps.extend(bwd_prev);
            b.gemm(chip, merge_dim(per_arrival, per_group), &deps);
        }
    }
    b.build()
}

impl DistributedGemm for OneDimTp {
    fn name(&self) -> &str {
        "1D TP"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        check_ring(mesh, problem, "1D TP")?;
        let n = mesh.rows();
        ensure_divides("M by ring size", problem.shape.m, n)?;
        ensure_divides("N by ring size", problem.shape.n, n)?;
        Ok(())
    }

    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError> {
        self.check(mesh, problem)?;
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        assert_eq!(a.global_dims(), (m, k), "A must be row-sharded M x K");
        assert_eq!(
            b.shard_dims(),
            (k, nn / n),
            "B shards must be K x N/n column slices"
        );
        // AllGather the activations, then one local GeMM per chip against
        // its weight column slice.
        let a_state: Vec<Matrix> = a.iter().map(|(_, s)| s.clone()).collect();
        let ga = all_gather(mesh, CommAxis::InterRow, &a_state);
        let c: Vec<Matrix> = (0..n)
            .map(|i| dense::matmul(&ga[i], b.shard(i, 0)))
            .collect();
        Ok(ShardGrid::from_shards(n, 1, c))
    }

    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError> {
        self.check(mesh, problem)?;
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        let shard_bytes = (m / n * k * elem_bytes) as u64;
        // Each arrival contributes an M/n row panel of this chip's output
        // column block.
        let per_arrival = GemmShape::new(m / n, nn / n, k);
        Ok(rotation_schedule(
            mesh,
            shard_bytes,
            per_arrival,
            |s, c| GemmShape::new(s.m * c, s.n, s.k),
            self.unroll,
        ))
    }
}

impl DistributedGemm for Fsdp {
    fn name(&self) -> &str {
        "FSDP"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        check_ring(mesh, problem, "FSDP")?;
        let n = mesh.rows();
        ensure_divides("M by ring size", problem.shape.m, n)?;
        ensure_divides("K by ring size", problem.shape.k, n)?;
        Ok(())
    }

    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError> {
        self.check(mesh, problem)?;
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        assert_eq!(a.global_dims(), (m, k), "A must be row-sharded M x K");
        assert_eq!(b.global_dims(), (k, nn), "B must be row-sharded K x N");
        let b_state: Vec<Matrix> = b.iter().map(|(_, s)| s.clone()).collect();
        let gb = all_gather(mesh, CommAxis::InterRow, &b_state);
        let c: Vec<Matrix> = (0..n)
            .map(|i| dense::matmul(a.shard(i, 0), &gb[i]))
            .collect();
        Ok(ShardGrid::from_shards(n, 1, c))
    }

    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError> {
        self.check(mesh, problem)?;
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        let shard_bytes = (k / n * nn * elem_bytes) as u64;
        // Each arriving weight shard contributes a K/n contraction panel.
        let per_arrival = GemmShape::new(m / n, nn, k / n);
        Ok(rotation_schedule(
            mesh,
            shard_bytes,
            per_arrival,
            |s, c| GemmShape::new(s.m, s.n, s.k * c),
            self.unroll,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_tensor::shard::{partition_cols, partition_rows};

    #[test]
    fn one_d_tp_matches_dense() {
        let n = 4;
        let mesh = Torus2d::new(n, 1);
        let shape = GemmShape::new(8, 12, 6);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let a_global = Matrix::random(8, 6, 1);
        let b_global = Matrix::random(6, 12, 2);
        let a = ShardGrid::from_shards(n, 1, partition_rows(&a_global, n));
        let b = ShardGrid::from_shards(n, 1, partition_cols(&b_global, n));
        let c = OneDimTp::new().execute(&mesh, problem, &a, &b).unwrap();
        let expect = dense::matmul(&a_global, &b_global);
        // Chip i holds C[:, i-range].
        for i in 0..n {
            let block = expect.block(0, i * 3, 8, 3);
            assert!(c.shard(i, 0).approx_eq(&block, 1e-4));
        }
    }

    #[test]
    fn fsdp_matches_dense() {
        let n = 3;
        let mesh = Torus2d::new(n, 1);
        let shape = GemmShape::new(6, 4, 9);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let a_global = Matrix::random(6, 9, 3);
        let b_global = Matrix::random(9, 4, 4);
        let a = ShardGrid::from_shards(n, 1, partition_rows(&a_global, n));
        let b = ShardGrid::from_shards(n, 1, partition_rows(&b_global, n));
        let c = Fsdp::new().execute(&mesh, problem, &a, &b).unwrap();
        let expect = dense::matmul(&a_global, &b_global);
        assert!(c.assemble().approx_eq(&expect, 1e-4));
    }

    #[test]
    fn both_reject_2d_meshes() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
        assert!(OneDimTp::new().check(&mesh, problem).is_err());
        assert!(Fsdp::new().check(&mesh, problem).is_err());
    }

    #[test]
    fn schedules_preserve_flops() {
        let mesh = Torus2d::new(8, 1);
        let shape = GemmShape::new(64, 64, 64);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        for prog in [
            OneDimTp::new().schedule(&mesh, problem, 2).unwrap(),
            Fsdp::new().schedule(&mesh, problem, 2).unwrap(),
            OneDimTp::with_unroll(4)
                .schedule(&mesh, problem, 2)
                .unwrap(),
            Fsdp::with_unroll(2).schedule(&mesh, problem, 2).unwrap(),
        ] {
            assert_eq!(prog.total_flops(), shape.flops());
        }
    }

    #[test]
    fn rotation_uses_both_link_directions() {
        let mesh = Torus2d::new(8, 1);
        let shape = GemmShape::new(64, 64, 64);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let prog = OneDimTp::new().schedule(&mesh, problem, 2).unwrap();
        let dirs: std::collections::HashSet<_> = prog
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                meshslice_sim::OpKind::SendRecv { dir, .. } => Some(dir),
                _ => None,
            })
            .collect();
        assert!(dirs.contains(&LinkDir::RowPlus));
        assert!(dirs.contains(&LinkDir::RowMinus));
        // n - 1 = 7 exchanges per chip.
        let sends = prog
            .ops()
            .iter()
            .filter(|op| matches!(op.kind, meshslice_sim::OpKind::SendRecv { .. }))
            .count();
        assert_eq!(sends, 8 * 7);
    }
}
