//! The 1D baselines: tensor parallelism and fully-sharded data parallelism
//! (§4.3).
//!
//! Both run on a ring of `n` chips, expressed as the degenerate torus
//! `Torus2d::new(n, 1)`. A ring chip has only two usable ICI links, so the
//! rotations run bidirectionally (both ring directions at once). Both
//! baselines overlap communication with computation using Wang's method:
//! the AllGather is decomposed into SendRecv exchanges interleaved with
//! partial GeMMs.
//!
//! Shard layouts (documented because they differ from the 2D convention):
//!
//! - [`OneDimTp`] (sequence-parallel 1D TP): `A` is row-sharded
//!   (`M/n × K`), `B` is **column**-sharded (`K × N/n`, stored as the
//!   `(i, 0)` shard of the grid), and the output is column-sharded
//!   (`M × N/n`). Every chip gathers all of `A` — the traffic that makes
//!   1D TP unscalable.
//! - [`Fsdp`]: `A` is row-sharded (`M/n × K`), the weight `B` is
//!   row-sharded (`K/n × N`) and gathered, and the output is row-sharded
//!   (`M/n × N`).

use meshslice_mesh::{ChipId, Coord, LinkDir, Torus2d};
use meshslice_sim::OpId;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::GemmShape;

use crate::algorithm::DistributedGemm;
use crate::error::{ensure_divides, GemmError};
use crate::plan::{DataOp, MatKind, MatmulStep, Plan, PlanBuilder, TileRead};
use crate::problem::{Dataflow, GemmProblem};

/// 1D tensor parallelism with sequence parallelism (the most popular TP
/// method for LLMs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OneDimTp {
    unroll: Option<usize>,
}

/// Fully-sharded data parallelism: the weight matrix is sharded and
/// gathered right before use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fsdp {
    unroll: Option<usize>,
}

impl OneDimTp {
    /// Full decomposition: one partial GeMM per received shard.
    pub fn new() -> Self {
        OneDimTp::default()
    }

    /// Merges partial GeMMs into `groups` unrolled groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    pub fn with_unroll(groups: usize) -> Self {
        assert!(groups > 0, "unroll group count must be positive");
        OneDimTp {
            unroll: Some(groups),
        }
    }

    #[cfg(test)]
    pub(crate) fn unroll(&self) -> Option<usize> {
        self.unroll
    }
}

impl Fsdp {
    /// Full decomposition: one partial GeMM per received shard.
    pub fn new() -> Self {
        Fsdp::default()
    }

    /// Merges partial GeMMs into `groups` unrolled groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    pub fn with_unroll(groups: usize) -> Self {
        assert!(groups > 0, "unroll group count must be positive");
        Fsdp {
            unroll: Some(groups),
        }
    }

    #[cfg(test)]
    pub(crate) fn unroll(&self) -> Option<usize> {
        self.unroll
    }
}

fn check_ring(mesh: &Torus2d, problem: GemmProblem, algorithm: &str) -> Result<(), GemmError> {
    if problem.dataflow != Dataflow::Os {
        return Err(GemmError::UnsupportedDataflow {
            algorithm: format!("{algorithm} (output-stationary storage only)"),
        });
    }
    if mesh.cols() != 1 {
        return Err(GemmError::UnsupportedMesh {
            requirement: format!("{algorithm} runs on a ring (Pc = 1), got {}", mesh.shape()),
        });
    }
    Ok(())
}

fn layout_err(what: &str, found: (usize, usize), expected: (usize, usize)) -> GemmError {
    GemmError::ShardLayout {
        what: what.to_string(),
        found,
        expected,
    }
}

/// Emits a bidirectional rotation plan: `n − 1` shard exchanges split over
/// the two ring directions, with one partial GeMM per arrival (plus one
/// for the local shard), optionally merged into unrolled groups.
///
/// `step_for(chip, panel)` produces the multiply-accumulate a GeMM
/// performs once ring panel `panel` is available on `chip`;
/// `carry_for(chip, panel)` names the tile an exchange delivers.
#[allow(clippy::too_many_arguments)]
fn rotation_plan(
    pb: &mut PlanBuilder,
    shard_bytes: u64,
    per_arrival: GemmShape,
    merge_dim: fn(GemmShape, usize) -> GemmShape,
    groups: Option<usize>,
    carry_for: &dyn Fn(ChipId, usize) -> TileRead,
    step_for: &dyn Fn(ChipId, usize) -> MatmulStep,
) {
    let mesh = pb.mesh().clone();
    let n = mesh.rows();
    let fwd = (n - 1).div_ceil(2);
    let bwd = (n - 1) / 2;
    let total = n; // panels including the local one
    let groups = match groups {
        Some(g) if g <= total && total.is_multiple_of(g) => g,
        _ => total,
    };
    let per_group = total / groups;
    for chip in mesh.chips() {
        let own = mesh.coord_of(chip).row();
        // Two independent SendRecv chains, one per direction; each step
        // sends half the traffic of a unidirectional rotation.
        let mut fwd_prev: Option<OpId> = None;
        let mut bwd_prev: Option<OpId> = None;
        let mut fwd_done = 0usize;
        let mut bwd_done = 0usize;
        let mut arrivals = 0usize; // received shards (excluding local)
        let mut pending = vec![own]; // panels ready but not yet consumed
        for g in 0..groups {
            let target = ((g + 1) * per_group - 1).min(n - 1);
            while arrivals < target {
                // Alternate directions so arrivals interleave evenly.
                let panel;
                if fwd_done <= bwd_done && fwd_done < fwd {
                    let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                    let sr = pb
                        .sim()
                        .send_recv(chip, LinkDir::RowPlus, shard_bytes, &deps);
                    fwd_done += 1;
                    panel = (own + fwd_done) % n;
                    pb.attach(
                        sr,
                        DataOp::Carries {
                            tile: carry_for(chip, panel),
                        },
                    );
                    fwd_prev = Some(sr);
                } else if bwd_done < bwd {
                    let deps: Vec<OpId> = bwd_prev.into_iter().collect();
                    let sr = pb
                        .sim()
                        .send_recv(chip, LinkDir::RowMinus, shard_bytes, &deps);
                    bwd_done += 1;
                    panel = (own + n - bwd_done) % n;
                    pb.attach(
                        sr,
                        DataOp::Carries {
                            tile: carry_for(chip, panel),
                        },
                    );
                    bwd_prev = Some(sr);
                } else {
                    let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                    let sr = pb
                        .sim()
                        .send_recv(chip, LinkDir::RowPlus, shard_bytes, &deps);
                    fwd_done += 1;
                    panel = (own + fwd_done) % n;
                    pb.attach(
                        sr,
                        DataOp::Carries {
                            tile: carry_for(chip, panel),
                        },
                    );
                    fwd_prev = Some(sr);
                }
                pending.push(panel);
                arrivals += 1;
            }
            let mut deps: Vec<OpId> = Vec::new();
            deps.extend(fwd_prev);
            deps.extend(bwd_prev);
            let gemm = pb
                .sim()
                .gemm(chip, merge_dim(per_arrival, per_group), &deps);
            let steps = pending.drain(..).map(|p| step_for(chip, p)).collect();
            pb.attach(gemm, DataOp::Compute { steps });
        }
    }
}

impl DistributedGemm for OneDimTp {
    fn name(&self) -> &str {
        "1D TP"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        check_ring(mesh, problem, "1D TP")?;
        let n = mesh.rows();
        ensure_divides("M by ring size", problem.shape.m, n)?;
        ensure_divides("N by ring size", problem.shape.n, n)?;
        Ok(())
    }

    fn check_layout(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<(), GemmError> {
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        if a.global_dims() != (m, k) {
            return Err(layout_err(
                "A must be row-sharded M x K",
                a.global_dims(),
                (m, k),
            ));
        }
        if (a.mesh_rows(), a.mesh_cols()) != (n, 1) {
            return Err(layout_err(
                "A shard grid must be the n x 1 ring",
                (a.mesh_rows(), a.mesh_cols()),
                (n, 1),
            ));
        }
        if b.shard_dims() != (k, nn / n) {
            return Err(layout_err(
                "B shards must be K x N/n column slices",
                b.shard_dims(),
                (k, nn / n),
            ));
        }
        if (b.mesh_rows(), b.mesh_cols()) != (n, 1) {
            return Err(layout_err(
                "B shard grid must be the n x 1 ring",
                (b.mesh_rows(), b.mesh_cols()),
                (n, 1),
            ));
        }
        Ok(())
    }

    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError> {
        self.check(mesh, problem)?;
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        let shard_bytes = (m / n * k * elem_bytes) as u64;
        // Each arrival contributes an M/n row panel of this chip's output
        // column block.
        let per_arrival = GemmShape::new(m / n, nn / n, k);
        let unroll = self.unroll;
        Plan::build(mesh, |pb| {
            let a = pb.input_a(m / n, k);
            let b = pb.input_b(k, nn / n);
            let c = pb.zeros(m, nn / n);
            let ring = pb.mesh().clone();
            let panel_home = move |panel: usize| ring.chip_at(Coord::new(panel, 0));
            let carry = |_chip: ChipId, panel: usize| TileRead::whole(a, panel_home(panel));
            let step = |chip: ChipId, panel: usize| MatmulStep {
                kind: MatKind::Ab,
                lhs: TileRead::whole(a, panel_home(panel)),
                rhs: TileRead::whole(b, chip),
                dst: c,
                dst_chip: chip,
                dst_off: (panel * (m / n), 0),
            };
            rotation_plan(
                pb,
                shard_bytes,
                per_arrival,
                |s, g| GemmShape::new(s.m * g, s.n, s.k),
                unroll,
                &carry,
                &step,
            );
            Ok(c)
        })
    }
}

impl DistributedGemm for Fsdp {
    fn name(&self) -> &str {
        "FSDP"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        check_ring(mesh, problem, "FSDP")?;
        let n = mesh.rows();
        ensure_divides("M by ring size", problem.shape.m, n)?;
        ensure_divides("K by ring size", problem.shape.k, n)?;
        Ok(())
    }

    fn check_layout(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<(), GemmError> {
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        if a.global_dims() != (m, k) {
            return Err(layout_err(
                "A must be row-sharded M x K",
                a.global_dims(),
                (m, k),
            ));
        }
        if (a.mesh_rows(), a.mesh_cols()) != (n, 1) {
            return Err(layout_err(
                "A shard grid must be the n x 1 ring",
                (a.mesh_rows(), a.mesh_cols()),
                (n, 1),
            ));
        }
        if b.global_dims() != (k, nn) {
            return Err(layout_err(
                "B must be row-sharded K x N",
                b.global_dims(),
                (k, nn),
            ));
        }
        if (b.mesh_rows(), b.mesh_cols()) != (n, 1) {
            return Err(layout_err(
                "B shard grid must be the n x 1 ring",
                (b.mesh_rows(), b.mesh_cols()),
                (n, 1),
            ));
        }
        Ok(())
    }

    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError> {
        self.check(mesh, problem)?;
        let n = mesh.rows();
        let GemmShape { m, n: nn, k } = problem.shape;
        let shard_bytes = (k / n * nn * elem_bytes) as u64;
        // Each arriving weight shard contributes a K/n contraction panel.
        let per_arrival = GemmShape::new(m / n, nn, k / n);
        let unroll = self.unroll;
        Plan::build(mesh, |pb| {
            let a = pb.input_a(m / n, k);
            let b = pb.input_b(k / n, nn);
            let c = pb.zeros(m / n, nn);
            let ring = pb.mesh().clone();
            let panel_home = move |panel: usize| ring.chip_at(Coord::new(panel, 0));
            let carry = |_chip: ChipId, panel: usize| TileRead::whole(b, panel_home(panel));
            let step = |chip: ChipId, panel: usize| MatmulStep {
                kind: MatKind::Ab,
                lhs: TileRead::region(a, chip, 0, panel * (k / n), m / n, k / n),
                rhs: TileRead::whole(b, panel_home(panel)),
                dst: c,
                dst_chip: chip,
                dst_off: (0, 0),
            };
            rotation_plan(
                pb,
                shard_bytes,
                per_arrival,
                |s, g| GemmShape::new(s.m, s.n, s.k * g),
                unroll,
                &carry,
                &step,
            );
            Ok(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_tensor::gemm as dense;
    use meshslice_tensor::shard::{partition_cols, partition_rows};
    use meshslice_tensor::Matrix;

    #[test]
    fn one_d_tp_matches_dense() {
        let n = 4;
        let mesh = Torus2d::new(n, 1);
        let shape = GemmShape::new(8, 12, 6);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let a_global = Matrix::random(8, 6, 1);
        let b_global = Matrix::random(6, 12, 2);
        let a = ShardGrid::from_shards(n, 1, partition_rows(&a_global, n));
        let b = ShardGrid::from_shards(n, 1, partition_cols(&b_global, n));
        let c = OneDimTp::new().execute(&mesh, problem, &a, &b).unwrap();
        let expect = dense::matmul(&a_global, &b_global);
        // Chip i holds C[:, i-range].
        for i in 0..n {
            let block = expect.block(0, i * 3, 8, 3);
            assert!(c.shard(i, 0).approx_eq(&block, 1e-4));
        }
    }

    #[test]
    fn fsdp_matches_dense() {
        let n = 3;
        let mesh = Torus2d::new(n, 1);
        let shape = GemmShape::new(6, 4, 9);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let a_global = Matrix::random(6, 9, 3);
        let b_global = Matrix::random(9, 4, 4);
        let a = ShardGrid::from_shards(n, 1, partition_rows(&a_global, n));
        let b = ShardGrid::from_shards(n, 1, partition_rows(&b_global, n));
        let c = Fsdp::new().execute(&mesh, problem, &a, &b).unwrap();
        let expect = dense::matmul(&a_global, &b_global);
        assert!(c.assemble().approx_eq(&expect, 1e-4));
    }

    #[test]
    fn both_reject_2d_meshes() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
        assert!(OneDimTp::new().check(&mesh, problem).is_err());
        assert!(Fsdp::new().check(&mesh, problem).is_err());
    }

    #[test]
    fn tp_rejects_misshaped_weights() {
        let n = 4;
        let mesh = Torus2d::new(n, 1);
        let shape = GemmShape::new(8, 12, 8);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let a_global = Matrix::random(8, 8, 1);
        let b_global = Matrix::random(8, 12, 2);
        let a = ShardGrid::from_shards(n, 1, partition_rows(&a_global, n));
        // Row-sharded weights are FSDP's layout, not 1D TP's.
        let b_wrong = ShardGrid::from_shards(n, 1, partition_rows(&b_global, n));
        let err = OneDimTp::new()
            .execute(&mesh, problem, &a, &b_wrong)
            .unwrap_err();
        assert!(matches!(err, GemmError::ShardLayout { .. }), "{err}");
    }

    #[test]
    fn schedules_preserve_flops() {
        let mesh = Torus2d::new(8, 1);
        let shape = GemmShape::new(64, 64, 64);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        for prog in [
            OneDimTp::new().schedule(&mesh, problem, 2).unwrap(),
            Fsdp::new().schedule(&mesh, problem, 2).unwrap(),
            OneDimTp::with_unroll(4)
                .schedule(&mesh, problem, 2)
                .unwrap(),
            Fsdp::with_unroll(2).schedule(&mesh, problem, 2).unwrap(),
        ] {
            assert_eq!(prog.total_flops(), shape.flops());
        }
    }

    #[test]
    fn rotation_uses_both_link_directions() {
        let mesh = Torus2d::new(8, 1);
        let shape = GemmShape::new(64, 64, 64);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let prog = OneDimTp::new().schedule(&mesh, problem, 2).unwrap();
        let dirs: std::collections::HashSet<_> = prog
            .ops()
            .iter()
            .filter_map(|op| match op.kind {
                meshslice_sim::OpKind::SendRecv { dir, .. } => Some(dir),
                _ => None,
            })
            .collect();
        assert!(dirs.contains(&LinkDir::RowPlus));
        assert!(dirs.contains(&LinkDir::RowMinus));
        // n - 1 = 7 exchanges per chip.
        let sends = prog
            .ops()
            .iter()
            .filter(|op| matches!(op.kind, meshslice_sim::OpKind::SendRecv { .. }))
            .count();
        assert_eq!(sends, 8 * 7);
    }
}
