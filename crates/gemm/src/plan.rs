//! The data-annotated plan IR shared by every distributed GeMM algorithm.
//!
//! A [`Plan`] is one lowered description of a distributed GeMM from which
//! **both** execution layers are derived:
//!
//! 1. the timing simulator consumes [`Plan::program`] (the op DAG, with the
//!    data annotations erased), and
//! 2. the functional interpreter ([`Plan::interpret`]) walks the plan's
//!    [`PlanAction`]s in data-dependency order, really moving [`Matrix`]
//!    shards between per-chip buffers.
//!
//! Because each algorithm emits its plan exactly once — through a
//! [`PlanBuilder`] that forwards every op to the sim's
//! [`ProgramBuilder`] while recording what data the op touches — the
//! program the simulator prices is *by construction* the program that is
//! numerically verified against dense GeMM. There is no second
//! hand-written executor that could drift.
//!
//! # Data model
//!
//! Plans name data through cluster-wide *registers* ([`Reg`]): a register
//! holds one logical matrix value per chip (the same convention as
//! `meshslice-collectives` cluster state). Registers are write-once per
//! chip entry, except zero-initialized accumulators, which only ever
//! receive commutative `+=` contributions — so any order respecting the
//! read-after-write edges computes the same result.
//!
//! Every annotation is fully concrete (chip ids, element offsets, slice
//! indices): a plan is built for one mesh and one problem, so nothing is
//! symbolic.

use meshslice_collectives::{all_gather, reduce_scatter};
use meshslice_mesh::{ChipId, CommAxis, Torus2d};
use meshslice_sim::{OpId, Program, ProgramBuilder};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::slice::{
    slice_cols, slice_rows, unslice_cols_into, unslice_rows_into, SliceSpec,
};
use meshslice_tensor::Matrix;

use crate::error::GemmError;

/// Element size used when a plan is interpreted functionally.
///
/// Byte counts only affect timing, never numerics, so the functional
/// `execute` path fixes them to f32 width.
pub const FUNCTIONAL_ELEM_BYTES: usize = 4;

/// A cluster-wide register: one logical matrix value per chip, in
/// [`ChipId`] order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(usize);

impl Reg {
    /// The raw index of the register in its plan.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A rectangular region of a register entry, in elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First row.
    pub row0: usize,
    /// First column.
    pub col0: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

/// A read of one tile: a register entry on a specific chip, optionally
/// restricted to a region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileRead {
    /// The register.
    pub reg: Reg,
    /// Whose entry is read. Reading another chip's entry models data that
    /// physically arrived there through the transport ops the annotation
    /// is anchored to (a rotated shard, a broadcast panel).
    pub chip: ChipId,
    /// `None` reads the whole entry.
    pub region: Option<Region>,
}

impl TileRead {
    /// Reads chip `chip`'s whole entry of `reg`.
    pub fn whole(reg: Reg, chip: ChipId) -> Self {
        TileRead {
            reg,
            chip,
            region: None,
        }
    }

    /// Reads a rectangular region of chip `chip`'s entry of `reg`.
    pub fn region(
        reg: Reg,
        chip: ChipId,
        row0: usize,
        col0: usize,
        rows: usize,
        cols: usize,
    ) -> Self {
        TileRead {
            reg,
            chip,
            region: Some(Region {
                row0,
                col0,
                rows,
                cols,
            }),
        }
    }
}

/// Operand orientation of a [`MatmulStep`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatKind {
    /// `dst += lhs · rhs`
    Ab,
    /// `dst += lhs · rhsᵀ`
    Abt,
    /// `dst += lhsᵀ · rhs`
    Atb,
}

/// One tile-level multiply-accumulate of a compute op.
///
/// The product of the two read tiles is added into `dst`'s entry on
/// `dst_chip` at offset `dst_off`. Cross-chip destinations are allowed
/// for accumulators (the adds commute), modeling compute-interleaved
/// reductions such as SUMMA's all-to-one reduce or Wang's ring
/// reduce-scatter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatmulStep {
    /// Operand orientation.
    pub kind: MatKind,
    /// Left operand tile.
    pub lhs: TileRead,
    /// Right operand tile.
    pub rhs: TileRead,
    /// Destination accumulator register.
    pub dst: Reg,
    /// Whose accumulator entry receives the product.
    pub dst_chip: ChipId,
    /// `(row, col)` element offset of the product within the destination.
    pub dst_off: (usize, usize),
}

/// The data semantics of one [`PlanAction`].
#[derive(Clone, Debug, PartialEq)]
pub enum DataOp {
    /// One or more tile multiply-accumulates (several when the schedule
    /// merges panels into one unrolled GeMM op).
    Compute {
        /// The accumulated tile products.
        steps: Vec<MatmulStep>,
    },
    /// `dst[chip] = slice_cols(src[chip], spec, index)` — a blocked
    /// column sub-shard extraction.
    SliceCols {
        /// The slicing chip.
        chip: ChipId,
        /// Source register.
        src: Reg,
        /// Destination register.
        dst: Reg,
        /// Blocked slicing geometry.
        spec: SliceSpec,
        /// Which of the `S` sub-shards is extracted.
        index: usize,
    },
    /// `dst[chip] = slice_rows(src[chip], spec, index)`.
    SliceRows {
        /// The slicing chip.
        chip: ChipId,
        /// Source register.
        src: Reg,
        /// Destination register.
        dst: Reg,
        /// Blocked slicing geometry.
        spec: SliceSpec,
        /// Which of the `S` sub-shards is extracted.
        index: usize,
    },
    /// Scatters `src[chip]`'s columns into slice `index` of `dst[chip]`
    /// (the inverse of [`DataOp::SliceCols`]).
    UnsliceCols {
        /// The scattering chip.
        chip: ChipId,
        /// Source register (one sub-shard).
        src: Reg,
        /// Destination register.
        dst: Reg,
        /// Blocked slicing geometry.
        spec: SliceSpec,
        /// Which of the `S` sub-shards is written.
        index: usize,
    },
    /// Scatters `src[chip]`'s rows into slice `index` of `dst[chip]`.
    UnsliceRows {
        /// The scattering chip.
        chip: ChipId,
        /// Source register (one sub-shard).
        src: Reg,
        /// Destination register.
        dst: Reg,
        /// Blocked slicing geometry.
        spec: SliceSpec,
        /// Which of the `S` sub-shards is written.
        index: usize,
    },
    /// Ring AllGather over `axis`: every chip's `dst` entry becomes the
    /// concatenation of its ring's `src` entries. Anchored to all
    /// participating collective ops.
    AllGather {
        /// Source register (per-chip shards).
        src: Reg,
        /// Destination register (per-chip gathered matrices).
        dst: Reg,
        /// Ring direction.
        axis: CommAxis,
    },
    /// Ring ReduceScatter over `axis`: the ring-wise sum of `src` entries
    /// is split evenly and chip at ring position `p` receives part `p`.
    ReduceScatter {
        /// Source register (per-chip full-size partials).
        src: Reg,
        /// Destination register (per-chip scattered shards).
        dst: Reg,
        /// Ring direction.
        axis: CommAxis,
    },
    /// Pure transport: the anchored op carries `tile` towards its
    /// consumers (a Cannon shift payload, a rotated Wang shard, a SUMMA
    /// broadcast panel). The interpreter does nothing — the consuming
    /// [`DataOp::Compute`] reads the tile straight from its home chip —
    /// but the label documents what the wire traffic is.
    Carries {
        /// The tile the op's traffic pertains to.
        tile: TileRead,
    },
}

impl DataOp {
    /// Tiles this action reads (whole entries for collectives).
    fn reads(&self, mesh: &Torus2d) -> Vec<TileRead> {
        match self {
            DataOp::Compute { steps } => steps.iter().flat_map(|s| [s.lhs, s.rhs]).collect(),
            DataOp::SliceCols { chip, src, .. }
            | DataOp::SliceRows { chip, src, .. }
            | DataOp::UnsliceCols { chip, src, .. }
            | DataOp::UnsliceRows { chip, src, .. } => vec![TileRead::whole(*src, *chip)],
            DataOp::AllGather { src, .. } | DataOp::ReduceScatter { src, .. } => mesh
                .chips()
                .map(|chip| TileRead::whole(*src, chip))
                .collect(),
            DataOp::Carries { .. } => Vec::new(),
        }
    }

    /// `(register, chip)` entries this action writes (or accumulates
    /// into).
    fn writes(&self, mesh: &Torus2d) -> Vec<(Reg, ChipId)> {
        match self {
            DataOp::Compute { steps } => steps.iter().map(|s| (s.dst, s.dst_chip)).collect(),
            DataOp::SliceCols { chip, dst, .. }
            | DataOp::SliceRows { chip, dst, .. }
            | DataOp::UnsliceCols { chip, dst, .. }
            | DataOp::UnsliceRows { chip, dst, .. } => vec![(*dst, *chip)],
            DataOp::AllGather { dst, .. } | DataOp::ReduceScatter { dst, .. } => {
                mesh.chips().map(|chip| (*dst, chip)).collect()
            }
            DataOp::Carries { .. } => Vec::new(),
        }
    }
}

/// A data action anchored to one or more program ops.
///
/// Per-chip actions (compute, slicing) anchor to a single op; cluster
/// actions (collectives) anchor to every participating op.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanAction {
    /// The program ops this action annotates.
    pub ops: Vec<OpId>,
    /// What the ops do to the data.
    pub data: DataOp,
}

/// Handle to a [`PlanAction`] while a plan is being built (for anchoring
/// several ops to one cluster action).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActionId(usize);

/// How a register's per-chip entries come into existence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegInit {
    /// Pre-loaded from the `A` input shard grid.
    InputA,
    /// Pre-loaded from the `B` input shard grid.
    InputB,
    /// Zero-initialized accumulator (written by `+=` contributions).
    Zeros,
    /// Materialized by the first write (collectives, slicing).
    Empty,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RegInfo {
    rows: usize,
    cols: usize,
    init: RegInit,
}

/// One data-annotated plan: a lowered [`Program`] plus the data actions
/// that give each op its meaning.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    mesh: Torus2d,
    program: Program,
    actions: Vec<PlanAction>,
    regs: Vec<RegInfo>,
    result: Reg,
}

impl Plan {
    /// Builds a plan by running `emit` against a fresh [`PlanBuilder`];
    /// `emit` returns the register holding the result shard grid.
    ///
    /// # Errors
    ///
    /// Propagates `emit`'s error.
    pub fn build(
        mesh: &Torus2d,
        emit: impl FnOnce(&mut PlanBuilder) -> Result<Reg, GemmError>,
    ) -> Result<Plan, GemmError> {
        let mut sim = ProgramBuilder::new(mesh);
        let mut pb = PlanBuilder::new(&mut sim);
        let result = emit(&mut pb)?;
        let (regs, actions) = pb.finish();
        Ok(Plan {
            mesh: mesh.clone(),
            program: sim.build(),
            actions,
            regs,
            result,
        })
    }

    /// The lowered op DAG (data annotations erased) — what the timing
    /// simulator executes.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Consumes the plan, keeping only the lowered program.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// The data actions, in emission order.
    pub fn actions(&self) -> &[PlanAction] {
        &self.actions
    }

    /// The data actions anchored to `op` (empty for ops whose data
    /// semantics live on a sibling — none in the built-in algorithms).
    pub fn annotations_for(&self, op: OpId) -> Vec<&PlanAction> {
        self.actions
            .iter()
            .filter(|a| a.ops.contains(&op))
            .collect()
    }

    /// Functionally interprets the plan: really moves and multiplies the
    /// input shard grids, producing the result shard grid.
    ///
    /// Actions run in data-dependency order: an action fires once every
    /// tile it reads is materialized and has no outstanding writers.
    /// Registers are write-once (or commutative accumulators), so any
    /// such order is equivalent; ties resolve in emission order, which
    /// keeps the interpreter deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::CyclicProgram`] if the lowered program has a
    /// dependency cycle.
    ///
    /// # Panics
    ///
    /// Panics if the data actions deadlock or read unwritten registers —
    /// impossible for plans emitted by the built-in algorithms, but
    /// reachable from a hand-built inconsistent plan.
    pub fn interpret(&self, a: &ShardGrid, b: &ShardGrid) -> Result<ShardGrid, GemmError> {
        self.program.validate_acyclic()?;
        let chips = self.mesh.num_chips();
        let mut state: Vec<Vec<Option<Matrix>>> = self
            .regs
            .iter()
            .map(|info| match info.init {
                RegInit::InputA => a.iter().map(|(_, s)| Some(s.clone())).collect(),
                RegInit::InputB => b.iter().map(|(_, s)| Some(s.clone())).collect(),
                RegInit::Zeros => vec![Some(Matrix::zeros(info.rows, info.cols)); chips],
                RegInit::Empty => vec![None; chips],
            })
            .collect();
        // Outstanding writer counts per (register, chip) entry.
        let mut writers: Vec<Vec<usize>> = self.regs.iter().map(|_| vec![0usize; chips]).collect();
        for action in &self.actions {
            for (reg, chip) in action.data.writes(&self.mesh) {
                writers[reg.0][chip.index()] += 1;
            }
        }
        let mut done = vec![false; self.actions.len()];
        let mut remaining = self.actions.len();
        while remaining > 0 {
            let mut progressed = false;
            for (i, action) in self.actions.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let ready = action.data.reads(&self.mesh).iter().all(|t| {
                    writers[t.reg.0][t.chip.index()] == 0
                        && state[t.reg.0][t.chip.index()].is_some()
                });
                if !ready {
                    continue;
                }
                self.run_action(&action.data, &mut state);
                for (reg, chip) in action.data.writes(&self.mesh) {
                    writers[reg.0][chip.index()] -= 1;
                }
                done[i] = true;
                remaining -= 1;
                progressed = true;
            }
            assert!(
                progressed,
                "plan data actions deadlock: {remaining} actions cannot fire"
            );
        }
        let shards: Vec<Matrix> = state[self.result.0]
            .iter()
            .map(|m| m.clone().expect("result register is materialized"))
            .collect();
        Ok(ShardGrid::from_shards(
            self.mesh.rows(),
            self.mesh.cols(),
            shards,
        ))
    }

    fn run_action(&self, data: &DataOp, state: &mut [Vec<Option<Matrix>>]) {
        let read = |state: &[Vec<Option<Matrix>>], t: TileRead| -> Matrix {
            let m = state[t.reg.0][t.chip.index()]
                .as_ref()
                .expect("read tile is materialized");
            match t.region {
                None => m.clone(),
                Some(r) => m.block(r.row0, r.col0, r.rows, r.cols),
            }
        };
        match data {
            DataOp::Compute { steps } => {
                for step in steps {
                    let lhs = read(state, step.lhs);
                    let rhs = read(state, step.rhs);
                    let product = match step.kind {
                        MatKind::Ab => dense::matmul(&lhs, &rhs),
                        MatKind::Abt => dense::matmul_a_bt(&lhs, &rhs),
                        MatKind::Atb => dense::matmul_at_b(&lhs, &rhs),
                    };
                    let dst = state[step.dst.0][step.dst_chip.index()]
                        .as_mut()
                        .expect("compute destination is a materialized accumulator");
                    dst.add_block(step.dst_off.0, step.dst_off.1, &product);
                }
            }
            DataOp::SliceCols {
                chip,
                src,
                dst,
                spec,
                index,
            } => {
                let v = slice_cols(
                    state[src.0][chip.index()].as_ref().expect("slice source"),
                    *spec,
                    *index,
                );
                state[dst.0][chip.index()] = Some(v);
            }
            DataOp::SliceRows {
                chip,
                src,
                dst,
                spec,
                index,
            } => {
                let v = slice_rows(
                    state[src.0][chip.index()].as_ref().expect("slice source"),
                    *spec,
                    *index,
                );
                state[dst.0][chip.index()] = Some(v);
            }
            DataOp::UnsliceCols {
                chip,
                src,
                dst,
                spec,
                index,
            } => {
                let sub = state[src.0][chip.index()]
                    .as_ref()
                    .expect("unslice source")
                    .clone();
                let out = state[dst.0][chip.index()]
                    .as_mut()
                    .expect("unslice destination is materialized");
                unslice_cols_into(out, *spec, *index, &sub);
            }
            DataOp::UnsliceRows {
                chip,
                src,
                dst,
                spec,
                index,
            } => {
                let sub = state[src.0][chip.index()]
                    .as_ref()
                    .expect("unslice source")
                    .clone();
                let out = state[dst.0][chip.index()]
                    .as_mut()
                    .expect("unslice destination is materialized");
                unslice_rows_into(out, *spec, *index, &sub);
            }
            DataOp::AllGather { src, dst, axis } => {
                let shards: Vec<Matrix> = state[src.0]
                    .iter()
                    .map(|m| m.clone().expect("all-gather source"))
                    .collect();
                for (chip, v) in all_gather(&self.mesh, *axis, &shards)
                    .into_iter()
                    .enumerate()
                {
                    state[dst.0][chip] = Some(v);
                }
            }
            DataOp::ReduceScatter { src, dst, axis } => {
                let partials: Vec<Matrix> = state[src.0]
                    .iter()
                    .map(|m| m.clone().expect("reduce-scatter source"))
                    .collect();
                for (chip, v) in reduce_scatter(&self.mesh, *axis, &partials)
                    .into_iter()
                    .enumerate()
                {
                    state[dst.0][chip] = Some(v);
                }
            }
            DataOp::Carries { .. } => {}
        }
    }
}

/// Records data annotations while forwarding op emission to the sim's
/// [`ProgramBuilder`].
///
/// The builder deliberately does **not** wrap the `ProgramBuilder` API:
/// emission code calls [`PlanBuilder::sim`] for ops (the exact calls the
/// old schedule builders made, so lowered programs stay bit-for-bit
/// identical) and [`PlanBuilder::attach`] / [`PlanBuilder::anchor`] for
/// the data side.
#[derive(Debug)]
pub struct PlanBuilder<'a> {
    sim: &'a mut ProgramBuilder,
    mesh: Torus2d,
    regs: Vec<RegInfo>,
    actions: Vec<PlanAction>,
}

impl<'a> PlanBuilder<'a> {
    /// Wraps an existing program builder.
    pub fn new(sim: &'a mut ProgramBuilder) -> Self {
        let mesh = sim.mesh().clone();
        PlanBuilder {
            sim,
            mesh,
            regs: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// The mesh the plan targets.
    pub fn mesh(&self) -> &Torus2d {
        &self.mesh
    }

    /// The wrapped program builder, for op emission.
    pub fn sim(&mut self) -> &mut ProgramBuilder {
        self.sim
    }

    fn new_reg(&mut self, rows: usize, cols: usize, init: RegInit) -> Reg {
        let id = Reg(self.regs.len());
        self.regs.push(RegInfo { rows, cols, init });
        id
    }

    /// A register pre-loaded from the `A` input shard grid
    /// (`rows × cols` per chip).
    pub fn input_a(&mut self, rows: usize, cols: usize) -> Reg {
        self.new_reg(rows, cols, RegInit::InputA)
    }

    /// A register pre-loaded from the `B` input shard grid.
    pub fn input_b(&mut self, rows: usize, cols: usize) -> Reg {
        self.new_reg(rows, cols, RegInit::InputB)
    }

    /// A zero-initialized accumulator register.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Reg {
        self.new_reg(rows, cols, RegInit::Zeros)
    }

    /// An empty register, materialized by its first write.
    pub fn reg(&mut self, rows: usize, cols: usize) -> Reg {
        self.new_reg(rows, cols, RegInit::Empty)
    }

    /// An empty register shaped like the AllGather of `src` over `axis`.
    pub fn gathered(&mut self, src: Reg, axis: CommAxis) -> Reg {
        let info = self.regs[src.0];
        let (rows, cols) = match axis {
            CommAxis::InterRow => (info.rows * self.mesh.rows(), info.cols),
            CommAxis::InterCol => (info.rows, info.cols * self.mesh.cols()),
        };
        self.new_reg(rows, cols, RegInit::Empty)
    }

    /// Creates an action with no anchored ops yet (for cluster actions
    /// spanning the per-chip emission loop).
    pub fn action(&mut self, data: DataOp) -> ActionId {
        let id = ActionId(self.actions.len());
        self.actions.push(PlanAction {
            ops: Vec::new(),
            data,
        });
        id
    }

    /// Anchors `op` to an existing action.
    pub fn anchor(&mut self, action: ActionId, op: OpId) {
        self.actions[action.0].ops.push(op);
    }

    /// Creates an action anchored to a single op.
    pub fn attach(&mut self, op: OpId, data: DataOp) {
        self.actions.push(PlanAction {
            ops: vec![op],
            data,
        });
    }

    fn finish(self) -> (Vec<RegInfo>, Vec<PlanAction>) {
        (self.regs, self.actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_sim::CollectiveKind;
    use meshslice_tensor::GemmShape;

    /// Hand-builds a 1D tensor-parallel plan on a 1×2 mesh: all-gather the
    /// column-sharded A, then each chip multiplies by its own B shard.
    /// Also returns the emitted collective op ids.
    fn tiny_plan(mesh: &Torus2d) -> (Plan, Vec<OpId>) {
        let mut ag_ops = Vec::new();
        let plan = Plan::build(mesh, |pb| {
            let a = pb.input_a(2, 2);
            let b = pb.input_b(4, 2);
            let ga = pb.gathered(a, CommAxis::InterCol);
            let c = pb.zeros(2, 2);
            let ag = pb.action(DataOp::AllGather {
                src: a,
                dst: ga,
                axis: CommAxis::InterCol,
            });
            let tag = pb.sim().next_tag();
            for chip in pb.mesh().clone().chips() {
                let op = pb.sim().collective(
                    chip,
                    tag,
                    CollectiveKind::AllGather,
                    CommAxis::InterCol,
                    16,
                    2,
                    &[],
                );
                ag_ops.push(op);
                pb.anchor(ag, op);
                let g = pb.sim().gemm(chip, GemmShape::new(2, 2, 4), &[op]);
                pb.attach(
                    g,
                    DataOp::Compute {
                        steps: vec![MatmulStep {
                            kind: MatKind::Ab,
                            lhs: TileRead::whole(ga, chip),
                            rhs: TileRead::whole(b, chip),
                            dst: c,
                            dst_chip: chip,
                            dst_off: (0, 0),
                        }],
                    },
                );
            }
            Ok(c)
        })
        .unwrap();
        (plan, ag_ops)
    }

    #[test]
    fn hand_built_plan_interprets_to_dense_gemm() {
        let mesh = Torus2d::new(1, 2);
        let (plan, _) = tiny_plan(&mesh);
        assert_eq!(plan.program().len(), 4);
        let a_global = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f32);
        let b_global = Matrix::from_fn(4, 4, |i, j| (j * 4 + i) as f32);
        let a = ShardGrid::partition(&a_global, 1, 2);
        let b = ShardGrid::partition(&b_global, 1, 2);
        let got = plan.interpret(&a, &b).unwrap().assemble();
        let expect = dense::matmul(&a_global, &b_global);
        assert!(got.approx_eq(&expect, 1e-6));
    }

    #[test]
    fn annotations_anchor_to_ops() {
        let mesh = Torus2d::new(1, 2);
        let (plan, ag_ops) = tiny_plan(&mesh);
        assert_eq!(ag_ops.len(), 2);
        let anns = plan.annotations_for(ag_ops[0]);
        assert_eq!(anns.len(), 1);
        assert!(matches!(anns[0].data, DataOp::AllGather { .. }));
        // The cluster action is anchored to both chips' collective ops.
        assert_eq!(anns[0].ops, ag_ops);
    }
}
