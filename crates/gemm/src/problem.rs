//! Distributed GeMM problem definitions: dataflows and shard layouts.

use std::fmt;

use meshslice_mesh::{CommAxis, MeshShape, Torus2d};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::{GemmShape, Matrix};

use crate::error::{ensure_divides, GemmError};

/// The three 2D GeMM dataflows of the paper's Figure 1.
///
/// In each dataflow one matrix stays put and the other two move:
///
/// | Dataflow | Stationary | Result | `A` stored as | `B` stored as |
/// |---|---|---|---|---|
/// | `Os` (output-stationary) | `C` | `C = A·B` | `M × K` | `K × N` |
/// | `Ls` (left-stationary) | `A` | `C = A·Bᵀ` | `M × K` | `N × K` |
/// | `Rs` (right-stationary) | `B` | `C = Aᵀ·B` | `K × M` | `K × N` |
///
/// Every stored matrix is sharded rows-over-mesh-rows and
/// columns-over-mesh-columns (§3.2.1: "partition the two outermost
/// dimensions").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Output-stationary: `C` stays, `A` moves inter-column, `B` inter-row.
    Os,
    /// Left-stationary: `A` stays, `B` moves inter-row, `C` inter-column.
    Ls,
    /// Right-stationary: `B` stays, `A` moves inter-column, `C` inter-row.
    Rs,
}

impl Dataflow {
    /// All three dataflows.
    pub const ALL: [Dataflow; 3] = [Dataflow::Os, Dataflow::Ls, Dataflow::Rs];
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataflow::Os => write!(f, "OS"),
            Dataflow::Ls => write!(f, "LS"),
            Dataflow::Rs => write!(f, "RS"),
        }
    }
}

/// A 2D distributed GeMM problem: a global shape plus a dataflow.
///
/// The logical product is always `C[M×N]` contracted over `K`; the dataflow
/// determines how `A` and `B` are stored (see [`Dataflow`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GemmProblem {
    /// The global `(M, N, K)`.
    pub shape: GemmShape,
    /// The dataflow (and therefore the shard layout).
    pub dataflow: Dataflow,
}

impl GemmProblem {
    /// Creates a problem.
    pub fn new(shape: GemmShape, dataflow: Dataflow) -> Self {
        GemmProblem { shape, dataflow }
    }

    /// Global storage dimensions of `A` as `(rows, cols)`.
    pub fn a_dims(&self) -> (usize, usize) {
        let GemmShape { m, n: _, k } = self.shape;
        match self.dataflow {
            Dataflow::Os | Dataflow::Ls => (m, k),
            Dataflow::Rs => (k, m),
        }
    }

    /// Global storage dimensions of `B` as `(rows, cols)`.
    pub fn b_dims(&self) -> (usize, usize) {
        let GemmShape { m: _, n, k } = self.shape;
        match self.dataflow {
            Dataflow::Os | Dataflow::Rs => (k, n),
            Dataflow::Ls => (n, k),
        }
    }

    /// Global dimensions of `C` (always `(M, N)`).
    pub fn c_dims(&self) -> (usize, usize) {
        (self.shape.m, self.shape.n)
    }

    /// The mesh axis along which `A`'s shards are communicated.
    ///
    /// `A` always flows inter-column (within a mesh row) in the dataflows
    /// where it moves; in LS it is stationary.
    pub fn a_axis(&self) -> Option<CommAxis> {
        match self.dataflow {
            Dataflow::Os | Dataflow::Rs => Some(CommAxis::InterCol),
            Dataflow::Ls => None,
        }
    }

    /// The mesh axis along which `B`'s shards are communicated (`None` when
    /// stationary).
    pub fn b_axis(&self) -> Option<CommAxis> {
        match self.dataflow {
            Dataflow::Os | Dataflow::Ls => Some(CommAxis::InterRow),
            Dataflow::Rs => None,
        }
    }

    /// The mesh axis along which `C` partials are reduced (`None` for OS).
    pub fn c_axis(&self) -> Option<CommAxis> {
        match self.dataflow {
            Dataflow::Os => None,
            Dataflow::Ls => Some(CommAxis::InterCol),
            Dataflow::Rs => Some(CommAxis::InterRow),
        }
    }

    /// Checks that the mesh evenly divides all three stored matrices.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::Indivisible`] naming the offending dimension.
    pub fn check_divisible(&self, mesh: MeshShape) -> Result<(), GemmError> {
        for (name, (r, c)) in [
            ("A", self.a_dims()),
            ("B", self.b_dims()),
            ("C", self.c_dims()),
        ] {
            ensure_divides(&format!("{name} rows by mesh rows"), r, mesh.rows())?;
            ensure_divides(&format!("{name} cols by mesh cols"), c, mesh.cols())?;
        }
        Ok(())
    }

    /// Local shard dimensions of `A` on a mesh.
    pub fn a_shard_dims(&self, mesh: MeshShape) -> (usize, usize) {
        let (r, c) = self.a_dims();
        (r / mesh.rows(), c / mesh.cols())
    }

    /// Local shard dimensions of `B` on a mesh.
    pub fn b_shard_dims(&self, mesh: MeshShape) -> (usize, usize) {
        let (r, c) = self.b_dims();
        (r / mesh.rows(), c / mesh.cols())
    }

    /// Local shard dimensions of `C` on a mesh.
    pub fn c_shard_dims(&self, mesh: MeshShape) -> (usize, usize) {
        let (r, c) = self.c_dims();
        (r / mesh.rows(), c / mesh.cols())
    }

    /// Bytes of one `A` shard.
    pub fn a_shard_bytes(&self, mesh: MeshShape, elem_bytes: usize) -> u64 {
        let (r, c) = self.a_shard_dims(mesh);
        (r * c * elem_bytes) as u64
    }

    /// Bytes of one `B` shard.
    pub fn b_shard_bytes(&self, mesh: MeshShape, elem_bytes: usize) -> u64 {
        let (r, c) = self.b_shard_dims(mesh);
        (r * c * elem_bytes) as u64
    }

    /// Bytes of one `C` shard.
    pub fn c_shard_bytes(&self, mesh: MeshShape, elem_bytes: usize) -> u64 {
        let (r, c) = self.c_shard_dims(mesh);
        (r * c * elem_bytes) as u64
    }

    /// Rounds the shape up so every stored matrix divides the mesh (and,
    /// optionally, a slicing `unit` such as `S·B` divides the sliced
    /// dimension), returning the padded problem and the FLOP overhead
    /// ratio the padding introduces.
    ///
    /// Real deployments zero-pad ragged dimensions rather than reject
    /// them; the overhead ratio quantifies the wasted work.
    pub fn padded_for(&self, mesh: MeshShape, unit: usize) -> (GemmProblem, f64) {
        let unit = unit.max(1);
        let round = |dim: usize, div: usize| dim.div_ceil(div) * div;
        let m = round(self.shape.m, mesh.rows() * mesh.cols());
        let n = round(self.shape.n, mesh.rows() * mesh.cols());
        // The sliced dimension additionally needs the slicing unit on both
        // of its per-chip extents.
        let k = round(self.shape.k, mesh.rows() * mesh.cols() * unit);
        let padded = GemmProblem::new(GemmShape::new(m, n, k), self.dataflow);
        let overhead = padded.shape.flops() as f64 / self.shape.flops() as f64 - 1.0;
        (padded, overhead)
    }

    /// Generates random global inputs partitioned over the mesh.
    ///
    /// # Panics
    ///
    /// Panics if the mesh does not divide the matrices (use
    /// [`check_divisible`](Self::check_divisible) first in fallible code).
    pub fn random_inputs(&self, mesh: &Torus2d, seed: u64) -> (ShardGrid, ShardGrid) {
        let (ar, ac) = self.a_dims();
        let (br, bc) = self.b_dims();
        let a = Matrix::random(ar, ac, seed);
        let b = Matrix::random(br, bc, seed.wrapping_add(1));
        (
            ShardGrid::partition(&a, mesh.rows(), mesh.cols()),
            ShardGrid::partition(&b, mesh.rows(), mesh.cols()),
        )
    }

    /// The dense reference result for globally assembled inputs.
    ///
    /// # Panics
    ///
    /// Panics if the input dimensions do not match the problem.
    pub fn reference(&self, a_global: &Matrix, b_global: &Matrix) -> Matrix {
        assert_eq!(a_global.dims(), self.a_dims(), "A dims mismatch");
        assert_eq!(b_global.dims(), self.b_dims(), "B dims mismatch");
        match self.dataflow {
            Dataflow::Os => dense::matmul(a_global, b_global),
            Dataflow::Ls => dense::matmul_a_bt(a_global, b_global),
            Dataflow::Rs => dense::matmul_at_b(a_global, b_global),
        }
    }
}

impl fmt::Display for GemmProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.dataflow, self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: GemmShape = GemmShape { m: 8, n: 12, k: 4 };

    #[test]
    fn storage_dims_follow_dataflow() {
        let os = GemmProblem::new(SHAPE, Dataflow::Os);
        assert_eq!(os.a_dims(), (8, 4));
        assert_eq!(os.b_dims(), (4, 12));
        let ls = GemmProblem::new(SHAPE, Dataflow::Ls);
        assert_eq!(ls.a_dims(), (8, 4));
        assert_eq!(ls.b_dims(), (12, 4));
        let rs = GemmProblem::new(SHAPE, Dataflow::Rs);
        assert_eq!(rs.a_dims(), (4, 8));
        assert_eq!(rs.b_dims(), (4, 12));
        for df in Dataflow::ALL {
            assert_eq!(GemmProblem::new(SHAPE, df).c_dims(), (8, 12));
        }
    }

    #[test]
    fn flow_axes_match_figure_1() {
        let os = GemmProblem::new(SHAPE, Dataflow::Os);
        assert_eq!(os.a_axis(), Some(CommAxis::InterCol));
        assert_eq!(os.b_axis(), Some(CommAxis::InterRow));
        assert_eq!(os.c_axis(), None);
        let ls = GemmProblem::new(SHAPE, Dataflow::Ls);
        assert_eq!(ls.a_axis(), None);
        assert_eq!(ls.b_axis(), Some(CommAxis::InterRow));
        assert_eq!(ls.c_axis(), Some(CommAxis::InterCol));
        let rs = GemmProblem::new(SHAPE, Dataflow::Rs);
        assert_eq!(rs.a_axis(), Some(CommAxis::InterCol));
        assert_eq!(rs.b_axis(), None);
        assert_eq!(rs.c_axis(), Some(CommAxis::InterRow));
    }

    #[test]
    fn reference_matches_dense_for_all_dataflows() {
        let a = Matrix::random(8, 4, 1);
        let b = Matrix::random(4, 12, 2);
        let os = GemmProblem::new(SHAPE, Dataflow::Os).reference(&a, &b);
        let ls = GemmProblem::new(SHAPE, Dataflow::Ls).reference(&a, &b.transpose());
        let rs = GemmProblem::new(SHAPE, Dataflow::Rs).reference(&a.transpose(), &b);
        assert!(ls.approx_eq(&os, 1e-5));
        assert!(rs.approx_eq(&os, 1e-5));
    }

    #[test]
    fn divisibility_check() {
        let p = GemmProblem::new(SHAPE, Dataflow::Os);
        assert!(p.check_divisible(MeshShape::new(2, 2)).is_ok());
        assert!(p.check_divisible(MeshShape::new(3, 2)).is_err());
    }

    #[test]
    fn shard_byte_accounting() {
        let p = GemmProblem::new(SHAPE, Dataflow::Os);
        let mesh = MeshShape::new(2, 2);
        assert_eq!(p.a_shard_dims(mesh), (4, 2));
        assert_eq!(p.a_shard_bytes(mesh, 2), 16);
        assert_eq!(p.c_shard_dims(mesh), (4, 6));
    }

    #[test]
    fn padding_makes_any_shape_divisible() {
        let mesh = MeshShape::new(4, 2);
        let ragged = GemmProblem::new(GemmShape::new(100, 37, 53), Dataflow::Os);
        assert!(ragged.check_divisible(mesh).is_err());
        let (padded, overhead) = ragged.padded_for(mesh, 8);
        assert!(padded.check_divisible(mesh).is_ok());
        assert!(padded.shape.k % (4 * 2 * 8) == 0);
        assert!(overhead > 0.0);
        // Already-divisible shapes pad to themselves.
        let clean = GemmProblem::new(GemmShape::new(64, 64, 64), Dataflow::Ls);
        let (same, zero) = clean.padded_for(MeshShape::new(2, 2), 1);
        assert_eq!(same, clean);
        assert_eq!(zero, 0.0);
    }

    #[test]
    fn random_inputs_partition_cleanly() {
        let mesh = Torus2d::new(2, 2);
        let p = GemmProblem::new(SHAPE, Dataflow::Ls);
        let (a, b) = p.random_inputs(&mesh, 7);
        assert_eq!(a.global_dims(), (8, 4));
        assert_eq!(b.global_dims(), (12, 4));
    }
}
