//! Pre-refactor executors and schedule builders, kept verbatim as the
//! golden reference for the plan IR.
//!
//! Each function here is the body the corresponding algorithm had before
//! `execute`/`schedule` were unified behind [`Plan`](crate::plan::Plan):
//! a bespoke functional executor moving real shards, and a bespoke
//! schedule builder emitting sim ops. The golden tests assert that the
//! plan-lowered [`Program`](meshslice_sim::Program) is bit-for-bit
//! identical to the reference schedule (same ops, same order, same tags,
//! same deps — hence the same `SimReport`), and that the plan interpreter
//! matches the reference executor numerically.
//!
//! This module is test-only: production code has exactly one lowering.

use meshslice_collectives::{all_gather, reduce_scatter};
use meshslice_mesh::Torus2d;
use meshslice_sim::{CollectiveKind, Program, ProgramBuilder};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::{GemmShape, Matrix};

use crate::algorithm::DistributedGemm;
use crate::collective::grid_state;
use crate::error::GemmError;
use crate::problem::{Dataflow, GemmProblem};

// ---------------------------------------------------------------------------
// Collective (§2.3.4)
// ---------------------------------------------------------------------------

pub(crate) fn execute_collective(
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<ShardGrid, GemmError> {
    problem.check_divisible(mesh.shape())?;
    let a_state = grid_state(a);
    let b_state = grid_state(b);
    let shards = match problem.dataflow {
        Dataflow::Os => {
            let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_state);
            let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_state);
            ga.iter()
                .zip(&gb)
                .map(|(x, y)| dense::matmul(x, y))
                .collect()
        }
        Dataflow::Ls => {
            let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_state);
            let partial: Vec<Matrix> = a_state
                .iter()
                .zip(&gb)
                .map(|(x, y)| dense::matmul_a_bt(x, y))
                .collect();
            reduce_scatter(mesh, problem.c_axis().unwrap(), &partial)
        }
        Dataflow::Rs => {
            let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_state);
            let partial: Vec<Matrix> = ga
                .iter()
                .zip(&b_state)
                .map(|(x, y)| dense::matmul_at_b(x, y))
                .collect();
            reduce_scatter(mesh, problem.c_axis().unwrap(), &partial)
        }
    };
    Ok(ShardGrid::from_shards(mesh.rows(), mesh.cols(), shards))
}

pub(crate) fn schedule_collective(
    mesh: &Torus2d,
    problem: GemmProblem,
    elem_bytes: usize,
) -> Result<Program, GemmError> {
    problem.check_divisible(mesh.shape())?;
    let shape = problem.shape;
    let (pr, pc) = (mesh.rows(), mesh.cols());
    let mut b = ProgramBuilder::new(mesh);
    match problem.dataflow {
        Dataflow::Os => {
            let tag_a = b.next_tag();
            let tag_b = b.next_tag();
            let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
            let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
            let local = GemmShape::new(shape.m / pr, shape.n / pc, shape.k);
            for chip in mesh.chips() {
                let ag_a = b.collective(
                    chip,
                    tag_a,
                    CollectiveKind::AllGather,
                    problem.a_axis().unwrap(),
                    a_bytes,
                    2,
                    &[],
                );
                let ag_b = b.collective(
                    chip,
                    tag_b,
                    CollectiveKind::AllGather,
                    problem.b_axis().unwrap(),
                    b_bytes,
                    2,
                    &[],
                );
                b.gemm(chip, local, &[ag_a, ag_b]);
            }
        }
        Dataflow::Ls => {
            let tag_b = b.next_tag();
            let tag_c = b.next_tag();
            let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
            let c_bytes = problem.c_shard_bytes(mesh.shape(), elem_bytes);
            let local = GemmShape::new(shape.m / pr, shape.n, shape.k / pc);
            for chip in mesh.chips() {
                let ag_b = b.collective(
                    chip,
                    tag_b,
                    CollectiveKind::AllGather,
                    problem.b_axis().unwrap(),
                    b_bytes,
                    2,
                    &[],
                );
                let gemm = b.gemm(chip, local, &[ag_b]);
                b.collective(
                    chip,
                    tag_c,
                    CollectiveKind::ReduceScatter,
                    problem.c_axis().unwrap(),
                    c_bytes,
                    2,
                    &[gemm],
                );
            }
        }
        Dataflow::Rs => {
            let tag_a = b.next_tag();
            let tag_c = b.next_tag();
            let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
            let c_bytes = problem.c_shard_bytes(mesh.shape(), elem_bytes);
            let local = GemmShape::new(shape.m, shape.n / pc, shape.k / pr);
            for chip in mesh.chips() {
                let ag_a = b.collective(
                    chip,
                    tag_a,
                    CollectiveKind::AllGather,
                    problem.a_axis().unwrap(),
                    a_bytes,
                    2,
                    &[],
                );
                let gemm = b.gemm(chip, local, &[ag_a]);
                b.collective(
                    chip,
                    tag_c,
                    CollectiveKind::ReduceScatter,
                    problem.c_axis().unwrap(),
                    c_bytes,
                    2,
                    &[gemm],
                );
            }
        }
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------------
// MeshSlice (§3.1)
// ---------------------------------------------------------------------------

pub(crate) fn execute_meshslice(
    algo: &crate::MeshSlice,
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<ShardGrid, GemmError> {
    use meshslice_tensor::slice::{slice_cols, slice_rows, unslice_cols_into, unslice_rows_into};

    use crate::algorithm::DistributedGemm;

    algo.check(mesh, problem)?;
    crate::algorithm::check_inputs(mesh, problem, a, b)?;
    let spec = algo.spec();
    let s_count = algo.slice_count();
    let a_state = grid_state(a);
    let b_state = grid_state(b);
    let (cr, cc) = problem.c_shard_dims(mesh.shape());
    let mut c_state: Vec<Matrix> = vec![Matrix::zeros(cr, cc); mesh.num_chips()];

    for s in 0..s_count {
        match problem.dataflow {
            Dataflow::Os => {
                let a_s: Vec<Matrix> = a_state.iter().map(|x| slice_cols(x, spec, s)).collect();
                let b_s: Vec<Matrix> = b_state.iter().map(|x| slice_rows(x, spec, s)).collect();
                let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_s);
                let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_s);
                for (c, (x, y)) in c_state.iter_mut().zip(ga.iter().zip(&gb)) {
                    dense::matmul_acc(c, x, y);
                }
            }
            Dataflow::Ls => {
                let b_s: Vec<Matrix> = b_state.iter().map(|x| slice_rows(x, spec, s)).collect();
                let gb = all_gather(mesh, problem.b_axis().unwrap(), &b_s);
                let partial: Vec<Matrix> = a_state
                    .iter()
                    .zip(&gb)
                    .map(|(x, y)| dense::matmul_a_bt(x, y))
                    .collect();
                let scattered = reduce_scatter(mesh, problem.c_axis().unwrap(), &partial);
                for (c, cs) in c_state.iter_mut().zip(&scattered) {
                    unslice_cols_into(c, spec, s, cs);
                }
            }
            Dataflow::Rs => {
                let a_s: Vec<Matrix> = a_state.iter().map(|x| slice_cols(x, spec, s)).collect();
                let ga = all_gather(mesh, problem.a_axis().unwrap(), &a_s);
                let partial: Vec<Matrix> = ga
                    .iter()
                    .zip(&b_state)
                    .map(|(x, y)| dense::matmul_at_b(x, y))
                    .collect();
                let scattered = reduce_scatter(mesh, problem.c_axis().unwrap(), &partial);
                for (c, cs) in c_state.iter_mut().zip(&scattered) {
                    unslice_rows_into(c, spec, s, cs);
                }
            }
        }
    }
    Ok(ShardGrid::from_shards(mesh.rows(), mesh.cols(), c_state))
}

pub(crate) fn schedule_meshslice(
    algo: &crate::MeshSlice,
    mesh: &Torus2d,
    problem: GemmProblem,
    elem_bytes: usize,
) -> Result<Program, GemmError> {
    use meshslice_sim::OpId;

    use crate::algorithm::DistributedGemm;

    let mut b = ProgramBuilder::new(mesh);
    algo.check(mesh, problem)?;
    let s_count = algo.slice_count() as u64;
    let shape = problem.shape;
    let (pr, pc) = (mesh.rows(), mesh.cols());
    let mesh_shape = mesh.shape();
    let a_sub = problem.a_shard_bytes(mesh_shape, elem_bytes) / s_count;
    let b_sub = problem.b_shard_bytes(mesh_shape, elem_bytes) / s_count;
    let c_sub = problem.c_shard_bytes(mesh_shape, elem_bytes) / s_count;
    let slicing = algo.slice_count() > 1;
    let mut last_gemm: Vec<Option<OpId>> = vec![None; mesh.num_chips()];

    for _s in 0..algo.slice_count() {
        match problem.dataflow {
            Dataflow::Os => {
                let tag_a = b.next_tag();
                let tag_b = b.next_tag();
                let local =
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / algo.slice_count());
                for chip in mesh.chips() {
                    let a_deps = if slicing {
                        vec![b.slice_copy(chip, a_sub, &[])]
                    } else {
                        Vec::new()
                    };
                    let ag_a = b.collective(
                        chip,
                        tag_a,
                        CollectiveKind::AllGather,
                        problem.a_axis().unwrap(),
                        a_sub,
                        2,
                        &a_deps,
                    );
                    let b_deps = if slicing {
                        vec![b.slice_copy(chip, b_sub, &[])]
                    } else {
                        Vec::new()
                    };
                    let ag_b = b.collective(
                        chip,
                        tag_b,
                        CollectiveKind::AllGather,
                        problem.b_axis().unwrap(),
                        b_sub,
                        2,
                        &b_deps,
                    );
                    let mut gemm_deps = vec![ag_a, ag_b];
                    gemm_deps.extend(last_gemm[chip.index()]);
                    last_gemm[chip.index()] = Some(b.gemm(chip, local, &gemm_deps));
                }
            }
            Dataflow::Ls => {
                let tag_b = b.next_tag();
                let tag_c = b.next_tag();
                let local =
                    GemmShape::new(shape.m / pr, shape.n / algo.slice_count(), shape.k / pc);
                for chip in mesh.chips() {
                    let b_deps = if slicing {
                        vec![b.slice_copy(chip, b_sub, &[])]
                    } else {
                        Vec::new()
                    };
                    let ag_b = b.collective(
                        chip,
                        tag_b,
                        CollectiveKind::AllGather,
                        problem.b_axis().unwrap(),
                        b_sub,
                        2,
                        &b_deps,
                    );
                    let mut gemm_deps = vec![ag_b];
                    gemm_deps.extend(last_gemm[chip.index()]);
                    let gemm = b.gemm(chip, local, &gemm_deps);
                    last_gemm[chip.index()] = Some(gemm);
                    let rds = b.collective(
                        chip,
                        tag_c,
                        CollectiveKind::ReduceScatter,
                        problem.c_axis().unwrap(),
                        c_sub,
                        2,
                        &[gemm],
                    );
                    if slicing {
                        b.slice_copy(chip, c_sub, &[rds]);
                    }
                }
            }
            Dataflow::Rs => {
                let tag_a = b.next_tag();
                let tag_c = b.next_tag();
                let local =
                    GemmShape::new(shape.m / algo.slice_count(), shape.n / pc, shape.k / pr);
                for chip in mesh.chips() {
                    let a_deps = if slicing {
                        vec![b.slice_copy(chip, a_sub, &[])]
                    } else {
                        Vec::new()
                    };
                    let ag_a = b.collective(
                        chip,
                        tag_a,
                        CollectiveKind::AllGather,
                        problem.a_axis().unwrap(),
                        a_sub,
                        2,
                        &a_deps,
                    );
                    let mut gemm_deps = vec![ag_a];
                    gemm_deps.extend(last_gemm[chip.index()]);
                    let gemm = b.gemm(chip, local, &gemm_deps);
                    last_gemm[chip.index()] = Some(gemm);
                    let rds = b.collective(
                        chip,
                        tag_c,
                        CollectiveKind::ReduceScatter,
                        problem.c_axis().unwrap(),
                        c_sub,
                        2,
                        &[gemm],
                    );
                    if slicing {
                        b.slice_copy(chip, c_sub, &[rds]);
                    }
                }
            }
        }
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------------
// Cannon (§2.3.2)
// ---------------------------------------------------------------------------

pub(crate) fn execute_cannon(
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<ShardGrid, GemmError> {
    use meshslice_collectives::{shift, shift_by};
    use meshslice_mesh::CommAxis;

    use crate::algorithm::DistributedGemm;

    crate::Cannon.check(mesh, problem)?;
    crate::algorithm::check_inputs(mesh, problem, a, b)?;
    let p = mesh.rows();
    // Skew: chip (i, j) starts with A_{i, j+i} and B_{i+j, j}.
    let mut a_cur = shift_by(
        mesh,
        CommAxis::InterCol,
        |c| (p - c.row() % p) % p,
        &grid_state(a),
    );
    let mut b_cur = shift_by(
        mesh,
        CommAxis::InterRow,
        |c| (p - c.col() % p) % p,
        &grid_state(b),
    );
    let (cr, cc) = problem.c_shard_dims(mesh.shape());
    let mut c_state: Vec<Matrix> = vec![Matrix::zeros(cr, cc); mesh.num_chips()];
    for step in 0..p {
        for (c, (x, y)) in c_state.iter_mut().zip(a_cur.iter().zip(&b_cur)) {
            dense::matmul_acc(c, x, y);
        }
        if step + 1 < p {
            a_cur = shift(mesh, CommAxis::InterCol, p - 1, &a_cur);
            b_cur = shift(mesh, CommAxis::InterRow, p - 1, &b_cur);
        }
    }
    Ok(ShardGrid::from_shards(p, p, c_state))
}

pub(crate) fn schedule_cannon(
    mesh: &Torus2d,
    problem: GemmProblem,
    elem_bytes: usize,
) -> Result<Program, GemmError> {
    use meshslice_mesh::LinkDir;
    use meshslice_sim::OpId;

    use crate::algorithm::DistributedGemm;

    crate::Cannon.check(mesh, problem)?;
    let p = mesh.rows();
    let shape = problem.shape;
    let a_bytes = problem.a_shard_bytes(mesh.shape(), elem_bytes);
    let b_bytes = problem.b_shard_bytes(mesh.shape(), elem_bytes);
    let local = GemmShape::new(shape.m / p, shape.n / p, shape.k / p);
    let mut b = ProgramBuilder::new(mesh);
    for chip in mesh.chips() {
        let coord = mesh.coord_of(chip);
        let mut a_prev: Option<OpId> = None;
        for _ in 0..coord.row() {
            let deps: Vec<OpId> = a_prev.into_iter().collect();
            a_prev = Some(b.send_recv(chip, LinkDir::ColMinus, a_bytes, &deps));
        }
        let mut b_prev: Option<OpId> = None;
        for _ in 0..coord.col() {
            let deps: Vec<OpId> = b_prev.into_iter().collect();
            b_prev = Some(b.send_recv(chip, LinkDir::RowMinus, b_bytes, &deps));
        }
        for step in 0..p {
            let mut deps: Vec<OpId> = Vec::new();
            deps.extend(a_prev);
            deps.extend(b_prev);
            b.gemm(chip, local, &deps);
            if step + 1 < p {
                let a_deps: Vec<OpId> = a_prev.into_iter().collect();
                a_prev = Some(b.send_recv(chip, LinkDir::ColMinus, a_bytes, &a_deps));
                let b_deps: Vec<OpId> = b_prev.into_iter().collect();
                b_prev = Some(b.send_recv(chip, LinkDir::RowMinus, b_bytes, &b_deps));
            }
        }
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------------
// 1D baselines (§4.3)
// ---------------------------------------------------------------------------

pub(crate) fn rotation_schedule_reference(
    mesh: &Torus2d,
    shard_bytes: u64,
    per_arrival: GemmShape,
    merge_dim: fn(GemmShape, usize) -> GemmShape,
    groups: Option<usize>,
) -> Program {
    use meshslice_mesh::LinkDir;
    use meshslice_sim::OpId;

    let n = mesh.rows();
    let mut b = ProgramBuilder::new(mesh);
    let fwd = (n - 1).div_ceil(2);
    let bwd = (n - 1) / 2;
    let total = n;
    let groups = match groups {
        Some(g) if g <= total && total.is_multiple_of(g) => g,
        _ => total,
    };
    let per_group = total / groups;
    for chip in mesh.chips() {
        let mut fwd_prev: Option<OpId> = None;
        let mut bwd_prev: Option<OpId> = None;
        let mut fwd_done = 0usize;
        let mut bwd_done = 0usize;
        let mut arrivals = 0usize;
        for g in 0..groups {
            let target = ((g + 1) * per_group - 1).min(n - 1);
            while arrivals < target {
                if fwd_done <= bwd_done && fwd_done < fwd {
                    let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                    fwd_prev = Some(b.send_recv(chip, LinkDir::RowPlus, shard_bytes, &deps));
                    fwd_done += 1;
                } else if bwd_done < bwd {
                    let deps: Vec<OpId> = bwd_prev.into_iter().collect();
                    bwd_prev = Some(b.send_recv(chip, LinkDir::RowMinus, shard_bytes, &deps));
                    bwd_done += 1;
                } else {
                    let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                    fwd_prev = Some(b.send_recv(chip, LinkDir::RowPlus, shard_bytes, &deps));
                    fwd_done += 1;
                }
                arrivals += 1;
            }
            let mut deps: Vec<OpId> = Vec::new();
            deps.extend(fwd_prev);
            deps.extend(bwd_prev);
            b.gemm(chip, merge_dim(per_arrival, per_group), &deps);
        }
    }
    b.build()
}

pub(crate) fn execute_one_dim_tp(
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<ShardGrid, GemmError> {
    use meshslice_mesh::CommAxis;

    use crate::algorithm::DistributedGemm;

    crate::OneDimTp::new().check(mesh, problem)?;
    let n = mesh.rows();
    let a_state: Vec<Matrix> = a.iter().map(|(_, s)| s.clone()).collect();
    let ga = all_gather(mesh, CommAxis::InterRow, &a_state);
    let c: Vec<Matrix> = (0..n)
        .map(|i| dense::matmul(&ga[i], b.shard(i, 0)))
        .collect();
    Ok(ShardGrid::from_shards(n, 1, c))
}

pub(crate) fn schedule_one_dim_tp(
    algo: &crate::OneDimTp,
    mesh: &Torus2d,
    problem: GemmProblem,
    elem_bytes: usize,
) -> Result<Program, GemmError> {
    use crate::algorithm::DistributedGemm;

    algo.check(mesh, problem)?;
    let n = mesh.rows();
    let GemmShape { m, n: nn, k } = problem.shape;
    let shard_bytes = (m / n * k * elem_bytes) as u64;
    let per_arrival = GemmShape::new(m / n, nn / n, k);
    Ok(rotation_schedule_reference(
        mesh,
        shard_bytes,
        per_arrival,
        |s, c| GemmShape::new(s.m * c, s.n, s.k),
        algo.unroll(),
    ))
}

pub(crate) fn execute_fsdp(
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<ShardGrid, GemmError> {
    use meshslice_mesh::CommAxis;

    use crate::algorithm::DistributedGemm;

    crate::Fsdp::new().check(mesh, problem)?;
    let n = mesh.rows();
    let b_state: Vec<Matrix> = b.iter().map(|(_, s)| s.clone()).collect();
    let gb = all_gather(mesh, CommAxis::InterRow, &b_state);
    let c: Vec<Matrix> = (0..n)
        .map(|i| dense::matmul(a.shard(i, 0), &gb[i]))
        .collect();
    Ok(ShardGrid::from_shards(n, 1, c))
}

pub(crate) fn schedule_fsdp(
    algo: &crate::Fsdp,
    mesh: &Torus2d,
    problem: GemmProblem,
    elem_bytes: usize,
) -> Result<Program, GemmError> {
    use crate::algorithm::DistributedGemm;

    algo.check(mesh, problem)?;
    let n = mesh.rows();
    let GemmShape { m, n: nn, k } = problem.shape;
    let shard_bytes = (k / n * nn * elem_bytes) as u64;
    let per_arrival = GemmShape::new(m / n, nn, k / n);
    Ok(rotation_schedule_reference(
        mesh,
        shard_bytes,
        per_arrival,
        |s, c| GemmShape::new(s.m, s.n, s.k * c),
        algo.unroll(),
    ))
}

// ---------------------------------------------------------------------------
// SUMMA (§2.3.3)
// ---------------------------------------------------------------------------

pub(crate) fn execute_summa(
    algo: &crate::Summa,
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<ShardGrid, GemmError> {
    use meshslice_collectives::{broadcast, reduce};
    use meshslice_mesh::CommAxis;

    algo.check(mesh, problem)?;
    crate::algorithm::check_inputs(mesh, problem, a, b)?;
    let p = algo.panels();
    let (pr, pc) = (mesh.rows(), mesh.cols());
    let a_state = grid_state(a);
    let b_state = grid_state(b);
    let (cr, cc) = problem.c_shard_dims(mesh.shape());
    let mut c_state: Vec<Matrix> = vec![Matrix::zeros(cr, cc); mesh.num_chips()];
    let shape = problem.shape;

    for panel in 0..p {
        let owner_row = panel / (p / pr);
        let owner_col = panel / (p / pc);
        match problem.dataflow {
            Dataflow::Os => {
                let k_p = shape.k / p;
                let a_off = panel * k_p - owner_col * (shape.k / pc);
                let a_panels: Vec<Matrix> = a_state
                    .iter()
                    .map(|x| x.block(0, a_off, x.rows(), k_p))
                    .collect();
                let ga = broadcast(mesh, CommAxis::InterCol, owner_col, &a_panels);
                let b_off = panel * k_p - owner_row * (shape.k / pr);
                let b_panels: Vec<Matrix> = b_state
                    .iter()
                    .map(|x| x.block(b_off, 0, k_p, x.cols()))
                    .collect();
                let gb = broadcast(mesh, CommAxis::InterRow, owner_row, &b_panels);
                for (c, (x, y)) in c_state.iter_mut().zip(ga.iter().zip(&gb)) {
                    dense::matmul_acc(c, x, y);
                }
            }
            Dataflow::Ls => {
                let n_p = shape.n / p;
                let b_off = panel * n_p - owner_row * (shape.n / pr);
                let b_panels: Vec<Matrix> = b_state
                    .iter()
                    .map(|x| x.block(b_off, 0, n_p, x.cols()))
                    .collect();
                let gb = broadcast(mesh, CommAxis::InterRow, owner_row, &b_panels);
                let partial: Vec<Matrix> = a_state
                    .iter()
                    .zip(&gb)
                    .map(|(x, y)| dense::matmul_a_bt(x, y))
                    .collect();
                let reduced = reduce(mesh, CommAxis::InterCol, owner_col, &partial);
                let c_off = panel * n_p - owner_col * (shape.n / pc);
                for chip in mesh.chips() {
                    if mesh.coord_of(chip).col() == owner_col {
                        c_state[chip.index()].add_block(0, c_off, &reduced[chip.index()]);
                    }
                }
            }
            Dataflow::Rs => {
                let m_p = shape.m / p;
                let a_off = panel * m_p - owner_col * (shape.m / pc);
                let a_panels: Vec<Matrix> = a_state
                    .iter()
                    .map(|x| x.block(0, a_off, x.rows(), m_p))
                    .collect();
                let ga = broadcast(mesh, CommAxis::InterCol, owner_col, &a_panels);
                let partial: Vec<Matrix> = ga
                    .iter()
                    .zip(&b_state)
                    .map(|(x, y)| dense::matmul_at_b(x, y))
                    .collect();
                let reduced = reduce(mesh, CommAxis::InterRow, owner_row, &partial);
                let c_off = panel * m_p - owner_row * (shape.m / pr);
                for chip in mesh.chips() {
                    if mesh.coord_of(chip).row() == owner_row {
                        c_state[chip.index()].add_block(c_off, 0, &reduced[chip.index()]);
                    }
                }
            }
        }
    }
    Ok(ShardGrid::from_shards(pr, pc, c_state))
}

pub(crate) fn schedule_summa(
    algo: &crate::Summa,
    mesh: &Torus2d,
    problem: GemmProblem,
    elem_bytes: usize,
) -> Result<Program, GemmError> {
    use meshslice_mesh::CommAxis;

    algo.check(mesh, problem)?;
    let p = algo.panels();
    let (pr, pc) = (mesh.rows(), mesh.cols());
    let shape = problem.shape;
    let eb = elem_bytes as u64;
    let mut b = ProgramBuilder::new(mesh);
    for _panel in 0..p {
        match problem.dataflow {
            Dataflow::Os => {
                let k_p = shape.k / p;
                let a_bytes = (shape.m / pr * k_p) as u64 * eb;
                let b_bytes = (k_p * shape.n / pc) as u64 * eb;
                let local = GemmShape::new(shape.m / pr, shape.n / pc, k_p);
                for chip in mesh.chips() {
                    let bc_a = b.pipelined_bcast(chip, CommAxis::InterCol, a_bytes, &[]);
                    let bc_b = b.pipelined_bcast(chip, CommAxis::InterRow, b_bytes, &[]);
                    b.gemm(chip, local, &[bc_a, bc_b]);
                }
            }
            Dataflow::Ls => {
                let n_p = shape.n / p;
                let b_bytes = (n_p * shape.k / pc) as u64 * eb;
                let c_bytes = (shape.m / pr * n_p) as u64 * eb;
                let local = GemmShape::new(shape.m / pr, n_p, shape.k / pc);
                for chip in mesh.chips() {
                    let bc_b = b.pipelined_bcast(chip, CommAxis::InterRow, b_bytes, &[]);
                    let gemm = b.gemm(chip, local, &[bc_b]);
                    b.pipelined_bcast(chip, CommAxis::InterCol, c_bytes, &[gemm]);
                }
            }
            Dataflow::Rs => {
                let m_p = shape.m / p;
                let a_bytes = (shape.k / pr * m_p) as u64 * eb;
                let c_bytes = (m_p * shape.n / pc) as u64 * eb;
                let local = GemmShape::new(m_p, shape.n / pc, shape.k / pr);
                for chip in mesh.chips() {
                    let bc_a = b.pipelined_bcast(chip, CommAxis::InterCol, a_bytes, &[]);
                    let gemm = b.gemm(chip, local, &[bc_a]);
                    b.pipelined_bcast(chip, CommAxis::InterRow, c_bytes, &[gemm]);
                }
            }
        }
    }
    Ok(b.build())
}

// ---------------------------------------------------------------------------
// Wang et al. (§2.3.1)
// ---------------------------------------------------------------------------

/// Ring reduce-scatter with interleaved per-panel compute: at round `t`,
/// the chip at ring position `c` computes its contribution to panel
/// `(c + p − 1 − t) mod p`, adds the accumulator received from upstream,
/// and passes it on. After `p` rounds every chip holds its own panel fully
/// reduced.
fn ring_reduce(
    mesh: &Torus2d,
    axis: meshslice_mesh::CommAxis,
    contribution: impl Fn(usize, usize) -> Matrix,
) -> Vec<Matrix> {
    use meshslice_collectives::shift;
    use meshslice_mesh::CommAxis;

    let p = mesh.ring_len(axis);
    let position = |chip: usize| {
        let coord = mesh.coord_of(meshslice_mesh::ChipId(chip));
        match axis {
            CommAxis::InterRow => coord.row(),
            CommAxis::InterCol => coord.col(),
        }
    };
    let mut carried: Option<Vec<Matrix>> = None;
    for t in 0..p {
        let acc: Vec<Matrix> = (0..mesh.num_chips())
            .map(|chip| {
                let q = (position(chip) + p - 1 - t) % p;
                let contr = contribution(chip, q);
                match &carried {
                    None => contr,
                    Some(rcv) => &rcv[chip] + &contr,
                }
            })
            .collect();
        if t + 1 < p {
            carried = Some(shift(mesh, axis, 1, &acc));
        } else {
            return acc;
        }
    }
    unreachable!("loop always returns on the last round")
}

pub(crate) fn execute_wang(
    algo: &crate::Wang,
    mesh: &Torus2d,
    problem: GemmProblem,
    a: &ShardGrid,
    b: &ShardGrid,
) -> Result<ShardGrid, GemmError> {
    use meshslice_collectives::shift;
    use meshslice_mesh::CommAxis;

    algo.check(mesh, problem)?;
    crate::algorithm::check_inputs(mesh, problem, a, b)?;
    let overlap = algo.resolve_overlap(mesh, problem);
    let shape = problem.shape;
    let (pr, pc) = (mesh.rows(), mesh.cols());
    let a_state = grid_state(a);
    let b_state = grid_state(b);
    let row_of = |chip: usize| mesh.coord_of(meshslice_mesh::ChipId(chip)).row();
    let col_of = |chip: usize| mesh.coord_of(meshslice_mesh::ChipId(chip)).col();

    let c_state: Vec<Matrix> = match (problem.dataflow, overlap) {
        (Dataflow::Os, CommAxis::InterCol) => {
            // Exposed: AG_row(B). Overlapped: rotate A shards along the
            // row, multiplying against the matching K panel of B_*j.
            let gb = all_gather(mesh, CommAxis::InterRow, &b_state);
            let k_p = shape.k / pc;
            let mut a_cur = a_state;
            let mut c: Vec<Matrix> =
                vec![Matrix::zeros(shape.m / pr, shape.n / pc); mesh.num_chips()];
            for t in 0..pc {
                for chip in 0..mesh.num_chips() {
                    let src = (col_of(chip) + pc - t) % pc;
                    let b_rows = gb[chip].block(src * k_p, 0, k_p, shape.n / pc);
                    dense::matmul_acc(&mut c[chip], &a_cur[chip], &b_rows);
                }
                if t + 1 < pc {
                    a_cur = shift(mesh, CommAxis::InterCol, 1, &a_cur);
                }
            }
            c
        }
        (Dataflow::Os, CommAxis::InterRow) => {
            let ga = all_gather(mesh, CommAxis::InterCol, &a_state);
            let k_p = shape.k / pr;
            let mut b_cur = b_state;
            let mut c: Vec<Matrix> =
                vec![Matrix::zeros(shape.m / pr, shape.n / pc); mesh.num_chips()];
            for t in 0..pr {
                for chip in 0..mesh.num_chips() {
                    let src = (row_of(chip) + pr - t) % pr;
                    let a_cols = ga[chip].block(0, src * k_p, shape.m / pr, k_p);
                    dense::matmul_acc(&mut c[chip], &a_cols, &b_cur[chip]);
                }
                if t + 1 < pr {
                    b_cur = shift(mesh, CommAxis::InterRow, 1, &b_cur);
                }
            }
            c
        }
        (Dataflow::Ls, CommAxis::InterCol) => {
            // Exposed: AG_row(B). Overlapped: ring reduce-scatter of C
            // along the row, one N panel per round.
            let gb = all_gather(mesh, CommAxis::InterRow, &b_state);
            let n_p = shape.n / pc;
            ring_reduce(mesh, CommAxis::InterCol, |chip, q| {
                let b_rows = gb[chip].block(q * n_p, 0, n_p, shape.k / pc);
                dense::matmul_a_bt(&a_state[chip], &b_rows)
            })
        }
        (Dataflow::Ls, CommAxis::InterRow) => {
            // Overlapped: rotate B shards along the column, building the
            // full partial C'. Exposed: RdS_col at the end.
            let n_p = shape.n / pr;
            let mut b_cur = b_state;
            let mut partial: Vec<Matrix> =
                vec![Matrix::zeros(shape.m / pr, shape.n); mesh.num_chips()];
            for t in 0..pr {
                for chip in 0..mesh.num_chips() {
                    let src = (row_of(chip) + pr - t) % pr;
                    let block = dense::matmul_a_bt(&a_state[chip], &b_cur[chip]);
                    partial[chip].add_block(0, src * n_p, &block);
                }
                if t + 1 < pr {
                    b_cur = shift(mesh, CommAxis::InterRow, 1, &b_cur);
                }
            }
            reduce_scatter(mesh, CommAxis::InterCol, &partial)
        }
        (Dataflow::Rs, CommAxis::InterRow) => {
            // Exposed: AG_col(A). Overlapped: ring reduce-scatter of C
            // along the column, one M panel per round.
            let ga = all_gather(mesh, CommAxis::InterCol, &a_state);
            let m_p = shape.m / pr;
            ring_reduce(mesh, CommAxis::InterRow, |chip, q| {
                let a_cols = ga[chip].block(0, q * m_p, shape.k / pr, m_p);
                dense::matmul_at_b(&a_cols, &b_state[chip])
            })
        }
        (Dataflow::Rs, CommAxis::InterCol) => {
            let m_p = shape.m / pc;
            let mut a_cur = a_state;
            let mut partial: Vec<Matrix> =
                vec![Matrix::zeros(shape.m, shape.n / pc); mesh.num_chips()];
            for t in 0..pc {
                for chip in 0..mesh.num_chips() {
                    let src = (col_of(chip) + pc - t) % pc;
                    let block = dense::matmul_at_b(&a_cur[chip], &b_state[chip]);
                    partial[chip].add_block(src * m_p, 0, &block);
                }
                if t + 1 < pc {
                    a_cur = shift(mesh, CommAxis::InterCol, 1, &a_cur);
                }
            }
            reduce_scatter(mesh, CommAxis::InterRow, &partial)
        }
    };
    Ok(ShardGrid::from_shards(pr, pc, c_state))
}

pub(crate) fn schedule_wang(
    algo: &crate::Wang,
    mesh: &Torus2d,
    problem: GemmProblem,
    elem_bytes: usize,
) -> Result<Program, GemmError> {
    use meshslice_mesh::CommAxis;
    use meshslice_sim::OpId;

    algo.check(mesh, problem)?;
    let overlap = algo.resolve_overlap(mesh, problem);
    let exposed = overlap.opposite();
    let ring = mesh.ring_len(overlap);
    let shape = problem.shape;
    let (pr, pc) = (mesh.rows(), mesh.cols());
    let ms = mesh.shape();
    let a_bytes = problem.a_shard_bytes(ms, elem_bytes);
    let b_bytes = problem.b_shard_bytes(ms, elem_bytes);
    let c_bytes = problem.c_shard_bytes(ms, elem_bytes);
    let sr_dir = overlap.forward_link();
    let mut b = ProgramBuilder::new(mesh);
    let exposed_tag = b.next_tag();

    let ring_reduce_rotation = matches!(
        (problem.dataflow, overlap),
        (Dataflow::Ls, CommAxis::InterCol) | (Dataflow::Rs, CommAxis::InterRow)
    );
    let groups = if ring_reduce_rotation {
        ring
    } else {
        algo.groups_for(ring)
    };
    let per_group = ring / groups;

    let (panel_shape, rot_bytes, rds_after): (GemmShape, u64, bool) =
        match (problem.dataflow, overlap) {
            (Dataflow::Os, CommAxis::InterCol) => (
                GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pc),
                a_bytes,
                false,
            ),
            (Dataflow::Os, CommAxis::InterRow) => (
                GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pr),
                b_bytes,
                false,
            ),
            (Dataflow::Ls, CommAxis::InterCol) => (
                GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pc),
                c_bytes,
                false,
            ),
            (Dataflow::Rs, CommAxis::InterRow) => (
                GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pr),
                c_bytes,
                false,
            ),
            (Dataflow::Ls, CommAxis::InterRow) => (
                GemmShape::new(shape.m / pr, shape.n / pr, shape.k / pc),
                b_bytes,
                true,
            ),
            (Dataflow::Rs, CommAxis::InterCol) => (
                GemmShape::new(shape.m / pc, shape.n / pc, shape.k / pr),
                a_bytes,
                true,
            ),
        };
    let merged_shape = |count: usize| -> GemmShape {
        match problem.dataflow {
            Dataflow::Os => GemmShape::new(panel_shape.m, panel_shape.n, panel_shape.k * count),
            Dataflow::Ls => GemmShape::new(panel_shape.m, panel_shape.n * count, panel_shape.k),
            Dataflow::Rs => GemmShape::new(panel_shape.m * count, panel_shape.n, panel_shape.k),
        }
    };

    let (exposed_is_ag, exposed_bytes) = match (problem.dataflow, rds_after) {
        (Dataflow::Os, _) => (
            true,
            if overlap == CommAxis::InterCol {
                b_bytes
            } else {
                a_bytes
            },
        ),
        (Dataflow::Ls, false) => (true, b_bytes),
        (Dataflow::Rs, false) => (true, a_bytes),
        (_, true) => (false, c_bytes),
    };

    let fwd_dir = sr_dir;
    let bwd_dir = overlap.backward_link();
    for chip in mesh.chips() {
        let ag = if exposed_is_ag {
            Some(b.collective(
                chip,
                exposed_tag,
                meshslice_sim::CollectiveKind::AllGather,
                exposed,
                exposed_bytes,
                2,
                &[],
            ))
        } else {
            None
        };
        let mut last_gemm: Option<OpId> = None;
        if ring_reduce_rotation {
            for (dir, panels) in [(fwd_dir, ring.div_ceil(2)), (bwd_dir, ring / 2)] {
                let mut last_sr: Option<OpId> = None;
                for p in 0..panels {
                    let mut deps: Vec<OpId> = Vec::new();
                    deps.extend(ag);
                    deps.extend(last_sr);
                    let gemm = b.gemm(chip, merged_shape(1), &deps);
                    last_gemm = Some(gemm);
                    if p + 1 < panels {
                        let deps: Vec<OpId> =
                            last_sr.into_iter().chain(std::iter::once(gemm)).collect();
                        last_sr = Some(b.send_recv(chip, dir, rot_bytes, &deps));
                    }
                }
            }
        } else {
            let mut fwd_prev: Option<OpId> = None;
            let mut bwd_prev: Option<OpId> = None;
            let fwd_total = (ring - 1).div_ceil(2);
            let bwd_total = (ring - 1) / 2;
            let (mut fwd_done, mut bwd_done) = (0usize, 0usize);
            let mut arrivals = 0usize;
            for g in 0..groups {
                let target = (g + 1) * per_group - 1;
                while arrivals < target {
                    if fwd_done <= bwd_done && fwd_done < fwd_total {
                        let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                        fwd_prev = Some(b.send_recv(chip, fwd_dir, rot_bytes, &deps));
                        fwd_done += 1;
                    } else if bwd_done < bwd_total {
                        let deps: Vec<OpId> = bwd_prev.into_iter().collect();
                        bwd_prev = Some(b.send_recv(chip, bwd_dir, rot_bytes, &deps));
                        bwd_done += 1;
                    } else {
                        let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                        fwd_prev = Some(b.send_recv(chip, fwd_dir, rot_bytes, &deps));
                        fwd_done += 1;
                    }
                    arrivals += 1;
                }
                let mut deps: Vec<OpId> = Vec::new();
                deps.extend(ag);
                deps.extend(fwd_prev);
                deps.extend(bwd_prev);
                last_gemm = Some(b.gemm(chip, merged_shape(per_group), &deps));
            }
        }
        if !exposed_is_ag {
            let deps: Vec<OpId> = last_gemm.into_iter().collect();
            b.collective(
                chip,
                exposed_tag,
                meshslice_sim::CollectiveKind::ReduceScatter,
                exposed,
                exposed_bytes,
                2,
                &deps,
            );
        }
    }
    Ok(b.build())
}
