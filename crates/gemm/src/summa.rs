//! The SUMMA algorithm (§2.3.3, Figure 2a).
//!
//! SUMMA loops over `P` panels; each iteration broadcasts one panel of a
//! moving input along a mesh ring (or reduces one panel of the output) and
//! computes a partial GeMM. The broadcast/reduce primitives are pipelined
//! fine-grain packet streams, so every iteration pays `P + D − 2`
//! synchronizations and suffers pipeline bubbles — the O(P²) total
//! synchronization overhead that makes SUMMA collapse on large meshes.

use meshslice_mesh::{CommAxis, Coord, Torus2d};
use meshslice_tensor::GemmShape;

use crate::algorithm::DistributedGemm;
use crate::error::{ensure_divides, GemmError};
use crate::plan::{DataOp, MatKind, MatmulStep, Plan, TileRead};
use crate::problem::{Dataflow, GemmProblem};

/// The SUMMA algorithm with `panels` loop iterations.
///
/// `panels` must be a common multiple of the mesh dimensions (the paper's
/// `P`); [`Summa::auto`] picks the least common multiple. The evaluation
/// applies loop unrolling to SUMMA by setting `panels` equal to MeshSlice's
/// tuned slice count when it is larger than the LCM.
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, Summa};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(2, 2);
/// let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
/// let (a, b) = problem.random_inputs(&mesh, 5);
/// let c = Summa::auto(&mesh).execute(&mesh, problem, &a, &b)?;
/// assert!(c.assemble().approx_eq(&problem.reference(&a.assemble(), &b.assemble()), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Summa {
    panels: usize,
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (helper for SUMMA panel counts).
pub(crate) fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

impl Summa {
    /// Creates a SUMMA instance with an explicit panel count.
    ///
    /// # Panics
    ///
    /// Panics if `panels` is zero.
    pub fn new(panels: usize) -> Self {
        assert!(panels > 0, "panel count must be positive");
        Summa { panels }
    }

    /// SUMMA with the smallest legal panel count for the mesh,
    /// `lcm(Pr, Pc)`.
    pub fn auto(mesh: &Torus2d) -> Self {
        Summa::new(lcm(mesh.rows(), mesh.cols()))
    }

    /// The panel count `P`.
    pub fn panels(&self) -> usize {
        self.panels
    }

    /// The dimension the panels split, per dataflow (`K` for OS, `N` for
    /// LS, `M` for RS).
    fn panel_dim(&self, problem: GemmProblem) -> (&'static str, usize) {
        match problem.dataflow {
            Dataflow::Os => ("K", problem.shape.k),
            Dataflow::Ls => ("N", problem.shape.n),
            Dataflow::Rs => ("M", problem.shape.m),
        }
    }
}

impl DistributedGemm for Summa {
    fn name(&self) -> &str {
        "SUMMA"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        problem.check_divisible(mesh.shape())?;
        ensure_divides("SUMMA panels by mesh rows", self.panels, mesh.rows())?;
        ensure_divides("SUMMA panels by mesh cols", self.panels, mesh.cols())?;
        let (name, dim) = self.panel_dim(problem);
        ensure_divides(&format!("{name} by SUMMA panels"), dim, self.panels)?;
        Ok(())
    }

    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError> {
        self.check(mesh, problem)?;
        let p = self.panels;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let shape = problem.shape;
        let eb = elem_bytes as u64;
        Plan::build(mesh, |pb| {
            let (a_rows, a_cols) = problem.a_shard_dims(mesh.shape());
            let (b_rows, b_cols) = problem.b_shard_dims(mesh.shape());
            let (c_rows, c_cols) = problem.c_shard_dims(mesh.shape());
            let a = pb.input_a(a_rows, a_cols);
            let b = pb.input_b(b_rows, b_cols);
            let c = pb.zeros(c_rows, c_cols);
            for panel in 0..p {
                // Ring positions of the chips owning this panel.
                let owner_row = panel / (p / pr);
                let owner_col = panel / (p / pc);
                match problem.dataflow {
                    Dataflow::Os => {
                        // A' = bcast_col(A_{i,panel}); B' = bcast_row(B_{panel,j});
                        // C_ij += A'·B'.
                        let k_p = shape.k / p;
                        let a_off = panel * k_p - owner_col * (shape.k / pc);
                        let b_off = panel * k_p - owner_row * (shape.k / pr);
                        let a_bytes = (shape.m / pr * k_p) as u64 * eb;
                        let b_bytes = (k_p * shape.n / pc) as u64 * eb;
                        let local = GemmShape::new(shape.m / pr, shape.n / pc, k_p);
                        for chip in mesh.chips() {
                            let coord = mesh.coord_of(chip);
                            // The broadcast panels live on the owner chips of
                            // this chip's row and column rings.
                            let a_tile = TileRead::region(
                                a,
                                mesh.chip_at(Coord::new(coord.row(), owner_col)),
                                0,
                                a_off,
                                a_rows,
                                k_p,
                            );
                            let b_tile = TileRead::region(
                                b,
                                mesh.chip_at(Coord::new(owner_row, coord.col())),
                                b_off,
                                0,
                                k_p,
                                b_cols,
                            );
                            let bc_a =
                                pb.sim()
                                    .pipelined_bcast(chip, CommAxis::InterCol, a_bytes, &[]);
                            pb.attach(bc_a, DataOp::Carries { tile: a_tile });
                            let bc_b =
                                pb.sim()
                                    .pipelined_bcast(chip, CommAxis::InterRow, b_bytes, &[]);
                            pb.attach(bc_b, DataOp::Carries { tile: b_tile });
                            let gemm = pb.sim().gemm(chip, local, &[bc_a, bc_b]);
                            pb.attach(
                                gemm,
                                DataOp::Compute {
                                    steps: vec![MatmulStep {
                                        kind: MatKind::Ab,
                                        lhs: a_tile,
                                        rhs: b_tile,
                                        dst: c,
                                        dst_chip: chip,
                                        dst_off: (0, 0),
                                    }],
                                },
                            );
                        }
                    }
                    Dataflow::Ls => {
                        // B' = bcast_row(B_{panel,j}); C' = A_ij·(B')ᵀ;
                        // reduce_col(C', C_{i,panel}).
                        let n_p = shape.n / p;
                        let b_off = panel * n_p - owner_row * (shape.n / pr);
                        let c_off = panel * n_p - owner_col * (shape.n / pc);
                        let b_bytes = (n_p * shape.k / pc) as u64 * eb;
                        let c_bytes = (shape.m / pr * n_p) as u64 * eb;
                        let local = GemmShape::new(shape.m / pr, n_p, shape.k / pc);
                        for chip in mesh.chips() {
                            let coord = mesh.coord_of(chip);
                            let owner = mesh.chip_at(Coord::new(coord.row(), owner_col));
                            let b_tile = TileRead::region(
                                b,
                                mesh.chip_at(Coord::new(owner_row, coord.col())),
                                b_off,
                                0,
                                n_p,
                                b_cols,
                            );
                            let bc_b =
                                pb.sim()
                                    .pipelined_bcast(chip, CommAxis::InterRow, b_bytes, &[]);
                            pb.attach(bc_b, DataOp::Carries { tile: b_tile });
                            let gemm = pb.sim().gemm(chip, local, &[bc_b]);
                            // The ring reduce sums every chip's partial into
                            // the owner's C panel: a cross-chip accumulation.
                            pb.attach(
                                gemm,
                                DataOp::Compute {
                                    steps: vec![MatmulStep {
                                        kind: MatKind::Abt,
                                        lhs: TileRead::whole(a, chip),
                                        rhs: b_tile,
                                        dst: c,
                                        dst_chip: owner,
                                        dst_off: (0, c_off),
                                    }],
                                },
                            );
                            let rd = pb.sim().pipelined_bcast(
                                chip,
                                CommAxis::InterCol,
                                c_bytes,
                                &[gemm],
                            );
                            pb.attach(
                                rd,
                                DataOp::Carries {
                                    tile: TileRead::region(c, owner, 0, c_off, shape.m / pr, n_p),
                                },
                            );
                        }
                    }
                    Dataflow::Rs => {
                        // A' = bcast_col(A_{i,panel}); C' = (A')ᵀ·B_ij;
                        // reduce_row(C', C_{panel,j}).
                        let m_p = shape.m / p;
                        let a_off = panel * m_p - owner_col * (shape.m / pc);
                        let c_off = panel * m_p - owner_row * (shape.m / pr);
                        let a_bytes = (shape.k / pr * m_p) as u64 * eb;
                        let c_bytes = (m_p * shape.n / pc) as u64 * eb;
                        let local = GemmShape::new(m_p, shape.n / pc, shape.k / pr);
                        for chip in mesh.chips() {
                            let coord = mesh.coord_of(chip);
                            let owner = mesh.chip_at(Coord::new(owner_row, coord.col()));
                            let a_tile = TileRead::region(
                                a,
                                mesh.chip_at(Coord::new(coord.row(), owner_col)),
                                0,
                                a_off,
                                a_rows,
                                m_p,
                            );
                            let bc_a =
                                pb.sim()
                                    .pipelined_bcast(chip, CommAxis::InterCol, a_bytes, &[]);
                            pb.attach(bc_a, DataOp::Carries { tile: a_tile });
                            let gemm = pb.sim().gemm(chip, local, &[bc_a]);
                            pb.attach(
                                gemm,
                                DataOp::Compute {
                                    steps: vec![MatmulStep {
                                        kind: MatKind::Atb,
                                        lhs: a_tile,
                                        rhs: TileRead::whole(b, chip),
                                        dst: c,
                                        dst_chip: owner,
                                        dst_off: (c_off, 0),
                                    }],
                                },
                            );
                            let rd = pb.sim().pipelined_bcast(
                                chip,
                                CommAxis::InterRow,
                                c_bytes,
                                &[gemm],
                            );
                            pb.attach(
                                rd,
                                DataOp::Carries {
                                    tile: TileRead::region(c, owner, c_off, 0, m_p, shape.n / pc),
                                },
                            );
                        }
                    }
                }
            }
            Ok(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_functional(
        df: Dataflow,
        mesh: (usize, usize),
        shape: (usize, usize, usize),
        panels: usize,
    ) {
        let mesh = Torus2d::new(mesh.0, mesh.1);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), df);
        let algo = Summa::new(panels);
        let (a, b) = problem.random_inputs(&mesh, 17);
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "{df} P={panels}: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn os_matches_dense() {
        check_functional(Dataflow::Os, (2, 3), (4, 6, 12), 6);
    }

    #[test]
    fn os_with_more_panels() {
        check_functional(Dataflow::Os, (2, 2), (4, 4, 16), 8);
    }

    #[test]
    fn ls_matches_dense() {
        check_functional(Dataflow::Ls, (2, 3), (4, 12, 6), 6);
    }

    #[test]
    fn rs_matches_dense() {
        check_functional(Dataflow::Rs, (3, 2), (12, 4, 6), 6);
    }

    #[test]
    fn auto_uses_lcm() {
        assert_eq!(Summa::auto(&Torus2d::new(4, 6)).panels(), 12);
        assert_eq!(Summa::auto(&Torus2d::new(8, 8)).panels(), 8);
    }

    #[test]
    fn rejects_panel_count_not_multiple_of_mesh() {
        let mesh = Torus2d::new(2, 3);
        let problem = GemmProblem::new(GemmShape::new(12, 12, 12), Dataflow::Os);
        assert!(Summa::new(4).check(&mesh, problem).is_err());
        assert!(Summa::new(6).check(&mesh, problem).is_ok());
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(2, 2);
        let shape = GemmShape::new(32, 32, 32);
        for df in Dataflow::ALL {
            let problem = GemmProblem::new(shape, df);
            let prog = Summa::new(4).schedule(&mesh, problem, 2).unwrap();
            assert_eq!(prog.total_flops(), shape.flops(), "{df}");
        }
    }

    #[test]
    fn schedule_has_two_bcasts_per_panel_per_chip() {
        let mesh = Torus2d::new(2, 2);
        let problem = GemmProblem::new(GemmShape::new(32, 32, 32), Dataflow::Os);
        let prog = Summa::new(4).schedule(&mesh, problem, 2).unwrap();
        let bcasts = prog
            .ops()
            .iter()
            .filter(|op| matches!(op.kind, meshslice_sim::OpKind::PipelinedBcast { .. }))
            .count();
        assert_eq!(bcasts, 4 * 4 * 2);
    }
}
