//! The 2.5D GeMM algorithm (Solomonik & Demmel), the paper's §7
//! comparison point for 3D clusters.
//!
//! A 2.5D GeMM runs on a `P × P × c` torus: the inputs are replicated `c`
//! times along the third dimension, each replica computes `1/c` of the
//! contraction with Cannon's algorithm on its own `P × P` layer, and the
//! partial outputs are reduced across the depth. It inherits Cannon's two
//! limitations — square base meshes and skew traffic — which is exactly
//! why the paper's MeshSlice+DP composition wins the traffic comparison.
//!
//! This implementation executes the algorithm *functionally* over `c`
//! stacked 2D layers (the depth reduction is a direct sum, standing in
//! for the ring reduce along the third torus dimension) and provides the
//! per-chip traffic accounting used by the §7 example.

use meshslice_mesh::Torus2d;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::{GemmShape, Matrix};

use crate::error::{ensure_divides, GemmError};
use crate::problem::{Dataflow, GemmProblem};
use crate::{Cannon, DistributedGemm};

/// The 2.5D GeMM algorithm on a `p × p × c` torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoFiveD {
    /// Base mesh dimension `P` (the layers are `P × P`).
    pub p: usize,
    /// Replication depth `c`.
    pub c: usize,
}

impl TwoFiveD {
    /// Creates the algorithm for a `p × p × c` torus.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `c` is zero.
    pub fn new(p: usize, c: usize) -> Self {
        assert!(p > 0 && c > 0, "torus dimensions must be positive");
        TwoFiveD { p, c }
    }

    /// Total chips, `p² · c`.
    pub fn num_chips(&self) -> usize {
        self.p * self.p * self.c
    }

    /// Checks that the shape divides the torus.
    ///
    /// # Errors
    ///
    /// Returns [`GemmError::Indivisible`] naming the offending dimension.
    pub fn check(&self, shape: GemmShape) -> Result<(), GemmError> {
        ensure_divides("M by P", shape.m, self.p)?;
        ensure_divides("N by P", shape.n, self.p)?;
        ensure_divides("K by P*c", shape.k, self.p * self.c)?;
        Ok(())
    }

    /// Computes `C = A·B` functionally: the contraction dimension is split
    /// into `c` slabs, each slab multiplied with Cannon's algorithm on its
    /// own `P × P` layer, and the `c` layer outputs summed (the depth
    /// reduction).
    ///
    /// # Errors
    ///
    /// Returns [`GemmError`] if the shape does not divide the torus.
    pub fn execute(&self, a: &Matrix, b: &Matrix) -> Result<Matrix, GemmError> {
        let shape = GemmShape::new(a.rows(), b.cols(), a.cols());
        self.check(shape)?;
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let mesh = Torus2d::new(self.p, self.p);
        let slab_k = shape.k / self.c;
        let mut total: Option<Matrix> = None;
        for layer in 0..self.c {
            // Layer `layer` owns contraction range [layer*slab_k, ...).
            let a_slab = a.block(0, layer * slab_k, shape.m, slab_k);
            let b_slab = b.block(layer * slab_k, 0, slab_k, shape.n);
            let a_grid = ShardGrid::partition(&a_slab, self.p, self.p);
            let b_grid = ShardGrid::partition(&b_slab, self.p, self.p);
            let problem = GemmProblem::new(GemmShape::new(shape.m, shape.n, slab_k), Dataflow::Os);
            let c_grid = Cannon.execute(&mesh, problem, &a_grid, &b_grid)?;
            let partial = c_grid.assemble();
            total = Some(match total {
                None => partial,
                Some(mut acc) => {
                    acc += &partial;
                    acc
                }
            });
        }
        Ok(total.expect("c >= 1"))
    }

    /// Per-chip communication traffic in bytes: Cannon's `P − 1` systolic
    /// shifts of both input slabs, plus the ring reduction of the output
    /// copies across the depth (the skew folds into the initial
    /// replication broadcast).
    pub fn traffic_per_chip(&self, shape: GemmShape, elem_bytes: usize) -> u64 {
        let eb = elem_bytes as u64;
        let p = self.p as u64;
        let c = self.c as u64;
        let a_shard = (shape.m / self.p) as u64 * (shape.k / self.c / self.p) as u64 * eb;
        let b_shard = (shape.k / self.c / self.p) as u64 * (shape.n / self.p) as u64 * eb;
        let c_shard = (shape.m / self.p) as u64 * (shape.n / self.p) as u64 * eb;
        (p - 1) * (a_shard + b_shard) + c_shard * (c - 1) / c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_tensor::gemm as dense;

    #[test]
    fn matches_dense_gemm() {
        let algo = TwoFiveD::new(3, 2);
        let a = Matrix::random(6, 12, 1);
        let b = Matrix::random(12, 9, 2);
        let c = algo.execute(&a, &b).unwrap();
        assert!(c.approx_eq(&dense::matmul(&a, &b), 1e-4));
    }

    #[test]
    fn depth_one_degenerates_to_cannon() {
        let algo = TwoFiveD::new(2, 1);
        let a = Matrix::random(4, 4, 3);
        let b = Matrix::random(4, 4, 4);
        let c = algo.execute(&a, &b).unwrap();
        assert!(c.approx_eq(&dense::matmul(&a, &b), 1e-4));
    }

    #[test]
    fn deeper_replication_still_correct() {
        let algo = TwoFiveD::new(2, 4);
        let a = Matrix::random(4, 8, 5);
        let b = Matrix::random(8, 4, 6);
        let c = algo.execute(&a, &b).unwrap();
        assert!(c.approx_eq(&dense::matmul(&a, &b), 1e-4));
    }

    #[test]
    fn rejects_indivisible_shapes() {
        let algo = TwoFiveD::new(4, 2);
        assert!(algo.check(GemmShape::new(6, 8, 8)).is_err()); // M % 4 != 0
        assert!(algo.check(GemmShape::new(8, 8, 12)).is_err()); // K % 8 != 0
        assert!(algo.check(GemmShape::new(8, 8, 16)).is_ok());
        assert_eq!(algo.num_chips(), 32);
    }

    #[test]
    fn traffic_matches_the_papers_example() {
        // §7: GPT-3 FF2 (M, N, K) = (1024K, 12K, 48K) on a 16x16x4 torus
        // moves ~1.6 GB per chip.
        let algo = TwoFiveD::new(16, 4);
        let shape = GemmShape::new(1024 * 1024, 12 * 1024, 48 * 1024);
        let t = algo.traffic_per_chip(shape, 2) as f64;
        assert!((t / 1.6e9 - 1.0).abs() < 0.1, "traffic {t}");
    }
}
