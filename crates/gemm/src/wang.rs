//! Wang et al.'s overlapped 2D GeMM (the state-of-the-art baseline).
//!
//! Wang decomposes the collective communication of **one** mesh direction
//! into SendRecv exchanges that software-pipeline with partial GeMMs; the
//! other direction's collective stays whole and is exposed as a prologue
//! (AllGather) or epilogue (ReduceScatter). Decomposing *both* directions
//! would require Cannon's algorithm, with its square-mesh and skew costs —
//! the gap MeshSlice closes.
//!
//! The paper applies loop unrolling to Wang so that its iteration count
//! matches MeshSlice's tuned slice count; [`Wang::with_unroll`] models
//! this by merging adjacent partial GeMMs.

use meshslice_collectives::{all_gather, reduce_scatter, shift};
use meshslice_mesh::{CommAxis, Torus2d};
use meshslice_sim::{OpId, Program, ProgramBuilder};
use meshslice_tensor::gemm as dense;
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::{GemmShape, Matrix};

use crate::algorithm::{check_inputs, DistributedGemm};
use crate::collective::grid_state;
use crate::error::{ensure_divides, GemmError};
use crate::problem::{Dataflow, GemmProblem};

/// Which direction's collective Wang decomposes into SendRecv exchanges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WangOverlap {
    /// Pick the direction with the larger traffic cost (hide the big one).
    #[default]
    Auto,
    /// Overlap the inter-row (vertical) communication.
    InterRow,
    /// Overlap the inter-column (horizontal) communication.
    InterCol,
}

/// Wang et al.'s algorithm.
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, Wang};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(2, 2);
/// let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
/// let (a, b) = problem.random_inputs(&mesh, 11);
/// let c = Wang::new().execute(&mesh, problem, &a, &b)?;
/// assert!(c.assemble().approx_eq(&problem.reference(&a.assemble(), &b.assemble()), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Wang {
    overlap: WangOverlap,
    unroll: Option<usize>,
}

impl Wang {
    /// Wang with automatic overlap-direction selection and full
    /// decomposition (one GeMM per arrival).
    pub fn new() -> Self {
        Wang::default()
    }

    /// Sets the overlap direction explicitly.
    pub fn with_overlap(overlap: WangOverlap) -> Self {
        Wang {
            overlap,
            unroll: None,
        }
    }

    /// Merges the partial GeMMs into `groups` unrolled groups (must divide
    /// the overlapped ring length, otherwise full decomposition is used).
    pub fn with_unroll(mut self, groups: usize) -> Self {
        assert!(groups > 0, "unroll group count must be positive");
        self.unroll = Some(groups);
        self
    }

    /// Resolves the overlap axis for a problem on a mesh.
    ///
    /// For `Auto`, the decomposed (hidden) direction is the one whose ring
    /// collective moves more bytes: `(P − 1) × shard_bytes` per §2.3.1.
    pub fn resolve_overlap(&self, mesh: &Torus2d, problem: GemmProblem) -> CommAxis {
        match self.overlap {
            WangOverlap::InterRow => CommAxis::InterRow,
            WangOverlap::InterCol => CommAxis::InterCol,
            WangOverlap::Auto => {
                let cost = |axis: CommAxis| -> u64 {
                    let len = mesh.ring_len(axis) as u64;
                    let bytes = [
                        (problem.a_axis(), problem.a_shard_bytes(mesh.shape(), 1)),
                        (problem.b_axis(), problem.b_shard_bytes(mesh.shape(), 1)),
                        (problem.c_axis(), problem.c_shard_bytes(mesh.shape(), 1)),
                    ]
                    .into_iter()
                    .filter(|(ax, _)| *ax == Some(axis))
                    .map(|(_, b)| b)
                    .sum::<u64>();
                    (len - 1) * bytes
                };
                if cost(CommAxis::InterRow) >= cost(CommAxis::InterCol) {
                    CommAxis::InterRow
                } else {
                    CommAxis::InterCol
                }
            }
        }
    }

    fn groups_for(&self, ring: usize) -> usize {
        match self.unroll {
            Some(g) if g <= ring && ring.is_multiple_of(g) => g,
            _ => ring,
        }
    }
}

/// Ring reduce-scatter with interleaved per-panel compute: at round `t`,
/// the chip at ring position `c` computes its contribution to panel
/// `(c + p − 1 − t) mod p`, adds the accumulator received from upstream,
/// and passes it on. After `p` rounds every chip holds its own panel fully
/// reduced.
fn ring_reduce(
    mesh: &Torus2d,
    axis: CommAxis,
    contribution: impl Fn(usize, usize) -> Matrix,
) -> Vec<Matrix> {
    let p = mesh.ring_len(axis);
    let position = |chip: usize| {
        let coord = mesh.coord_of(meshslice_mesh::ChipId(chip));
        match axis {
            CommAxis::InterRow => coord.row,
            CommAxis::InterCol => coord.col,
        }
    };
    let mut carried: Option<Vec<Matrix>> = None;
    for t in 0..p {
        let acc: Vec<Matrix> = (0..mesh.num_chips())
            .map(|chip| {
                let q = (position(chip) + p - 1 - t) % p;
                let contr = contribution(chip, q);
                match &carried {
                    None => contr,
                    Some(rcv) => &rcv[chip] + &contr,
                }
            })
            .collect();
        if t + 1 < p {
            carried = Some(shift(mesh, axis, 1, &acc));
        } else {
            return acc;
        }
    }
    unreachable!("loop always returns on the last round")
}

impl DistributedGemm for Wang {
    fn name(&self) -> &str {
        "Wang"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        problem.check_divisible(mesh.shape())?;
        let overlap = self.resolve_overlap(mesh, problem);
        // The rotated panels further split one dimension by the ring
        // length of the overlapped direction.
        let ring = mesh.ring_len(overlap);
        match (problem.dataflow, overlap) {
            (Dataflow::Os, CommAxis::InterCol) => {
                ensure_divides("K by Pc (Wang panels)", problem.shape.k, mesh.cols())?;
            }
            (Dataflow::Os, CommAxis::InterRow) => {
                ensure_divides("K by Pr (Wang panels)", problem.shape.k, mesh.rows())?;
            }
            (Dataflow::Ls, CommAxis::InterCol) => {
                ensure_divides("N by Pc (Wang panels)", problem.shape.n, mesh.cols())?;
            }
            (Dataflow::Ls, CommAxis::InterRow) => {
                ensure_divides("N by Pr (Wang panels)", problem.shape.n, mesh.rows())?;
            }
            (Dataflow::Rs, CommAxis::InterRow) => {
                ensure_divides("M by Pr (Wang panels)", problem.shape.m, mesh.rows())?;
            }
            (Dataflow::Rs, CommAxis::InterCol) => {
                ensure_divides("M by Pc (Wang panels)", problem.shape.m, mesh.cols())?;
            }
        }
        let _ = ring;
        Ok(())
    }

    fn execute(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        a: &ShardGrid,
        b: &ShardGrid,
    ) -> Result<ShardGrid, GemmError> {
        self.check(mesh, problem)?;
        check_inputs(mesh, problem, a, b);
        let overlap = self.resolve_overlap(mesh, problem);
        let shape = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let a_state = grid_state(a);
        let b_state = grid_state(b);
        let row_of = |chip: usize| mesh.coord_of(meshslice_mesh::ChipId(chip)).row;
        let col_of = |chip: usize| mesh.coord_of(meshslice_mesh::ChipId(chip)).col;

        let c_state: Vec<Matrix> = match (problem.dataflow, overlap) {
            (Dataflow::Os, CommAxis::InterCol) => {
                // Exposed: AG_row(B). Overlapped: rotate A shards along the
                // row, multiplying against the matching K panel of B_*j.
                let gb = all_gather(mesh, CommAxis::InterRow, &b_state);
                let k_p = shape.k / pc;
                let mut a_cur = a_state;
                let mut c: Vec<Matrix> =
                    vec![Matrix::zeros(shape.m / pr, shape.n / pc); mesh.num_chips()];
                for t in 0..pc {
                    for chip in 0..mesh.num_chips() {
                        let src = (col_of(chip) + pc - t) % pc;
                        let b_rows = gb[chip].block(src * k_p, 0, k_p, shape.n / pc);
                        dense::matmul_acc(&mut c[chip], &a_cur[chip], &b_rows);
                    }
                    if t + 1 < pc {
                        a_cur = shift(mesh, CommAxis::InterCol, 1, &a_cur);
                    }
                }
                c
            }
            (Dataflow::Os, CommAxis::InterRow) => {
                let ga = all_gather(mesh, CommAxis::InterCol, &a_state);
                let k_p = shape.k / pr;
                let mut b_cur = b_state;
                let mut c: Vec<Matrix> =
                    vec![Matrix::zeros(shape.m / pr, shape.n / pc); mesh.num_chips()];
                for t in 0..pr {
                    for chip in 0..mesh.num_chips() {
                        let src = (row_of(chip) + pr - t) % pr;
                        let a_cols = ga[chip].block(0, src * k_p, shape.m / pr, k_p);
                        dense::matmul_acc(&mut c[chip], &a_cols, &b_cur[chip]);
                    }
                    if t + 1 < pr {
                        b_cur = shift(mesh, CommAxis::InterRow, 1, &b_cur);
                    }
                }
                c
            }
            (Dataflow::Ls, CommAxis::InterCol) => {
                // Exposed: AG_row(B). Overlapped: ring reduce-scatter of C
                // along the row, one N panel per round.
                let gb = all_gather(mesh, CommAxis::InterRow, &b_state);
                let n_p = shape.n / pc;
                ring_reduce(mesh, CommAxis::InterCol, |chip, q| {
                    let b_rows = gb[chip].block(q * n_p, 0, n_p, shape.k / pc);
                    dense::matmul_a_bt(&a_state[chip], &b_rows)
                })
            }
            (Dataflow::Ls, CommAxis::InterRow) => {
                // Overlapped: rotate B shards along the column, building the
                // full partial C'. Exposed: RdS_col at the end.
                let n_p = shape.n / pr;
                let mut b_cur = b_state;
                let mut partial: Vec<Matrix> =
                    vec![Matrix::zeros(shape.m / pr, shape.n); mesh.num_chips()];
                for t in 0..pr {
                    for chip in 0..mesh.num_chips() {
                        let src = (row_of(chip) + pr - t) % pr;
                        let block = dense::matmul_a_bt(&a_state[chip], &b_cur[chip]);
                        partial[chip].add_block(0, src * n_p, &block);
                    }
                    if t + 1 < pr {
                        b_cur = shift(mesh, CommAxis::InterRow, 1, &b_cur);
                    }
                }
                reduce_scatter(mesh, CommAxis::InterCol, &partial)
            }
            (Dataflow::Rs, CommAxis::InterRow) => {
                // Exposed: AG_col(A). Overlapped: ring reduce-scatter of C
                // along the column, one M panel per round.
                let ga = all_gather(mesh, CommAxis::InterCol, &a_state);
                let m_p = shape.m / pr;
                ring_reduce(mesh, CommAxis::InterRow, |chip, q| {
                    let a_cols = ga[chip].block(0, q * m_p, shape.k / pr, m_p);
                    dense::matmul_at_b(&a_cols, &b_state[chip])
                })
            }
            (Dataflow::Rs, CommAxis::InterCol) => {
                let m_p = shape.m / pc;
                let mut a_cur = a_state;
                let mut partial: Vec<Matrix> =
                    vec![Matrix::zeros(shape.m, shape.n / pc); mesh.num_chips()];
                for t in 0..pc {
                    for chip in 0..mesh.num_chips() {
                        let src = (col_of(chip) + pc - t) % pc;
                        let block = dense::matmul_at_b(&a_cur[chip], &b_state[chip]);
                        partial[chip].add_block(src * m_p, 0, &block);
                    }
                    if t + 1 < pc {
                        a_cur = shift(mesh, CommAxis::InterCol, 1, &a_cur);
                    }
                }
                reduce_scatter(mesh, CommAxis::InterRow, &partial)
            }
        };
        Ok(ShardGrid::from_shards(pr, pc, c_state))
    }

    fn schedule(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Program, GemmError> {
        self.check(mesh, problem)?;
        let overlap = self.resolve_overlap(mesh, problem);
        let exposed = overlap.opposite();
        let ring = mesh.ring_len(overlap);
        let shape = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let ms = mesh.shape();
        let a_bytes = problem.a_shard_bytes(ms, elem_bytes);
        let b_bytes = problem.b_shard_bytes(ms, elem_bytes);
        let c_bytes = problem.c_shard_bytes(ms, elem_bytes);
        let sr_dir = overlap.forward_link();
        let mut b = ProgramBuilder::new(mesh);
        let exposed_tag = b.next_tag();

        // The rotation either carries an input shard towards the partial
        // GeMMs, or carries the C accumulator of a compute-interleaved ring
        // reduce-scatter (the LS/RS variants where the reduction direction
        // is the overlapped one).
        let ring_reduce_rotation = matches!(
            (problem.dataflow, overlap),
            (Dataflow::Ls, CommAxis::InterCol) | (Dataflow::Rs, CommAxis::InterRow)
        );
        // Unrolling chunked accumulators is not modeled; it only applies
        // to the input-rotation variants.
        let groups = if ring_reduce_rotation {
            ring
        } else {
            self.groups_for(ring)
        };
        let per_group = ring / groups;

        // Per-arrival (rotated) GeMM shape, rotated payload bytes, and
        // whether an exposed ReduceScatter follows the loop.
        let (panel_shape, rot_bytes, rds_after): (GemmShape, u64, bool) =
            match (problem.dataflow, overlap) {
                (Dataflow::Os, CommAxis::InterCol) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pc),
                    a_bytes,
                    false,
                ),
                (Dataflow::Os, CommAxis::InterRow) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pr),
                    b_bytes,
                    false,
                ),
                (Dataflow::Ls, CommAxis::InterCol) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pc),
                    c_bytes,
                    false,
                ),
                (Dataflow::Rs, CommAxis::InterRow) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pr),
                    c_bytes,
                    false,
                ),
                (Dataflow::Ls, CommAxis::InterRow) => (
                    GemmShape::new(shape.m / pr, shape.n / pr, shape.k / pc),
                    b_bytes,
                    true,
                ),
                (Dataflow::Rs, CommAxis::InterCol) => (
                    GemmShape::new(shape.m / pc, shape.n / pc, shape.k / pr),
                    a_bytes,
                    true,
                ),
            };
        // Grouping merges panels along the dimension the rotation splits;
        // FLOPs stay constant because exactly one dimension scales.
        let merged_shape = |count: usize| -> GemmShape {
            match problem.dataflow {
                Dataflow::Os => GemmShape::new(panel_shape.m, panel_shape.n, panel_shape.k * count),
                Dataflow::Ls => GemmShape::new(panel_shape.m, panel_shape.n * count, panel_shape.k),
                Dataflow::Rs => GemmShape::new(panel_shape.m * count, panel_shape.n, panel_shape.k),
            }
        };

        // The exposed collective: an AllGather prologue, or a ReduceScatter
        // epilogue when the gathered input's rotation was overlapped.
        let (exposed_is_ag, exposed_bytes) = match (problem.dataflow, rds_after) {
            (Dataflow::Os, _) => (
                true,
                if overlap == CommAxis::InterCol {
                    b_bytes
                } else {
                    a_bytes
                },
            ),
            (Dataflow::Ls, false) => (true, b_bytes),
            (Dataflow::Rs, false) => (true, a_bytes),
            (_, true) => (false, c_bytes),
        };

        // The rotation runs bidirectionally: both ring links carry shards
        // at once, like the TPU collectives it decomposes.
        let fwd_dir = sr_dir;
        let bwd_dir = overlap.backward_link();
        for chip in mesh.chips() {
            let ag = if exposed_is_ag {
                Some(b.collective(
                    chip,
                    exposed_tag,
                    meshslice_sim::CollectiveKind::AllGather,
                    exposed,
                    exposed_bytes,
                    2,
                    &[],
                ))
            } else {
                None
            };
            let mut last_gemm: Option<OpId> = None;
            if ring_reduce_rotation {
                // Two accumulators circulate in opposite directions, each
                // covering half the output panels: per round a chip adds
                // its contribution (a partial GeMM) and passes the
                // accumulator on.
                for (dir, panels) in [(fwd_dir, ring.div_ceil(2)), (bwd_dir, ring / 2)] {
                    let mut last_sr: Option<OpId> = None;
                    for p in 0..panels {
                        let mut deps: Vec<OpId> = Vec::new();
                        deps.extend(ag);
                        deps.extend(last_sr);
                        let gemm = b.gemm(chip, merged_shape(1), &deps);
                        last_gemm = Some(gemm);
                        if p + 1 < panels {
                            let deps: Vec<OpId> =
                                last_sr.into_iter().chain(std::iter::once(gemm)).collect();
                            last_sr = Some(b.send_recv(chip, dir, rot_bytes, &deps));
                        }
                    }
                }
            } else {
                // Input rotation: shards arrive alternately from both ring
                // directions; group g's GeMM waits for the arrivals it
                // consumes (the chip's own shard is panel 0).
                let mut fwd_prev: Option<OpId> = None;
                let mut bwd_prev: Option<OpId> = None;
                let fwd_total = (ring - 1).div_ceil(2);
                let bwd_total = (ring - 1) / 2;
                let (mut fwd_done, mut bwd_done) = (0usize, 0usize);
                let mut arrivals = 0usize;
                for g in 0..groups {
                    let target = (g + 1) * per_group - 1;
                    while arrivals < target {
                        if fwd_done <= bwd_done && fwd_done < fwd_total {
                            let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                            fwd_prev = Some(b.send_recv(chip, fwd_dir, rot_bytes, &deps));
                            fwd_done += 1;
                        } else if bwd_done < bwd_total {
                            let deps: Vec<OpId> = bwd_prev.into_iter().collect();
                            bwd_prev = Some(b.send_recv(chip, bwd_dir, rot_bytes, &deps));
                            bwd_done += 1;
                        } else {
                            let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                            fwd_prev = Some(b.send_recv(chip, fwd_dir, rot_bytes, &deps));
                            fwd_done += 1;
                        }
                        arrivals += 1;
                    }
                    let mut deps: Vec<OpId> = Vec::new();
                    deps.extend(ag);
                    deps.extend(fwd_prev);
                    deps.extend(bwd_prev);
                    last_gemm = Some(b.gemm(chip, merged_shape(per_group), &deps));
                }
            }
            if !exposed_is_ag {
                let deps: Vec<OpId> = last_gemm.into_iter().collect();
                b.collective(
                    chip,
                    exposed_tag,
                    meshslice_sim::CollectiveKind::ReduceScatter,
                    exposed,
                    exposed_bytes,
                    2,
                    &deps,
                );
            }
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_functional(
        df: Dataflow,
        overlap: WangOverlap,
        mesh: (usize, usize),
        shape: (usize, usize, usize),
    ) {
        let mesh = Torus2d::new(mesh.0, mesh.1);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), df);
        let algo = Wang::with_overlap(overlap);
        let (a, b) = problem.random_inputs(&mesh, 77);
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "{df} overlap {overlap:?}: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn os_both_overlap_directions_match_dense() {
        check_functional(Dataflow::Os, WangOverlap::InterCol, (2, 3), (4, 6, 12));
        check_functional(Dataflow::Os, WangOverlap::InterRow, (2, 3), (4, 6, 12));
    }

    #[test]
    fn ls_both_overlap_directions_match_dense() {
        check_functional(Dataflow::Ls, WangOverlap::InterCol, (2, 3), (4, 12, 6));
        check_functional(Dataflow::Ls, WangOverlap::InterRow, (2, 3), (4, 12, 6));
    }

    #[test]
    fn rs_both_overlap_directions_match_dense() {
        check_functional(Dataflow::Rs, WangOverlap::InterRow, (3, 2), (12, 4, 6));
        check_functional(Dataflow::Rs, WangOverlap::InterCol, (3, 2), (12, 4, 6));
    }

    #[test]
    fn auto_overlap_matches_dense() {
        check_functional(Dataflow::Os, WangOverlap::Auto, (4, 2), (8, 8, 8));
    }

    #[test]
    fn auto_hides_the_larger_direction() {
        // A (M x K) is far larger than B: A flows inter-column, so Auto
        // must overlap InterCol when its traffic dominates.
        let mesh = Torus2d::new(2, 8);
        let problem = GemmProblem::new(GemmShape::new(4096, 64, 256), Dataflow::Os);
        assert_eq!(
            Wang::new().resolve_overlap(&mesh, problem),
            CommAxis::InterCol
        );
        // B (K x N) far larger: overlap InterRow.
        let problem2 = GemmProblem::new(GemmShape::new(64, 4096, 256), Dataflow::Os);
        let mesh2 = Torus2d::new(8, 2);
        assert_eq!(
            Wang::new().resolve_overlap(&mesh2, problem2),
            CommAxis::InterRow
        );
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(2, 4);
        let shape = GemmShape::new(64, 64, 64);
        for df in Dataflow::ALL {
            for overlap in [
                WangOverlap::InterRow,
                WangOverlap::InterCol,
                WangOverlap::Auto,
            ] {
                let problem = GemmProblem::new(shape, df);
                let prog = Wang::with_overlap(overlap)
                    .schedule(&mesh, problem, 2)
                    .unwrap();
                assert_eq!(prog.total_flops(), shape.flops(), "{df} {overlap:?}");
            }
        }
    }

    #[test]
    fn unrolling_preserves_flops_and_reduces_gemm_count() {
        let mesh = Torus2d::new(8, 1);
        let shape = GemmShape::new(64, 64, 64);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let full = Wang::with_overlap(WangOverlap::InterRow)
            .schedule(&mesh, problem, 2)
            .unwrap();
        let unrolled = Wang::with_overlap(WangOverlap::InterRow)
            .with_unroll(2)
            .schedule(&mesh, problem, 2)
            .unwrap();
        assert_eq!(full.total_flops(), unrolled.total_flops());
        let count = |p: &Program| {
            p.ops()
                .iter()
                .filter(|o| matches!(o.kind, meshslice_sim::OpKind::Gemm { .. }))
                .count()
        };
        assert_eq!(count(&full), 8 * 8);
        assert_eq!(count(&unrolled), 8 * 2);
    }
}
