//! Wang et al.'s overlapped 2D GeMM (the state-of-the-art baseline).
//!
//! Wang decomposes the collective communication of **one** mesh direction
//! into SendRecv exchanges that software-pipeline with partial GeMMs; the
//! other direction's collective stays whole and is exposed as a prologue
//! (AllGather) or epilogue (ReduceScatter). Decomposing *both* directions
//! would require Cannon's algorithm, with its square-mesh and skew costs —
//! the gap MeshSlice closes.
//!
//! The paper applies loop unrolling to Wang so that its iteration count
//! matches MeshSlice's tuned slice count; [`Wang::with_unroll`] models
//! this by merging adjacent partial GeMMs.

use meshslice_mesh::{ChipId, CommAxis, Coord, Torus2d};
use meshslice_sim::{CollectiveKind, OpId};
use meshslice_tensor::GemmShape;

use crate::algorithm::DistributedGemm;
use crate::error::{ensure_divides, GemmError};
use crate::plan::{DataOp, MatKind, MatmulStep, Plan, TileRead};
use crate::problem::{Dataflow, GemmProblem};

/// Which direction's collective Wang decomposes into SendRecv exchanges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WangOverlap {
    /// Pick the direction with the larger traffic cost (hide the big one).
    #[default]
    Auto,
    /// Overlap the inter-row (vertical) communication.
    InterRow,
    /// Overlap the inter-column (horizontal) communication.
    InterCol,
}

/// Wang et al.'s algorithm.
///
/// # Example
///
/// ```
/// use meshslice_gemm::{Dataflow, DistributedGemm, GemmProblem, Wang};
/// use meshslice_mesh::Torus2d;
/// use meshslice_tensor::GemmShape;
///
/// # fn main() -> Result<(), meshslice_gemm::GemmError> {
/// let mesh = Torus2d::new(2, 2);
/// let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
/// let (a, b) = problem.random_inputs(&mesh, 11);
/// let c = Wang::new().execute(&mesh, problem, &a, &b)?;
/// assert!(c.assemble().approx_eq(&problem.reference(&a.assemble(), &b.assemble()), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Wang {
    overlap: WangOverlap,
    unroll: Option<usize>,
}

impl Wang {
    /// Wang with automatic overlap-direction selection and full
    /// decomposition (one GeMM per arrival).
    pub fn new() -> Self {
        Wang::default()
    }

    /// Sets the overlap direction explicitly.
    pub fn with_overlap(overlap: WangOverlap) -> Self {
        Wang {
            overlap,
            unroll: None,
        }
    }

    /// Merges the partial GeMMs into `groups` unrolled groups (must divide
    /// the overlapped ring length, otherwise full decomposition is used).
    pub fn with_unroll(mut self, groups: usize) -> Self {
        assert!(groups > 0, "unroll group count must be positive");
        self.unroll = Some(groups);
        self
    }

    /// Resolves the overlap axis for a problem on a mesh.
    ///
    /// For `Auto`, the decomposed (hidden) direction is the one whose ring
    /// collective moves more bytes: `(P − 1) × shard_bytes` per §2.3.1.
    pub fn resolve_overlap(&self, mesh: &Torus2d, problem: GemmProblem) -> CommAxis {
        match self.overlap {
            WangOverlap::InterRow => CommAxis::InterRow,
            WangOverlap::InterCol => CommAxis::InterCol,
            WangOverlap::Auto => {
                let cost = |axis: CommAxis| -> u64 {
                    let len = mesh.ring_len(axis) as u64;
                    let bytes = [
                        (problem.a_axis(), problem.a_shard_bytes(mesh.shape(), 1)),
                        (problem.b_axis(), problem.b_shard_bytes(mesh.shape(), 1)),
                        (problem.c_axis(), problem.c_shard_bytes(mesh.shape(), 1)),
                    ]
                    .into_iter()
                    .filter(|(ax, _)| *ax == Some(axis))
                    .map(|(_, b)| b)
                    .sum::<u64>();
                    (len - 1) * bytes
                };
                if cost(CommAxis::InterRow) >= cost(CommAxis::InterCol) {
                    CommAxis::InterRow
                } else {
                    CommAxis::InterCol
                }
            }
        }
    }

    pub(crate) fn groups_for(&self, ring: usize) -> usize {
        match self.unroll {
            Some(g) if g <= ring && ring.is_multiple_of(g) => g,
            _ => ring,
        }
    }
}

impl DistributedGemm for Wang {
    fn name(&self) -> &str {
        "Wang"
    }

    fn check(&self, mesh: &Torus2d, problem: GemmProblem) -> Result<(), GemmError> {
        problem.check_divisible(mesh.shape())?;
        let overlap = self.resolve_overlap(mesh, problem);
        // The rotated panels further split one dimension by the ring
        // length of the overlapped direction.
        let ring = mesh.ring_len(overlap);
        match (problem.dataflow, overlap) {
            (Dataflow::Os, CommAxis::InterCol) => {
                ensure_divides("K by Pc (Wang panels)", problem.shape.k, mesh.cols())?;
            }
            (Dataflow::Os, CommAxis::InterRow) => {
                ensure_divides("K by Pr (Wang panels)", problem.shape.k, mesh.rows())?;
            }
            (Dataflow::Ls, CommAxis::InterCol) => {
                ensure_divides("N by Pc (Wang panels)", problem.shape.n, mesh.cols())?;
            }
            (Dataflow::Ls, CommAxis::InterRow) => {
                ensure_divides("N by Pr (Wang panels)", problem.shape.n, mesh.rows())?;
            }
            (Dataflow::Rs, CommAxis::InterRow) => {
                ensure_divides("M by Pr (Wang panels)", problem.shape.m, mesh.rows())?;
            }
            (Dataflow::Rs, CommAxis::InterCol) => {
                ensure_divides("M by Pc (Wang panels)", problem.shape.m, mesh.cols())?;
            }
        }
        let _ = ring;
        Ok(())
    }

    fn plan(
        &self,
        mesh: &Torus2d,
        problem: GemmProblem,
        elem_bytes: usize,
    ) -> Result<Plan, GemmError> {
        self.check(mesh, problem)?;
        let overlap = self.resolve_overlap(mesh, problem);
        let exposed = overlap.opposite();
        let ring = mesh.ring_len(overlap);
        let shape = problem.shape;
        let (pr, pc) = (mesh.rows(), mesh.cols());
        let ms = mesh.shape();
        let a_bytes = problem.a_shard_bytes(ms, elem_bytes);
        let b_bytes = problem.b_shard_bytes(ms, elem_bytes);
        let c_bytes = problem.c_shard_bytes(ms, elem_bytes);
        let sr_dir = overlap.forward_link();

        // The rotation either carries an input shard towards the partial
        // GeMMs, or carries the C accumulator of a compute-interleaved ring
        // reduce-scatter (the LS/RS variants where the reduction direction
        // is the overlapped one).
        let ring_reduce_rotation = matches!(
            (problem.dataflow, overlap),
            (Dataflow::Ls, CommAxis::InterCol) | (Dataflow::Rs, CommAxis::InterRow)
        );
        // Unrolling chunked accumulators is not modeled; it only applies
        // to the input-rotation variants.
        let groups = if ring_reduce_rotation {
            ring
        } else {
            self.groups_for(ring)
        };
        let per_group = ring / groups;

        // Per-arrival (rotated) GeMM shape, rotated payload bytes, and
        // whether an exposed ReduceScatter follows the loop.
        let (panel_shape, rot_bytes, rds_after): (GemmShape, u64, bool) =
            match (problem.dataflow, overlap) {
                (Dataflow::Os, CommAxis::InterCol) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pc),
                    a_bytes,
                    false,
                ),
                (Dataflow::Os, CommAxis::InterRow) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pr),
                    b_bytes,
                    false,
                ),
                (Dataflow::Ls, CommAxis::InterCol) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pc),
                    c_bytes,
                    false,
                ),
                (Dataflow::Rs, CommAxis::InterRow) => (
                    GemmShape::new(shape.m / pr, shape.n / pc, shape.k / pr),
                    c_bytes,
                    false,
                ),
                (Dataflow::Ls, CommAxis::InterRow) => (
                    GemmShape::new(shape.m / pr, shape.n / pr, shape.k / pc),
                    b_bytes,
                    true,
                ),
                (Dataflow::Rs, CommAxis::InterCol) => (
                    GemmShape::new(shape.m / pc, shape.n / pc, shape.k / pr),
                    a_bytes,
                    true,
                ),
            };
        // Grouping merges panels along the dimension the rotation splits;
        // FLOPs stay constant because exactly one dimension scales.
        let merged_shape = |count: usize| -> GemmShape {
            match problem.dataflow {
                Dataflow::Os => GemmShape::new(panel_shape.m, panel_shape.n, panel_shape.k * count),
                Dataflow::Ls => GemmShape::new(panel_shape.m, panel_shape.n * count, panel_shape.k),
                Dataflow::Rs => GemmShape::new(panel_shape.m * count, panel_shape.n, panel_shape.k),
            }
        };

        // The exposed collective: an AllGather prologue, or a ReduceScatter
        // epilogue when the gathered input's rotation was overlapped.
        let (exposed_is_ag, exposed_bytes) = match (problem.dataflow, rds_after) {
            (Dataflow::Os, _) => (
                true,
                if overlap == CommAxis::InterCol {
                    b_bytes
                } else {
                    a_bytes
                },
            ),
            (Dataflow::Ls, false) => (true, b_bytes),
            (Dataflow::Rs, false) => (true, a_bytes),
            (_, true) => (false, c_bytes),
        };

        // Panel widths along the dimension the ring rotation splits.
        let k_p = shape.k / ring;
        let n_p = shape.n / ring;
        let m_p = shape.m / ring;

        Plan::build(mesh, |pb| {
            let exposed_tag = pb.sim().next_tag();
            let (a_rows, a_cols) = problem.a_shard_dims(ms);
            let (b_rows, b_cols) = problem.b_shard_dims(ms);
            let (c_rows, c_cols) = problem.c_shard_dims(ms);
            let a = pb.input_a(a_rows, a_cols);
            let b = pb.input_b(b_rows, b_cols);
            // The exposed-AG variants read panels of the gathered input;
            // the RdS variants accumulate a full-width partial first.
            let mut g_reg = None;
            let mut ag_act = None;
            if exposed_is_ag {
                let src = match (problem.dataflow, overlap) {
                    (Dataflow::Os, CommAxis::InterCol) | (Dataflow::Ls, _) => b,
                    _ => a,
                };
                let g = pb.gathered(src, exposed);
                ag_act = Some(pb.action(DataOp::AllGather {
                    src,
                    dst: g,
                    axis: exposed,
                }));
                g_reg = Some(g);
            }
            let partial = match (problem.dataflow, overlap) {
                (Dataflow::Ls, CommAxis::InterRow) => Some(pb.zeros(shape.m / pr, shape.n)),
                (Dataflow::Rs, CommAxis::InterCol) => Some(pb.zeros(shape.m, shape.n / pc)),
                _ => None,
            };
            let c = if rds_after {
                pb.reg(c_rows, c_cols)
            } else {
                pb.zeros(c_rows, c_cols)
            };
            let rds_act = partial.map(|p| {
                pb.action(DataOp::ReduceScatter {
                    src: p,
                    dst: c,
                    axis: exposed,
                })
            });

            // Ring-position helpers: the chip `s` steps along this chip's
            // overlapped ring, and this chip's own position on it.
            let pos_of = |chip: ChipId| {
                let coord = mesh.coord_of(chip);
                match overlap {
                    CommAxis::InterRow => coord.row(),
                    CommAxis::InterCol => coord.col(),
                }
            };
            let ring_chip = |chip: ChipId, s: usize| {
                let coord = mesh.coord_of(chip);
                match overlap {
                    CommAxis::InterRow => mesh.chip_at(Coord::new(s, coord.col())),
                    CommAxis::InterCol => mesh.chip_at(Coord::new(coord.row(), s)),
                }
            };
            // The partial GeMM for ring panel `s` on `chip`: panel `s` pairs
            // the K/N/M range `[s·panel, (s+1)·panel)` with the input shard
            // originally resident at ring position `s`.
            let step_for = |chip: ChipId, s: usize| -> MatmulStep {
                match (problem.dataflow, overlap) {
                    (Dataflow::Os, CommAxis::InterCol) => MatmulStep {
                        kind: MatKind::Ab,
                        lhs: TileRead::whole(a, ring_chip(chip, s)),
                        rhs: TileRead::region(g_reg.unwrap(), chip, s * k_p, 0, k_p, shape.n / pc),
                        dst: c,
                        dst_chip: chip,
                        dst_off: (0, 0),
                    },
                    (Dataflow::Os, CommAxis::InterRow) => MatmulStep {
                        kind: MatKind::Ab,
                        lhs: TileRead::region(g_reg.unwrap(), chip, 0, s * k_p, shape.m / pr, k_p),
                        rhs: TileRead::whole(b, ring_chip(chip, s)),
                        dst: c,
                        dst_chip: chip,
                        dst_off: (0, 0),
                    },
                    // Ring reduce-scatter variants contribute panel `s`
                    // straight into its owner's C shard.
                    (Dataflow::Ls, CommAxis::InterCol) => MatmulStep {
                        kind: MatKind::Abt,
                        lhs: TileRead::whole(a, chip),
                        rhs: TileRead::region(g_reg.unwrap(), chip, s * n_p, 0, n_p, shape.k / pc),
                        dst: c,
                        dst_chip: ring_chip(chip, s),
                        dst_off: (0, 0),
                    },
                    (Dataflow::Rs, CommAxis::InterRow) => MatmulStep {
                        kind: MatKind::Atb,
                        lhs: TileRead::region(g_reg.unwrap(), chip, 0, s * m_p, shape.k / pr, m_p),
                        rhs: TileRead::whole(b, chip),
                        dst: c,
                        dst_chip: ring_chip(chip, s),
                        dst_off: (0, 0),
                    },
                    // Input-rotation LS/RS build the full-width partial for
                    // the exposed ReduceScatter epilogue.
                    (Dataflow::Ls, CommAxis::InterRow) => MatmulStep {
                        kind: MatKind::Abt,
                        lhs: TileRead::whole(a, chip),
                        rhs: TileRead::whole(b, ring_chip(chip, s)),
                        dst: partial.unwrap(),
                        dst_chip: chip,
                        dst_off: (0, s * n_p),
                    },
                    (Dataflow::Rs, CommAxis::InterCol) => MatmulStep {
                        kind: MatKind::Atb,
                        lhs: TileRead::whole(a, ring_chip(chip, s)),
                        rhs: TileRead::whole(b, chip),
                        dst: partial.unwrap(),
                        dst_chip: chip,
                        dst_off: (s * m_p, 0),
                    },
                }
            };
            // The shard an input-rotation SendRecv delivers: A rotates when
            // the overlapped ring is the one A flows along, else B.
            let rot_carry = |chip: ChipId, s: usize| -> TileRead {
                match (problem.dataflow, overlap) {
                    (Dataflow::Os, CommAxis::InterCol) | (Dataflow::Rs, CommAxis::InterCol) => {
                        TileRead::whole(a, ring_chip(chip, s))
                    }
                    _ => TileRead::whole(b, ring_chip(chip, s)),
                }
            };

            // The rotation runs bidirectionally: both ring links carry shards
            // at once, like the TPU collectives it decomposes.
            let fwd_dir = sr_dir;
            let bwd_dir = overlap.backward_link();
            for chip in mesh.chips() {
                let own = pos_of(chip);
                let ag = if exposed_is_ag {
                    let op = pb.sim().collective(
                        chip,
                        exposed_tag,
                        CollectiveKind::AllGather,
                        exposed,
                        exposed_bytes,
                        2,
                        &[],
                    );
                    pb.anchor(ag_act.unwrap(), op);
                    Some(op)
                } else {
                    None
                };
                let mut last_gemm: Option<OpId> = None;
                if ring_reduce_rotation {
                    // Two accumulators circulate in opposite directions, each
                    // covering half the output panels: per round a chip adds
                    // its contribution (a partial GeMM) and passes the
                    // accumulator on. The forward accumulator a chip touches
                    // at round r comes home to ring position own + F − 1 − r;
                    // the backward rounds cover the remaining panels.
                    let f_rounds = ring.div_ceil(2);
                    for (chain, (dir, panels)) in [(fwd_dir, f_rounds), (bwd_dir, ring / 2)]
                        .into_iter()
                        .enumerate()
                    {
                        let mut last_sr: Option<OpId> = None;
                        for p in 0..panels {
                            let panel = if chain == 0 {
                                (own + f_rounds - 1 - p) % ring
                            } else {
                                (own + f_rounds + p) % ring
                            };
                            let mut deps: Vec<OpId> = Vec::new();
                            deps.extend(ag);
                            deps.extend(last_sr);
                            let gemm = pb.sim().gemm(chip, merged_shape(1), &deps);
                            pb.attach(
                                gemm,
                                DataOp::Compute {
                                    steps: vec![step_for(chip, panel)],
                                },
                            );
                            last_gemm = Some(gemm);
                            if p + 1 < panels {
                                let deps: Vec<OpId> =
                                    last_sr.into_iter().chain(std::iter::once(gemm)).collect();
                                let sr = pb.sim().send_recv(chip, dir, rot_bytes, &deps);
                                pb.attach(
                                    sr,
                                    DataOp::Carries {
                                        tile: TileRead::whole(c, ring_chip(chip, panel)),
                                    },
                                );
                                last_sr = Some(sr);
                            }
                        }
                    }
                } else {
                    // Input rotation: shards arrive alternately from both ring
                    // directions; group g's GeMM waits for the arrivals it
                    // consumes (the chip's own shard is panel 0). A forward
                    // arrival delivers the shard f positions behind; a
                    // backward arrival the shard k positions ahead.
                    let mut fwd_prev: Option<OpId> = None;
                    let mut bwd_prev: Option<OpId> = None;
                    let fwd_total = (ring - 1).div_ceil(2);
                    let bwd_total = (ring - 1) / 2;
                    let (mut fwd_done, mut bwd_done) = (0usize, 0usize);
                    let mut arrivals = 0usize;
                    let mut pending: Vec<usize> = vec![own];
                    for g in 0..groups {
                        let target = (g + 1) * per_group - 1;
                        while arrivals < target {
                            if fwd_done <= bwd_done && fwd_done < fwd_total {
                                let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                                let sr = pb.sim().send_recv(chip, fwd_dir, rot_bytes, &deps);
                                fwd_done += 1;
                                let src = (own + ring - fwd_done) % ring;
                                pb.attach(
                                    sr,
                                    DataOp::Carries {
                                        tile: rot_carry(chip, src),
                                    },
                                );
                                pending.push(src);
                                fwd_prev = Some(sr);
                            } else if bwd_done < bwd_total {
                                let deps: Vec<OpId> = bwd_prev.into_iter().collect();
                                let sr = pb.sim().send_recv(chip, bwd_dir, rot_bytes, &deps);
                                bwd_done += 1;
                                let src = (own + bwd_done) % ring;
                                pb.attach(
                                    sr,
                                    DataOp::Carries {
                                        tile: rot_carry(chip, src),
                                    },
                                );
                                pending.push(src);
                                bwd_prev = Some(sr);
                            } else {
                                let deps: Vec<OpId> = fwd_prev.into_iter().collect();
                                let sr = pb.sim().send_recv(chip, fwd_dir, rot_bytes, &deps);
                                fwd_done += 1;
                                let src = (own + ring - fwd_done) % ring;
                                pb.attach(
                                    sr,
                                    DataOp::Carries {
                                        tile: rot_carry(chip, src),
                                    },
                                );
                                pending.push(src);
                                fwd_prev = Some(sr);
                            }
                            arrivals += 1;
                        }
                        let mut deps: Vec<OpId> = Vec::new();
                        deps.extend(ag);
                        deps.extend(fwd_prev);
                        deps.extend(bwd_prev);
                        let gemm = pb.sim().gemm(chip, merged_shape(per_group), &deps);
                        let steps: Vec<MatmulStep> =
                            pending.drain(..).map(|s| step_for(chip, s)).collect();
                        pb.attach(gemm, DataOp::Compute { steps });
                        last_gemm = Some(gemm);
                    }
                }
                if !exposed_is_ag {
                    let deps: Vec<OpId> = last_gemm.into_iter().collect();
                    let op = pb.sim().collective(
                        chip,
                        exposed_tag,
                        CollectiveKind::ReduceScatter,
                        exposed,
                        exposed_bytes,
                        2,
                        &deps,
                    );
                    pb.anchor(rds_act.unwrap(), op);
                }
            }
            Ok(c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_sim::Program;

    fn check_functional(
        df: Dataflow,
        overlap: WangOverlap,
        mesh: (usize, usize),
        shape: (usize, usize, usize),
    ) {
        let mesh = Torus2d::new(mesh.0, mesh.1);
        let problem = GemmProblem::new(GemmShape::new(shape.0, shape.1, shape.2), df);
        let algo = Wang::with_overlap(overlap);
        let (a, b) = problem.random_inputs(&mesh, 77);
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(
            c.assemble().approx_eq(&expect, 1e-4),
            "{df} overlap {overlap:?}: max diff {}",
            c.assemble().max_abs_diff(&expect)
        );
    }

    #[test]
    fn os_both_overlap_directions_match_dense() {
        check_functional(Dataflow::Os, WangOverlap::InterCol, (2, 3), (4, 6, 12));
        check_functional(Dataflow::Os, WangOverlap::InterRow, (2, 3), (4, 6, 12));
    }

    #[test]
    fn ls_both_overlap_directions_match_dense() {
        check_functional(Dataflow::Ls, WangOverlap::InterCol, (2, 3), (4, 12, 6));
        check_functional(Dataflow::Ls, WangOverlap::InterRow, (2, 3), (4, 12, 6));
    }

    #[test]
    fn rs_both_overlap_directions_match_dense() {
        check_functional(Dataflow::Rs, WangOverlap::InterRow, (3, 2), (12, 4, 6));
        check_functional(Dataflow::Rs, WangOverlap::InterCol, (3, 2), (12, 4, 6));
    }

    #[test]
    fn auto_overlap_matches_dense() {
        check_functional(Dataflow::Os, WangOverlap::Auto, (4, 2), (8, 8, 8));
    }

    #[test]
    fn unrolled_matches_dense() {
        let mesh = Torus2d::new(4, 1);
        let problem = GemmProblem::new(GemmShape::new(8, 8, 8), Dataflow::Os);
        let algo = Wang::with_overlap(WangOverlap::InterRow).with_unroll(2);
        let (a, b) = problem.random_inputs(&mesh, 7);
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        let expect = problem.reference(&a.assemble(), &b.assemble());
        assert!(c.assemble().approx_eq(&expect, 1e-4));
    }

    #[test]
    fn auto_hides_the_larger_direction() {
        // A (M x K) is far larger than B: A flows inter-column, so Auto
        // must overlap InterCol when its traffic dominates.
        let mesh = Torus2d::new(2, 8);
        let problem = GemmProblem::new(GemmShape::new(4096, 64, 256), Dataflow::Os);
        assert_eq!(
            Wang::new().resolve_overlap(&mesh, problem),
            CommAxis::InterCol
        );
        // B (K x N) far larger: overlap InterRow.
        let problem2 = GemmProblem::new(GemmShape::new(64, 4096, 256), Dataflow::Os);
        let mesh2 = Torus2d::new(8, 2);
        assert_eq!(
            Wang::new().resolve_overlap(&mesh2, problem2),
            CommAxis::InterRow
        );
    }

    #[test]
    fn schedule_flops_equal_problem_flops() {
        let mesh = Torus2d::new(2, 4);
        let shape = GemmShape::new(64, 64, 64);
        for df in Dataflow::ALL {
            for overlap in [
                WangOverlap::InterRow,
                WangOverlap::InterCol,
                WangOverlap::Auto,
            ] {
                let problem = GemmProblem::new(shape, df);
                let prog = Wang::with_overlap(overlap)
                    .schedule(&mesh, problem, 2)
                    .unwrap();
                assert_eq!(prog.total_flops(), shape.flops(), "{df} {overlap:?}");
            }
        }
    }

    #[test]
    fn unrolling_preserves_flops_and_reduces_gemm_count() {
        let mesh = Torus2d::new(8, 1);
        let shape = GemmShape::new(64, 64, 64);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let full = Wang::with_overlap(WangOverlap::InterRow)
            .schedule(&mesh, problem, 2)
            .unwrap();
        let unrolled = Wang::with_overlap(WangOverlap::InterRow)
            .with_unroll(2)
            .schedule(&mesh, problem, 2)
            .unwrap();
        assert_eq!(full.total_flops(), unrolled.total_flops());
        let count = |p: &Program| {
            p.ops()
                .iter()
                .filter(|o| matches!(o.kind, meshslice_sim::OpKind::Gemm { .. }))
                .count()
        };
        assert_eq!(count(&full), 8 * 8);
        assert_eq!(count(&unrolled), 8 * 2);
    }
}
