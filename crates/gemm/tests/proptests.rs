//! Property-based correctness tests: every distributed algorithm must
//! compute the same result as dense GeMM, for random shapes, meshes, and
//! dataflows.

use meshslice_gemm::{
    Cannon, Collective, Dataflow, DistributedGemm, Fsdp, GemmProblem, MeshSlice, OneDimTp, Summa,
    Wang,
};
use meshslice_mesh::Torus2d;
use meshslice_tensor::gemm::matmul;
use meshslice_tensor::shard::{partition_cols, partition_rows, ShardGrid};
use meshslice_tensor::{GemmShape, Matrix};
use proptest::prelude::*;

fn dataflow() -> impl Strategy<Value = Dataflow> {
    prop_oneof![Just(Dataflow::Os), Just(Dataflow::Ls), Just(Dataflow::Rs)]
}

/// Runs an algorithm functionally and compares against the dense reference.
fn check(algo: &dyn DistributedGemm, mesh: &Torus2d, problem: GemmProblem, seed: u64) {
    let (a, b) = problem.random_inputs(mesh, seed);
    let c = algo
        .execute(mesh, problem, &a, &b)
        .unwrap_or_else(|e| panic!("{} failed on {problem}: {e}", algo.name()));
    let expect = problem.reference(&a.assemble(), &b.assemble());
    let got = c.assemble();
    assert!(
        got.approx_eq(&expect, 1e-3),
        "{} wrong on {problem}: max diff {}",
        algo.name(),
        got.max_abs_diff(&expect)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn collective_matches_dense(
        pr in 1usize..4, pc in 1usize..4,
        mu in 1usize..3, nu in 1usize..3, ku in 1usize..3,
        df in dataflow(), seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        // Dimensions chosen as multiples of pr*pc so every dataflow's
        // storage layout divides evenly.
        let unit = pr * pc;
        let shape = GemmShape::new(mu * unit, nu * unit, ku * unit);
        check(&Collective, &mesh, GemmProblem::new(shape, df), seed);
    }

    #[test]
    fn meshslice_matches_dense(
        pr in 1usize..4, pc in 1usize..4,
        s in 1usize..4, blk in 1usize..3,
        scale in 1usize..3,
        df in dataflow(), seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        // Every dimension a multiple of pr*pc*s*blk keeps all slicing and
        // sharding constraints satisfiable.
        let unit = pr * pc * s * blk * scale;
        let shape = GemmShape::new(unit, unit, unit);
        let algo = MeshSlice::new(s, blk);
        check(&algo, &mesh, GemmProblem::new(shape, df), seed);
    }

    #[test]
    fn summa_matches_dense(
        pr in 1usize..4, pc in 1usize..4,
        panel_mult in 1usize..3,
        df in dataflow(), seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let panels = {
            // lcm(pr, pc) * panel_mult
            let gcd = |mut a: usize, mut b: usize| { while b != 0 { let t = a % b; a = b; b = t; } a };
            pr / gcd(pr, pc) * pc * panel_mult
        };
        let unit = pr * pc * panels;
        let shape = GemmShape::new(unit, unit, unit);
        let algo = Summa::new(panels);
        check(&algo, &mesh, GemmProblem::new(shape, df), seed);
    }

    #[test]
    fn cannon_matches_dense(
        p in 1usize..5, scale in 1usize..3, seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(p, p);
        let shape = GemmShape::new(p * scale, p * scale, p * scale);
        check(&Cannon, &mesh, GemmProblem::new(shape, Dataflow::Os), seed);
    }

    #[test]
    fn wang_matches_dense(
        pr in 1usize..4, pc in 1usize..4,
        df in dataflow(), seed in any::<u64>(),
        scale in 1usize..3,
    ) {
        let mesh = Torus2d::new(pr, pc);
        let unit = pr * pc * scale;
        let shape = GemmShape::new(unit, unit, unit);
        check(&Wang::new(), &mesh, GemmProblem::new(shape, df), seed);
    }

    #[test]
    fn one_d_baselines_match_dense(
        n in 1usize..6, scale in 1usize..3, seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(n, 1);
        let dim = n * scale * 2;
        let shape = GemmShape::new(dim, dim, dim);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let a_global = Matrix::random(dim, dim, seed);
        let b_global = Matrix::random(dim, dim, seed.wrapping_add(9));
        let expect = matmul(&a_global, &b_global);

        let a = ShardGrid::from_shards(n, 1, partition_rows(&a_global, n));
        let b_col = ShardGrid::from_shards(n, 1, partition_cols(&b_global, n));
        let c_tp = OneDimTp::new().execute(&mesh, problem, &a, &b_col).unwrap();
        for i in 0..n {
            let block = expect.block(0, i * dim / n, dim, dim / n);
            prop_assert!(c_tp.shard(i, 0).approx_eq(&block, 1e-3));
        }

        let b_row = ShardGrid::from_shards(n, 1, partition_rows(&b_global, n));
        let c_fsdp = Fsdp::new().execute(&mesh, problem, &a, &b_row).unwrap();
        prop_assert!(c_fsdp.assemble().approx_eq(&expect, 1e-3));
    }

    #[test]
    fn all_algorithms_agree_with_each_other(
        pr in 1usize..3, pc in 1usize..3, seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let unit = 2 * pr * pc;
        let shape = GemmShape::new(unit, unit, unit);
        let problem = GemmProblem::new(shape, Dataflow::Os);
        let (a, b) = problem.random_inputs(&mesh, seed);
        let reference = Collective.execute(&mesh, problem, &a, &b).unwrap().assemble();
        let algos: Vec<Box<dyn DistributedGemm>> = vec![
            Box::new(MeshSlice::new(2, 1)),
            Box::new(Summa::auto(&mesh)),
            Box::new(Wang::new()),
        ];
        for algo in &algos {
            let c = algo.execute(&mesh, problem, &a, &b).unwrap().assemble();
            prop_assert!(
                c.approx_eq(&reference, 1e-3),
                "{} diverges from Collective",
                algo.name()
            );
        }
    }

    #[test]
    fn schedules_always_preserve_flops(
        pr in 1usize..4, pc in 1usize..4,
        df in dataflow(),
        s in 1usize..3,
    ) {
        let mesh = Torus2d::new(pr, pc);
        let unit = 4 * pr * pc * s;
        let shape = GemmShape::new(unit, unit, unit);
        let problem = GemmProblem::new(shape, df);
        let algos: Vec<Box<dyn DistributedGemm>> = vec![
            Box::new(Collective),
            Box::new(MeshSlice::new(s, 2)),
            Box::new(Summa::auto(&mesh)),
            Box::new(Wang::new()),
        ];
        for algo in algos {
            let prog = algo.schedule(&mesh, problem, 2).unwrap();
            prop_assert_eq!(prog.total_flops(), shape.flops(), "{}", algo.name());
        }
    }
}
