//! Named mesh axes.

use std::fmt;

use crate::MeshError;

/// A short, inline, copyable axis name (`"x"`, `"y"`, `"z"`, `"dp"`, …).
///
/// Names are 1 to [`AxisName::MAX_LEN`] characters of `[A-Za-z0-9_]`, stored
/// inline so shapes and coordinates stay `Copy` and hashable with no global
/// interner. Ordering is lexicographic and deterministic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AxisName {
    // `bytes` precedes `len` so the derived `Ord` is lexicographic over the
    // zero-padded name (the pad byte 0 sorts before every legal character).
    bytes: [u8; Self::MAX_LEN],
    len: u8,
}

impl AxisName {
    /// Maximum name length in bytes.
    pub const MAX_LEN: usize = 8;

    /// The conventional first (row) axis, `"x"`.
    pub const X: AxisName = AxisName::lit(b"x");
    /// The conventional second (column) axis, `"y"`.
    pub const Y: AxisName = AxisName::lit(b"y");
    /// The conventional third axis of a 3D pod, `"z"`.
    pub const Z: AxisName = AxisName::lit(b"z");
    /// The conventional fourth axis, `"w"`.
    pub const W: AxisName = AxisName::lit(b"w");

    /// Default axis names by position: `x, y, z, w`.
    pub const DEFAULTS: [AxisName; crate::MAX_AXES] =
        [AxisName::X, AxisName::Y, AxisName::Z, AxisName::W];

    const fn lit(s: &[u8]) -> AxisName {
        assert!(!s.is_empty() && s.len() <= Self::MAX_LEN);
        let mut bytes = [0u8; Self::MAX_LEN];
        let mut i = 0;
        while i < s.len() {
            bytes[i] = s[i];
            i += 1;
        }
        AxisName {
            bytes,
            len: s.len() as u8,
        }
    }

    /// Creates a validated axis name.
    ///
    /// # Errors
    ///
    /// [`MeshError::BadAxisName`] when the name is empty, longer than
    /// [`MAX_LEN`](Self::MAX_LEN), or contains characters outside
    /// `[A-Za-z0-9_]`.
    pub fn new(name: &str) -> Result<AxisName, MeshError> {
        let ok_len = !name.is_empty() && name.len() <= Self::MAX_LEN;
        let ok_chars = name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_');
        if !(ok_len && ok_chars) {
            return Err(MeshError::BadAxisName { name: name.into() });
        }
        Ok(Self::lit(name.as_bytes()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        // Construction only admits ASCII, so the prefix is valid UTF-8.
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("axis names are ASCII")
    }
}

impl fmt::Debug for AxisName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for AxisName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_orders_lexically() {
        let a = AxisName::new("dp").unwrap();
        assert_eq!(a.as_str(), "dp");
        assert_eq!(a.to_string(), "dp");
        assert!(AxisName::new("a").unwrap() < AxisName::new("ab").unwrap());
        assert!(AxisName::new("ab").unwrap() < AxisName::new("b").unwrap());
        assert_eq!(AxisName::X.as_str(), "x");
    }

    #[test]
    fn rejects_bad_names() {
        assert!(AxisName::new("").is_err());
        assert!(AxisName::new("toolongname").is_err());
        assert!(AxisName::new("a b").is_err());
        assert!(AxisName::new("ünicode").is_err());
        assert!(AxisName::new("ok_name8").is_ok());
    }
}
