//! Chip identifiers and mesh coordinates.

use std::fmt;

/// A dense chip identifier in `0..num_chips`, row-major over the mesh.
///
/// `ChipId` is a newtype so chip indices cannot be confused with mesh
/// dimensions, ring positions, or task indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChipId(pub usize);

impl ChipId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<ChipId> for usize {
    fn from(id: ChipId) -> usize {
        id.0
    }
}

/// A position in the mesh: `(row, col)`.
///
/// The chip at `Coord::new(i, j)` stores shard `X_ij` of every matrix, per
/// the paper's §2.3.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Mesh row index, `0..Pr`.
    pub row: usize,
    /// Mesh column index, `0..Pc`.
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate from `(row, col)`.
    pub fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_id_is_transparent() {
        assert_eq!(ChipId(3).index(), 3);
        assert_eq!(usize::from(ChipId(9)), 9);
        assert_eq!(format!("{:?}", ChipId(2)), "chip2");
    }

    #[test]
    fn coord_display() {
        assert_eq!(Coord::new(1, 2).to_string(), "(1,2)");
    }

    #[test]
    fn coord_ordering_is_row_major() {
        assert!(Coord::new(0, 5) < Coord::new(1, 0));
    }
}
