//! Chip identifiers and N-D mesh coordinates.

use std::fmt;

use crate::{MeshError, MAX_AXES};

/// A dense chip identifier in `0..num_chips`, row-major over the mesh.
///
/// `ChipId` is a newtype so chip indices cannot be confused with mesh
/// dimensions, ring positions, or task indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChipId(pub usize);

impl ChipId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<ChipId> for usize {
    fn from(id: ChipId) -> usize {
        id.0
    }
}

/// A position in an N-D mesh: one index per axis, in axis order.
///
/// The 2D specialization keeps the paper's convention: `Coord::new(i, j)` is
/// mesh row `i`, mesh column `j`, and the chip there stores shard `X_ij` of
/// every matrix (§2.3.1). [`row`](Coord::row) and [`col`](Coord::col) read
/// those two components back; N-D coordinates are built with
/// [`Coord::nd`] and read with [`Coord::get`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    // `idx` precedes `rank` so the derived `Ord` is row-major (the unused
    // tail is zero, and equal-rank coords compare component-wise).
    idx: [u32; MAX_AXES],
    rank: u8,
}

impl Coord {
    /// Creates a 2D coordinate from `(row, col)`.
    pub fn new(row: usize, col: usize) -> Self {
        Coord::nd(&[row, col]).expect("2D coordinates always fit")
    }

    /// Creates an N-D coordinate from its components, one per axis.
    ///
    /// # Errors
    ///
    /// [`MeshError::TooManyAxes`] for more than [`MAX_AXES`] components,
    /// [`MeshError::NoAxes`] for none.
    pub fn nd(components: &[usize]) -> Result<Self, MeshError> {
        if components.is_empty() {
            return Err(MeshError::NoAxes);
        }
        if components.len() > MAX_AXES {
            return Err(MeshError::TooManyAxes {
                got: components.len(),
            });
        }
        let mut idx = [0u32; MAX_AXES];
        for (slot, &c) in idx.iter_mut().zip(components) {
            *slot = u32::try_from(c).map_err(|_| MeshError::CoordOutOfRange {
                coord: format!("{c}"),
                shape: "any".into(),
            })?;
        }
        Ok(Coord {
            idx,
            rank: components.len() as u8,
        })
    }

    /// Number of components (the rank of the shape this coordinate indexes).
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The component on axis `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn get(&self, i: usize) -> usize {
        assert!(
            i < self.rank(),
            "axis {i} out of range for rank {}",
            self.rank
        );
        self.idx[i] as usize
    }

    /// All components, in axis order.
    pub fn components(&self) -> &[u32] {
        &self.idx[..self.rank as usize]
    }

    /// The mesh row (first component) of a 2D coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is not rank 2.
    pub fn row(&self) -> usize {
        assert_eq!(
            self.rank, 2,
            "row() needs a 2D coordinate, got rank {}",
            self.rank
        );
        self.idx[0] as usize
    }

    /// The mesh column (second component) of a 2D coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is not rank 2.
    pub fn col(&self) -> usize {
        assert_eq!(
            self.rank, 2,
            "col() needs a 2D coordinate, got rank {}",
            self.rank
        );
        self.idx[1] as usize
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.components().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_id_is_transparent() {
        assert_eq!(ChipId(3).index(), 3);
        assert_eq!(usize::from(ChipId(9)), 9);
        assert_eq!(format!("{:?}", ChipId(2)), "chip2");
    }

    #[test]
    fn coord_display() {
        assert_eq!(Coord::new(1, 2).to_string(), "(1,2)");
        assert_eq!(Coord::nd(&[1, 2, 3]).unwrap().to_string(), "(1,2,3)");
    }

    #[test]
    fn coord_ordering_is_row_major() {
        assert!(Coord::new(0, 5) < Coord::new(1, 0));
        assert!(Coord::nd(&[0, 3, 3]).unwrap() < Coord::nd(&[1, 0, 0]).unwrap());
    }

    #[test]
    fn accessors_and_rank() {
        let c = Coord::nd(&[4, 5, 6]).unwrap();
        assert_eq!(c.rank(), 3);
        assert_eq!(c.get(2), 6);
        let d = Coord::new(7, 8);
        assert_eq!((d.row(), d.col()), (7, 8));
    }

    #[test]
    fn nd_rejects_bad_ranks() {
        assert_eq!(Coord::nd(&[]), Err(MeshError::NoAxes));
        assert!(matches!(
            Coord::nd(&[0; 5]),
            Err(MeshError::TooManyAxes { got: 5 })
        ));
    }

    #[test]
    #[should_panic(expected = "2D coordinate")]
    fn row_on_3d_panics() {
        Coord::nd(&[1, 2, 3]).unwrap().row();
    }
}
