//! Typed errors for the mesh/layout algebra.

use std::error::Error;
use std::fmt;

/// Why a shape, coordinate, or view operation is invalid.
///
/// Every fallible constructor and view operation of the algebra returns
/// `MeshError` instead of panicking; the panicking conveniences
/// (`MeshShape::new`, `Torus2d::chip_at`, …) are thin `expect` wrappers kept
/// for call sites that validate their inputs up front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeshError {
    /// An axis was given size zero.
    ZeroAxis {
        /// The offending axis name.
        axis: String,
    },
    /// More axes than the algebra supports ([`MAX_AXES`](crate::MAX_AXES)).
    TooManyAxes {
        /// The number of axes requested.
        got: usize,
    },
    /// A shape needs at least one axis.
    NoAxes,
    /// Two axes share a name.
    DuplicateAxis {
        /// The repeated axis name.
        axis: String,
    },
    /// An axis name is empty, too long, or not `[A-Za-z0-9_]`.
    BadAxisName {
        /// The rejected name.
        name: String,
    },
    /// A named axis does not exist in the shape or view.
    UnknownAxis {
        /// The name that failed to resolve.
        axis: String,
    },
    /// A coordinate's rank does not match the shape's.
    RankMismatch {
        /// The rank the shape or view has.
        expected: usize,
        /// The rank that was supplied.
        got: usize,
    },
    /// A coordinate component is outside its axis.
    CoordOutOfRange {
        /// The coordinate, formatted.
        coord: String,
        /// The shape it was resolved against, formatted.
        shape: String,
    },
    /// A chip index is outside the mesh.
    ChipOutOfRange {
        /// The raw chip index.
        chip: usize,
        /// The number of chips in the mesh.
        num_chips: usize,
    },
    /// A split's factor sizes do not multiply back to the axis size.
    SplitSizeMismatch {
        /// The axis being split.
        axis: String,
        /// Its size.
        size: usize,
        /// The product of the requested factors.
        product: usize,
    },
    /// A split was requested on an axis whose physical layout is not
    /// separable into the requested factors (e.g. splitting a flattened
    /// axis against the grain of the fold).
    NotSeparable {
        /// The axis being split.
        axis: String,
    },
    /// A slice range is empty or exceeds the axis extent.
    BadRange {
        /// The axis being sliced.
        axis: String,
        /// Range start.
        start: usize,
        /// Range end (exclusive).
        end: usize,
        /// The axis size.
        size: usize,
    },
    /// An operation needs a rank-2 shape or view (the 2D specializations).
    NotRank2 {
        /// The rank that was found.
        got: usize,
    },
    /// A permutation does not name each axis exactly once.
    BadPermutation {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::ZeroAxis { axis } => write!(f, "axis '{axis}' has size zero"),
            MeshError::TooManyAxes { got } => {
                write!(f, "{got} axes exceed the {} supported", crate::MAX_AXES)
            }
            MeshError::NoAxes => write!(f, "a mesh shape needs at least one axis"),
            MeshError::DuplicateAxis { axis } => write!(f, "duplicate axis name '{axis}'"),
            MeshError::BadAxisName { name } => write!(
                f,
                "bad axis name '{name}' (need 1..={} chars of [A-Za-z0-9_])",
                crate::AxisName::MAX_LEN
            ),
            MeshError::UnknownAxis { axis } => write!(f, "unknown axis '{axis}'"),
            MeshError::RankMismatch { expected, got } => {
                write!(
                    f,
                    "rank mismatch: shape has {expected} axes, coord has {got}"
                )
            }
            MeshError::CoordOutOfRange { coord, shape } => {
                write!(f, "coordinate {coord} outside {shape} mesh")
            }
            MeshError::ChipOutOfRange { chip, num_chips } => {
                write!(f, "chip{chip} outside {num_chips}-chip mesh")
            }
            MeshError::SplitSizeMismatch {
                axis,
                size,
                product,
            } => write!(
                f,
                "cannot split axis '{axis}' of size {size} into factors with product {product}"
            ),
            MeshError::NotSeparable { axis } => {
                write!(
                    f,
                    "axis '{axis}' is not separable into the requested factors"
                )
            }
            MeshError::BadRange {
                axis,
                start,
                end,
                size,
            } => write!(
                f,
                "range {start}..{end} invalid for axis '{axis}' of size {size}"
            ),
            MeshError::NotRank2 { got } => {
                write!(f, "operation needs a 2D mesh, found rank {got}")
            }
            MeshError::BadPermutation { reason } => write!(f, "bad permutation: {reason}"),
        }
    }
}

impl Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = MeshError::ZeroAxis { axis: "z".into() };
        assert!(e.to_string().contains('z'));
        let e = MeshError::ChipOutOfRange {
            chip: 9,
            num_chips: 8,
        };
        assert!(e.to_string().contains("chip9"));
        let e = MeshError::NotRank2 { got: 3 };
        assert!(e.to_string().contains('3'));
    }
}
