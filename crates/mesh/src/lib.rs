//! 2D-torus mesh topology for the MeshSlice reproduction.
//!
//! 2D tensor parallelism runs on a cluster of chips connected as a 2D torus
//! ([`Torus2d`]). Every chip is identified by a [`ChipId`] or equivalently a
//! [`Coord`] (mesh row, mesh column), and owns four inter-chip interconnect
//! (ICI) links, one per [`LinkDir`].
//!
//! Collective communication happens on *rings*: the chips of one mesh row
//! (a horizontal ring, used by the paper's `AG_col`/`RdS_col` inter-column
//! operations) or one mesh column (a vertical ring, used by `AG_row`/
//! `RdS_row` inter-row operations). [`CommAxis`] names the two options with
//! the paper's subscript convention.
//!
//! # Example
//!
//! ```
//! use meshslice_mesh::{CommAxis, Coord, Torus2d};
//!
//! let mesh = Torus2d::new(4, 2);
//! assert_eq!(mesh.num_chips(), 8);
//! let ring = mesh.ring_through(Coord::new(1, 0), CommAxis::InterRow);
//! assert_eq!(ring.len(), 4); // the whole column of chip (1, 0)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod ring;
mod shape;
mod torus;

pub use coord::{ChipId, Coord};
pub use ring::{CommAxis, LinkDir, Ring};
pub use shape::MeshShape;
pub use torus::Torus2d;
