//! N-D mesh/layout algebra for the MeshSlice reproduction.
//!
//! Device meshes are N-D shapes with *named* axes ([`MeshShape`], e.g.
//! `[("x", 4), ("y", 4), ("z", 2)]`), indexed row-major. [`MeshView`] lays
//! a logical window over a shape and supports the view algebra — `select`/
//! `slice` (sub-mesh), `permute`/`transpose`, `flatten` (fold axes into one
//! logical ring), and `split` (factor an axis) — with every view still
//! resolving to physical [`ChipId`]s and per-hop link assignments
//! ([`MeshView::ring_hops`]).
//!
//! 2D tensor parallelism runs on the rank-2 specialization: a [`Torus2d`]
//! over axes `x` (mesh rows) and `y` (mesh columns). Every chip is
//! identified by a [`ChipId`] or equivalently a [`Coord`], and owns four
//! inter-chip interconnect (ICI) links, one per [`LinkDir`].
//!
//! Collective communication happens on *rings*: the chips of one mesh row
//! (a horizontal ring, used by the paper's `AG_col`/`RdS_col` inter-column
//! operations) or one mesh column (a vertical ring, used by `AG_row`/
//! `RdS_row` inter-row operations). [`CommAxis`] names the two options with
//! the paper's subscript convention; N-D rings are
//! [`MeshView::ring_along`] over any named axis.
//!
//! # Example
//!
//! ```
//! use meshslice_mesh::{AxisName, CommAxis, Coord, MeshShape, MeshView, Torus2d};
//!
//! let mesh = Torus2d::new(4, 2);
//! assert_eq!(mesh.num_chips(), 8);
//! let ring = mesh.ring_through(Coord::new(1, 0), CommAxis::InterRow);
//! assert_eq!(ring.len(), 4); // the whole column of chip (1, 0)
//!
//! // The same chips through the N-D algebra: a 3D pod's z = 0 plane.
//! let pod = MeshShape::nd(&[("x", 4), ("y", 2), ("z", 2)]).unwrap();
//! let plane = MeshView::full(pod).select(AxisName::Z, 0).unwrap();
//! assert_eq!(plane.num_chips(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axis;
mod coord;
mod error;
mod ring;
mod shape;
mod torus;
mod view;

pub use axis::AxisName;
pub use coord::{ChipId, Coord};
pub use error::MeshError;
pub use ring::{CommAxis, LinkDir, Ring, RingAxis};
pub use shape::{Axis, MeshShape, MAX_AXES};
pub use torus::Torus2d;
pub use view::{HopLink, MeshPlane, MeshView, RingHop};
