//! Rings, communication axes, and ICI link directions.

use std::fmt;

use crate::{AxisName, ChipId};

/// The two directions a 2D GeMM communicates in, named with the paper's
/// subscript convention (§2.3, Figure 2):
///
/// - [`CommAxis::InterRow`] — "row"-subscripted operations (`AG_row`,
///   `RdS_row`, `bcast_row`): the shard moves *vertically* between the chips
///   of one mesh **column**.
/// - [`CommAxis::InterCol`] — "col"-subscripted operations (`AG_col`,
///   `RdS_col`, `bcast_col`): the shard moves *horizontally* between the
///   chips of one mesh **row**.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommAxis {
    /// Vertical communication within a mesh column (ring length = mesh rows).
    InterRow,
    /// Horizontal communication within a mesh row (ring length = mesh cols).
    InterCol,
}

impl CommAxis {
    /// The other axis.
    pub fn opposite(self) -> CommAxis {
        match self {
            CommAxis::InterRow => CommAxis::InterCol,
            CommAxis::InterCol => CommAxis::InterRow,
        }
    }

    /// The named mesh axis a ring on this communication axis runs along:
    /// inter-row rings advance along axis `x` (mesh rows), inter-col rings
    /// along axis `y` (mesh columns).
    pub fn axis_name(self) -> AxisName {
        match self {
            CommAxis::InterRow => AxisName::X,
            CommAxis::InterCol => AxisName::Y,
        }
    }

    /// The communication axis for a named 2D mesh axis (`x` or `y`).
    pub fn from_axis_name(name: AxisName) -> Option<CommAxis> {
        if name == AxisName::X {
            Some(CommAxis::InterRow)
        } else if name == AxisName::Y {
            Some(CommAxis::InterCol)
        } else {
            None
        }
    }

    /// The forward link direction a unidirectional ring on this axis uses.
    pub fn forward_link(self) -> LinkDir {
        match self {
            CommAxis::InterRow => LinkDir::RowPlus,
            CommAxis::InterCol => LinkDir::ColPlus,
        }
    }

    /// The backward link direction of a ring on this axis.
    pub fn backward_link(self) -> LinkDir {
        match self {
            CommAxis::InterRow => LinkDir::RowMinus,
            CommAxis::InterCol => LinkDir::ColMinus,
        }
    }
}

impl fmt::Display for CommAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommAxis::InterRow => write!(f, "inter-row"),
            CommAxis::InterCol => write!(f, "inter-col"),
        }
    }
}

/// One of the four ICI links of a chip in a 2D torus.
///
/// `RowPlus` points to the chip at `(row + 1, col)` (wrapping), `ColPlus`
/// to `(row, col + 1)`, and the `Minus` variants to the opposite neighbors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkDir {
    /// Towards `(row + 1, col)`.
    RowPlus,
    /// Towards `(row − 1, col)`.
    RowMinus,
    /// Towards `(row, col + 1)`.
    ColPlus,
    /// Towards `(row, col − 1)`.
    ColMinus,
}

impl LinkDir {
    /// All four directions.
    pub const ALL: [LinkDir; 4] = [
        LinkDir::RowPlus,
        LinkDir::RowMinus,
        LinkDir::ColPlus,
        LinkDir::ColMinus,
    ];

    /// A dense index in `0..4`, for per-link resource tables.
    pub fn index(self) -> usize {
        match self {
            LinkDir::RowPlus => 0,
            LinkDir::RowMinus => 1,
            LinkDir::ColPlus => 2,
            LinkDir::ColMinus => 3,
        }
    }

    /// The direction pointing back at the sender.
    pub fn opposite(self) -> LinkDir {
        match self {
            LinkDir::RowPlus => LinkDir::RowMinus,
            LinkDir::RowMinus => LinkDir::RowPlus,
            LinkDir::ColPlus => LinkDir::ColMinus,
            LinkDir::ColMinus => LinkDir::ColPlus,
        }
    }

    /// The communication axis this link belongs to.
    pub fn axis(self) -> CommAxis {
        match self {
            LinkDir::RowPlus | LinkDir::RowMinus => CommAxis::InterRow,
            LinkDir::ColPlus | LinkDir::ColMinus => CommAxis::InterCol,
        }
    }
}

/// Which axis a ring runs along: one of the two 2D communication axes, or
/// an arbitrary named axis of an N-D [`MeshView`](crate::MeshView).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RingAxis {
    /// A 2D torus communication direction.
    Comm(CommAxis),
    /// A named axis of an N-D view.
    Named(AxisName),
}

impl fmt::Display for RingAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingAxis::Comm(axis) => write!(f, "{axis}"),
            RingAxis::Named(name) => write!(f, "{name}"),
        }
    }
}

/// An ordered ring of chips used by one collective operation.
///
/// `members[p]` sends to `members[(p + 1) % len]` when the ring runs in the
/// forward direction. Rings are produced by
/// [`Torus2d::ring_through`](crate::Torus2d::ring_through) (2D, member order
/// follows physically adjacent torus links) and by
/// [`MeshView::ring_along`](crate::MeshView::ring_along) (N-D, member order
/// follows the view axis).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ring {
    axis: RingAxis,
    members: Vec<ChipId>,
}

impl Ring {
    /// Creates a 2D ring from its ordered members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn new(axis: CommAxis, members: Vec<ChipId>) -> Self {
        Self::with_axis(RingAxis::Comm(axis), members)
    }

    /// Creates a ring along a named view axis.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn along(axis: AxisName, members: Vec<ChipId>) -> Self {
        // The two canonical 2D names keep their CommAxis identity so rings
        // built through the view algebra compare equal to torus rings.
        match CommAxis::from_axis_name(axis) {
            Some(comm) => Self::with_axis(RingAxis::Comm(comm), members),
            None => Self::with_axis(RingAxis::Named(axis), members),
        }
    }

    fn with_axis(axis: RingAxis, members: Vec<ChipId>) -> Self {
        assert!(!members.is_empty(), "a ring needs at least one member");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "ring members must be distinct");
        Ring { axis, members }
    }

    /// The communication axis of a 2D ring.
    ///
    /// # Panics
    ///
    /// Panics on rings along a non-2D named axis; use
    /// [`ring_axis`](Self::ring_axis) for those.
    pub fn axis(&self) -> CommAxis {
        match self.axis {
            RingAxis::Comm(axis) => axis,
            RingAxis::Named(name) => panic!("ring along '{name}' has no 2D comm axis"),
        }
    }

    /// The axis this ring runs along.
    pub fn ring_axis(&self) -> RingAxis {
        self.axis
    }

    /// Number of chips on the ring.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the ring is trivial (a single chip).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the ring has a single member (collectives become no-ops).
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }

    /// The ordered members.
    pub fn members(&self) -> &[ChipId] {
        &self.members
    }

    /// The ring position of `chip`, if it is a member.
    pub fn position_of(&self, chip: ChipId) -> Option<usize> {
        self.members.iter().position(|&c| c == chip)
    }

    /// The chip `steps` positions after `chip` in the forward direction.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is not on the ring.
    pub fn step_from(&self, chip: ChipId, steps: usize) -> ChipId {
        let pos = self
            .position_of(chip)
            .expect("chip is not a member of this ring");
        self.members[(pos + steps) % self.members.len()]
    }

    /// The forward neighbor (the chip this one sends to).
    ///
    /// # Panics
    ///
    /// Panics if `chip` is not on the ring.
    pub fn next(&self, chip: ChipId) -> ChipId {
        self.step_from(chip, 1)
    }

    /// The backward neighbor (the chip this one receives from in a forward
    /// ring).
    ///
    /// # Panics
    ///
    /// Panics if `chip` is not on the ring.
    pub fn prev(&self, chip: ChipId) -> ChipId {
        self.step_from(chip, self.members.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3() -> Ring {
        Ring::new(CommAxis::InterRow, vec![ChipId(4), ChipId(7), ChipId(1)])
    }

    #[test]
    fn ring_navigation() {
        let r = ring3();
        assert_eq!(r.len(), 3);
        assert_eq!(r.next(ChipId(4)), ChipId(7));
        assert_eq!(r.next(ChipId(1)), ChipId(4));
        assert_eq!(r.prev(ChipId(4)), ChipId(1));
        assert_eq!(r.step_from(ChipId(7), 2), ChipId(4));
        assert_eq!(r.position_of(ChipId(7)), Some(1));
        assert_eq!(r.position_of(ChipId(0)), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_members_panic() {
        Ring::new(CommAxis::InterCol, vec![ChipId(0), ChipId(0)]);
    }

    #[test]
    fn axis_link_mapping() {
        assert_eq!(CommAxis::InterRow.forward_link(), LinkDir::RowPlus);
        assert_eq!(CommAxis::InterCol.backward_link(), LinkDir::ColMinus);
        assert_eq!(CommAxis::InterRow.opposite(), CommAxis::InterCol);
        for d in LinkDir::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_eq!(d.axis(), d.opposite().axis());
        }
    }

    #[test]
    fn link_indices_are_dense_and_distinct() {
        let mut idx: Vec<_> = LinkDir::ALL.iter().map(|d| d.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn singleton_ring_is_detected() {
        let r = Ring::new(CommAxis::InterRow, vec![ChipId(0)]);
        assert!(r.is_singleton());
        assert_eq!(r.next(ChipId(0)), ChipId(0));
    }
}
