//! Mesh shapes and their enumeration.

use std::fmt;

/// The shape of a 2D mesh: `Pr` rows × `Pc` columns.
///
/// The mesh shape is one of the three hyperparameters the MeshSlice LLM
/// autotuner optimizes (§3.2.2): it determines the ring lengths of the two
/// communication directions and therefore the traffic cost of a 2D GeMM.
///
/// # Example
///
/// ```
/// use meshslice_mesh::MeshShape;
///
/// let shapes = MeshShape::factorizations(8);
/// assert_eq!(shapes.len(), 4); // 1x8, 2x4, 4x2, 8x1
/// assert!(MeshShape::new(4, 2).num_chips() == 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeshShape {
    /// Number of mesh rows, `Pr`.
    pub rows: usize,
    /// Number of mesh columns, `Pc`.
    pub cols: usize,
}

impl MeshShape {
    /// Creates a shape from `(rows, cols)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        MeshShape { rows, cols }
    }

    /// Total number of chips, `Pr · Pc`.
    pub fn num_chips(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the mesh is square (`Pr == Pc`), as Cannon's algorithm
    /// requires.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The transposed shape, `Pc × Pr`.
    pub fn transposed(&self) -> MeshShape {
        MeshShape::new(self.cols, self.rows)
    }

    /// All `(rows, cols)` factorizations of `num_chips`, in increasing row
    /// order (e.g. `16 → 1x16, 2x8, 4x4, 8x2, 16x1`).
    pub fn factorizations(num_chips: usize) -> Vec<MeshShape> {
        (1..=num_chips)
            .filter(|r| num_chips.is_multiple_of(*r))
            .map(|r| MeshShape::new(r, num_chips / r))
            .collect()
    }

    /// The factorizations with both dimensions at least `min_dim`.
    ///
    /// Physical 2D tori need at least 2 chips per dimension for the wrap
    /// links to be distinct; pass `min_dim = 1` to include degenerate rings.
    pub fn factorizations_min(num_chips: usize, min_dim: usize) -> Vec<MeshShape> {
        MeshShape::factorizations(num_chips)
            .into_iter()
            .filter(|s| s.rows >= min_dim && s.cols >= min_dim)
            .collect()
    }

    /// The square shape for `num_chips` if one exists (Cannon's requirement).
    pub fn square(num_chips: usize) -> Option<MeshShape> {
        let r = (num_chips as f64).sqrt().round() as usize;
        (r * r == num_chips).then(|| MeshShape::new(r, r))
    }
}

impl fmt::Debug for MeshShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MeshShape({}x{})", self.rows, self.cols)
    }
}

impl fmt::Display for MeshShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_cover_all_divisors() {
        let shapes = MeshShape::factorizations(16);
        assert_eq!(
            shapes,
            vec![
                MeshShape::new(1, 16),
                MeshShape::new(2, 8),
                MeshShape::new(4, 4),
                MeshShape::new(8, 2),
                MeshShape::new(16, 1),
            ]
        );
        assert!(shapes.iter().all(|s| s.num_chips() == 16));
    }

    #[test]
    fn factorizations_min_filters_degenerate_shapes() {
        let shapes = MeshShape::factorizations_min(16, 2);
        assert_eq!(shapes.len(), 3);
        assert!(shapes.iter().all(|s| s.rows >= 2 && s.cols >= 2));
    }

    #[test]
    fn square_detection() {
        assert_eq!(MeshShape::square(256), Some(MeshShape::new(16, 16)));
        assert_eq!(MeshShape::square(32), None);
        assert!(MeshShape::new(4, 4).is_square());
        assert!(!MeshShape::new(4, 2).is_square());
    }

    #[test]
    fn transpose_swaps_dimensions() {
        assert_eq!(MeshShape::new(8, 2).transposed(), MeshShape::new(2, 8));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MeshShape::new(32, 8).to_string(), "32x8");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        MeshShape::new(0, 4);
    }
}
