//! N-D mesh shapes: ordered lists of named axes with row-major indexing.

use std::fmt;

use crate::{AxisName, Coord, MeshError};

/// Maximum number of mesh axes the algebra supports.
///
/// Four axes cover every topology the repo models (2D tori, 3D pods, and a
/// fourth dimension for composed DP×TP×PP×EP parallelism) while keeping
/// shapes and coordinates inline and `Copy`.
pub const MAX_AXES: usize = 4;

/// One named axis of a mesh shape.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Axis {
    name: AxisName,
    size: u32,
}

impl Axis {
    /// Creates an axis.
    ///
    /// # Errors
    ///
    /// [`MeshError::ZeroAxis`] when `size` is zero.
    pub fn new(name: AxisName, size: usize) -> Result<Axis, MeshError> {
        if size == 0 {
            return Err(MeshError::ZeroAxis {
                axis: name.as_str().into(),
            });
        }
        let size = u32::try_from(size).map_err(|_| MeshError::ZeroAxis {
            axis: name.as_str().into(),
        })?;
        Ok(Axis { name, size })
    }

    /// The axis name.
    pub fn name(&self) -> AxisName {
        self.name
    }

    /// The axis extent.
    pub fn size(&self) -> usize {
        self.size as usize
    }
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.size)
    }
}

const EMPTY_AXIS: Axis = Axis {
    name: AxisName::X,
    size: 0,
};

/// The shape of a device mesh: an ordered list of named axes with row-major
/// strided indexing.
///
/// The 2D specialization — axes `x` (mesh rows, `Pr`) and `y` (mesh columns,
/// `Pc`) — is what the MeshSlice LLM autotuner optimizes (§3.2.2): it
/// determines the ring lengths of the two communication directions and
/// therefore the traffic cost of a 2D GeMM. Higher ranks describe 3D torus
/// pods and composed parallelism meshes; [`MeshView`](crate::MeshView)
/// carves 2D sub-meshes back out of them.
///
/// # Example
///
/// ```
/// use meshslice_mesh::MeshShape;
///
/// let shapes = MeshShape::factorizations(8);
/// assert_eq!(shapes.len(), 4); // 1x8, 2x4, 4x2, 8x1
/// assert!(MeshShape::new(4, 2).num_chips() == 8);
///
/// let pod = MeshShape::nd(&[("x", 4), ("y", 4), ("z", 2)]).unwrap();
/// assert_eq!(pod.num_chips(), 32);
/// assert_eq!(pod.to_string(), "4x4x2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeshShape {
    // `axes` precedes `rank` so the derived `Ord` over equal-rank shapes is
    // (names, then sizes) in axis order — for default-named 2D shapes that
    // is exactly the historical `(rows, cols)` ordering. Unused slots hold
    // `EMPTY_AXIS` so derived `Eq`/`Hash` see a canonical padding.
    axes: [Axis; MAX_AXES],
    rank: u8,
}

impl MeshShape {
    /// Creates a 2D shape from `(rows, cols)`, axes named `x` and `y`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero. Use [`try_new`](Self::try_new)
    /// in fallible code.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::try_new(rows, cols).expect("mesh dimensions must be positive")
    }

    /// Fallible [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// [`MeshError::ZeroAxis`] when a dimension is zero.
    pub fn try_new(rows: usize, cols: usize) -> Result<Self, MeshError> {
        Self::from_axes(&[Axis::new(AxisName::X, rows)?, Axis::new(AxisName::Y, cols)?])
    }

    /// Creates a shape from named axes given as `(name, size)` string pairs.
    ///
    /// # Errors
    ///
    /// Any [`MeshError`] from name validation, zero sizes, duplicate names,
    /// or too many axes.
    pub fn nd(axes: &[(&str, usize)]) -> Result<Self, MeshError> {
        let mut built = Vec::with_capacity(axes.len());
        for (name, size) in axes {
            built.push(Axis::new(AxisName::new(name)?, *size)?);
        }
        Self::from_axes(&built)
    }

    /// Creates a shape from sizes alone, using the default axis names
    /// `x, y, z, w` in order.
    ///
    /// # Errors
    ///
    /// [`MeshError::NoAxes`], [`MeshError::TooManyAxes`], or
    /// [`MeshError::ZeroAxis`].
    pub fn from_sizes(sizes: &[usize]) -> Result<Self, MeshError> {
        if sizes.len() > MAX_AXES {
            return Err(MeshError::TooManyAxes { got: sizes.len() });
        }
        let axes: Vec<Axis> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| Axis::new(AxisName::DEFAULTS[i], s))
            .collect::<Result<_, _>>()?;
        Self::from_axes(&axes)
    }

    /// Creates a shape from validated axes.
    ///
    /// # Errors
    ///
    /// [`MeshError::NoAxes`], [`MeshError::TooManyAxes`], or
    /// [`MeshError::DuplicateAxis`].
    pub fn from_axes(axes: &[Axis]) -> Result<Self, MeshError> {
        if axes.is_empty() {
            return Err(MeshError::NoAxes);
        }
        if axes.len() > MAX_AXES {
            return Err(MeshError::TooManyAxes { got: axes.len() });
        }
        for (i, a) in axes.iter().enumerate() {
            if axes[..i].iter().any(|b| b.name == a.name) {
                return Err(MeshError::DuplicateAxis {
                    axis: a.name.as_str().into(),
                });
            }
        }
        let mut slots = [EMPTY_AXIS; MAX_AXES];
        slots[..axes.len()].copy_from_slice(axes);
        Ok(MeshShape {
            axes: slots,
            rank: axes.len() as u8,
        })
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// The axes, in order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes[..self.rank as usize]
    }

    /// The axis at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn axis(&self, i: usize) -> Axis {
        self.axes()[i]
    }

    /// The position of the axis named `name`, if present.
    pub fn axis_index(&self, name: AxisName) -> Option<usize> {
        self.axes().iter().position(|a| a.name == name)
    }

    /// The size of the axis named `name`.
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`] when no axis has that name.
    pub fn axis_size(&self, name: AxisName) -> Result<usize, MeshError> {
        self.axis_index(name)
            .map(|i| self.axes[i].size())
            .ok_or_else(|| MeshError::UnknownAxis {
                axis: name.as_str().into(),
            })
    }

    /// Number of mesh rows `Pr` of a 2D shape (the first axis).
    ///
    /// # Panics
    ///
    /// Panics on shapes that are not rank 2; N-D callers read
    /// [`axes`](Self::axes) instead.
    pub fn rows(&self) -> usize {
        assert_eq!(
            self.rank, 2,
            "rows() needs a 2D mesh, got rank {}",
            self.rank
        );
        self.axes[0].size()
    }

    /// Number of mesh columns `Pc` of a 2D shape (the second axis).
    ///
    /// # Panics
    ///
    /// Panics on shapes that are not rank 2; N-D callers read
    /// [`axes`](Self::axes) instead.
    pub fn cols(&self) -> usize {
        assert_eq!(
            self.rank, 2,
            "cols() needs a 2D mesh, got rank {}",
            self.rank
        );
        self.axes[1].size()
    }

    /// Total number of chips (the product of all axis sizes).
    pub fn num_chips(&self) -> usize {
        self.axes().iter().map(|a| a.size()).product()
    }

    /// Row-major strides, one per axis (the last axis has stride 1).
    pub fn strides(&self) -> [usize; MAX_AXES] {
        let mut strides = [0usize; MAX_AXES];
        let mut acc = 1usize;
        for i in (0..self.rank()).rev() {
            strides[i] = acc;
            acc *= self.axes[i].size();
        }
        strides
    }

    /// The row-major chip index of a coordinate.
    ///
    /// # Errors
    ///
    /// [`MeshError::RankMismatch`] or [`MeshError::CoordOutOfRange`].
    pub fn index_of(&self, coord: Coord) -> Result<usize, MeshError> {
        if coord.rank() != self.rank() {
            return Err(MeshError::RankMismatch {
                expected: self.rank(),
                got: coord.rank(),
            });
        }
        let strides = self.strides();
        let mut index = 0usize;
        for (i, axis) in self.axes().iter().enumerate() {
            let c = coord.get(i);
            if c >= axis.size() {
                return Err(MeshError::CoordOutOfRange {
                    coord: coord.to_string(),
                    shape: self.to_string(),
                });
            }
            index += c * strides[i];
        }
        Ok(index)
    }

    /// The coordinate of a row-major chip index.
    ///
    /// # Errors
    ///
    /// [`MeshError::ChipOutOfRange`] when the index is outside the mesh.
    pub fn coord_at(&self, index: usize) -> Result<Coord, MeshError> {
        if index >= self.num_chips() {
            return Err(MeshError::ChipOutOfRange {
                chip: index,
                num_chips: self.num_chips(),
            });
        }
        let strides = self.strides();
        let mut components = [0usize; MAX_AXES];
        let mut rest = index;
        for i in 0..self.rank() {
            components[i] = rest / strides[i];
            rest %= strides[i];
        }
        Coord::nd(&components[..self.rank()])
    }

    /// Whether a 2D mesh is square (`Pr == Pc`), as Cannon's algorithm
    /// requires. N-D shapes are square when all axes have equal size.
    pub fn is_square(&self) -> bool {
        let s0 = self.axes[0].size();
        self.axes().iter().all(|a| a.size() == s0)
    }

    /// The shape with axis order reversed (`Pc × Pr` for 2D meshes).
    pub fn transposed(&self) -> MeshShape {
        let mut axes: Vec<Axis> = self.axes().to_vec();
        axes.reverse();
        MeshShape::from_axes(&axes).expect("reversal preserves validity")
    }

    /// All `(rows, cols)` factorizations of `num_chips`, in increasing row
    /// order (e.g. `16 → 1x16, 2x8, 4x4, 8x2, 16x1`).
    pub fn factorizations(num_chips: usize) -> Vec<MeshShape> {
        (1..=num_chips)
            .filter(|r| num_chips.is_multiple_of(*r))
            .map(|r| MeshShape::new(r, num_chips / r))
            .collect()
    }

    /// The factorizations with both dimensions at least `min_dim`.
    ///
    /// Physical 2D tori need at least 2 chips per dimension for the wrap
    /// links to be distinct; pass `min_dim = 1` to include degenerate rings.
    pub fn factorizations_min(num_chips: usize, min_dim: usize) -> Vec<MeshShape> {
        MeshShape::factorizations(num_chips)
            .into_iter()
            .filter(|s| s.rows() >= min_dim && s.cols() >= min_dim)
            .collect()
    }

    /// All ordered factorizations of `num_chips` into exactly `rank` axes
    /// (default names `x, y, z, w`), in lexicographic order of the size
    /// vector. Complete and duplicate-free; for `rank = 2` this is exactly
    /// [`factorizations`](Self::factorizations).
    ///
    /// # Errors
    ///
    /// [`MeshError::NoAxes`] for `rank = 0`, [`MeshError::TooManyAxes`]
    /// past [`MAX_AXES`], or [`MeshError::ZeroAxis`] for zero chips.
    pub fn factorizations_nd(num_chips: usize, rank: usize) -> Result<Vec<MeshShape>, MeshError> {
        if rank == 0 {
            return Err(MeshError::NoAxes);
        }
        if rank > MAX_AXES {
            return Err(MeshError::TooManyAxes { got: rank });
        }
        if num_chips == 0 {
            return Err(MeshError::ZeroAxis { axis: "x".into() });
        }
        let mut out = Vec::new();
        let mut sizes = [1usize; MAX_AXES];
        fn rec(
            remaining: usize,
            axis: usize,
            rank: usize,
            sizes: &mut [usize; MAX_AXES],
            out: &mut Vec<MeshShape>,
        ) {
            if axis + 1 == rank {
                sizes[axis] = remaining;
                out.push(MeshShape::from_sizes(&sizes[..rank]).expect("factor sizes are positive"));
                return;
            }
            for d in 1..=remaining {
                if remaining.is_multiple_of(d) {
                    sizes[axis] = d;
                    rec(remaining / d, axis + 1, rank, sizes, out);
                }
            }
        }
        rec(num_chips, 0, rank, &mut sizes, &mut out);
        Ok(out)
    }

    /// The square shape for `num_chips` if one exists (Cannon's
    /// requirement), detected with exact integer square root — immune to
    /// the float rounding that `f64::sqrt` suffers on huge chip counts.
    pub fn square(num_chips: usize) -> Option<MeshShape> {
        if num_chips == 0 {
            return None;
        }
        let r = num_chips.isqrt();
        (r * r == num_chips).then(|| MeshShape::new(r, r))
    }
}

impl fmt::Debug for MeshShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MeshShape({self})")
    }
}

impl fmt::Display for MeshShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.axes().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{}", a.size())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_cover_all_divisors() {
        let shapes = MeshShape::factorizations(16);
        assert_eq!(
            shapes,
            vec![
                MeshShape::new(1, 16),
                MeshShape::new(2, 8),
                MeshShape::new(4, 4),
                MeshShape::new(8, 2),
                MeshShape::new(16, 1),
            ]
        );
        assert!(shapes.iter().all(|s| s.num_chips() == 16));
    }

    #[test]
    fn factorizations_min_filters_degenerate_shapes() {
        let shapes = MeshShape::factorizations_min(16, 2);
        assert_eq!(shapes.len(), 3);
        assert!(shapes.iter().all(|s| s.rows() >= 2 && s.cols() >= 2));
    }

    #[test]
    fn square_detection() {
        assert_eq!(MeshShape::square(256), Some(MeshShape::new(16, 16)));
        assert_eq!(MeshShape::square(32), None);
        assert!(MeshShape::new(4, 4).is_square());
        assert!(!MeshShape::new(4, 2).is_square());
    }

    #[test]
    fn square_boundaries_are_exact_at_huge_counts() {
        // Perfect squares just around 2^52, where f64 loses integer
        // precision: (2^26 + 1)^2 and its neighbors.
        let r = (1usize << 26) + 1;
        let n = r * r;
        assert_eq!(MeshShape::square(n), Some(MeshShape::new(r, r)));
        assert_eq!(MeshShape::square(n - 1), None);
        assert_eq!(MeshShape::square(n + 1), None);
        // The float path rounds (2^31 + 1)^2 - 1 to 2^31 + 1 and would
        // misclassify it as square on targets with 64-bit usize.
        let big = (1usize << 31) + 1;
        assert_eq!(MeshShape::square(big * big), Some(MeshShape::new(big, big)));
        assert_eq!(MeshShape::square(big * big - 1), None);
        assert_eq!(MeshShape::square(usize::MAX), None);
        assert_eq!(MeshShape::square(0), None);
        assert_eq!(MeshShape::square(1), Some(MeshShape::new(1, 1)));
    }

    #[test]
    fn transpose_swaps_dimensions() {
        assert_eq!(MeshShape::new(8, 2).transposed().rows(), 2);
        assert_eq!(MeshShape::new(8, 2).transposed().cols(), 8);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MeshShape::new(32, 8).to_string(), "32x8");
        assert_eq!(
            MeshShape::nd(&[("x", 4), ("y", 4), ("z", 2)])
                .unwrap()
                .to_string(),
            "4x4x2"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        MeshShape::new(0, 4);
    }

    #[test]
    fn typed_errors_replace_panics() {
        assert!(matches!(
            MeshShape::try_new(0, 4),
            Err(MeshError::ZeroAxis { .. })
        ));
        assert_eq!(MeshShape::nd(&[]), Err(MeshError::NoAxes));
        assert!(matches!(
            MeshShape::nd(&[("x", 2), ("x", 2)]),
            Err(MeshError::DuplicateAxis { .. })
        ));
        assert!(matches!(
            MeshShape::from_sizes(&[2, 2, 2, 2, 2]),
            Err(MeshError::TooManyAxes { got: 5 })
        ));
        assert!(matches!(
            MeshShape::nd(&[("not a name!", 2)]),
            Err(MeshError::BadAxisName { .. })
        ));
    }

    #[test]
    fn strided_indexing_round_trips() {
        let pod = MeshShape::nd(&[("x", 3), ("y", 4), ("z", 2)]).unwrap();
        assert_eq!(pod.strides()[..3], [8, 2, 1]);
        for i in 0..pod.num_chips() {
            let c = pod.coord_at(i).unwrap();
            assert_eq!(pod.index_of(c).unwrap(), i);
        }
        assert!(matches!(
            pod.index_of(Coord::new(0, 0)),
            Err(MeshError::RankMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            pod.index_of(Coord::nd(&[3, 0, 0]).unwrap()),
            Err(MeshError::CoordOutOfRange { .. })
        ));
        assert!(matches!(
            pod.coord_at(24),
            Err(MeshError::ChipOutOfRange {
                chip: 24,
                num_chips: 24
            })
        ));
    }

    #[test]
    fn nd_factorizations_degenerate_to_2d() {
        let nd = MeshShape::factorizations_nd(16, 2).unwrap();
        assert_eq!(nd, MeshShape::factorizations(16));
        let one = MeshShape::factorizations_nd(6, 1).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].num_chips(), 6);
    }

    #[test]
    fn nd_factorizations_complete_for_3_axes() {
        let shapes = MeshShape::factorizations_nd(8, 3).unwrap();
        // Ordered triples (a,b,c) with a*b*c = 8: 1,1,8 / 1,2,4 / 1,4,2 /
        // 1,8,1 / 2,1,4 / 2,2,2 / 2,4,1 / 4,1,2 / 4,2,1 / 8,1,1 = 10.
        assert_eq!(shapes.len(), 10);
        let mut seen = shapes.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), shapes.len(), "no duplicates");
        assert!(shapes.iter().all(|s| s.num_chips() == 8 && s.rank() == 3));
    }

    #[test]
    fn axis_lookup_by_name() {
        let pod = MeshShape::nd(&[("x", 4), ("y", 4), ("z", 2)]).unwrap();
        assert_eq!(pod.axis_index(AxisName::Z), Some(2));
        assert_eq!(pod.axis_size(AxisName::Y).unwrap(), 4);
        assert!(matches!(
            pod.axis_size(AxisName::W),
            Err(MeshError::UnknownAxis { .. })
        ));
    }
}
