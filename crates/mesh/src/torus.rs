//! The 2D torus cluster topology — a thin rank-2 specialization of the
//! N-D shape/view algebra.

use std::fmt;

use crate::{AxisName, ChipId, CommAxis, Coord, LinkDir, MeshError, MeshShape, MeshView, Ring};

/// A cluster of chips connected as a `rows × cols` 2D torus.
///
/// Chips are numbered row-major: chip `(i, j)` has id `i · cols + j`. Every
/// chip has four ICI links ([`LinkDir`]); each mesh row and each mesh column
/// forms a physical ring, which is what makes the efficient ring AllGather /
/// ReduceScatter collectives of the paper possible.
///
/// `Torus2d` is the rank-2 specialization of the N-D algebra: it wraps a
/// rank-2 [`MeshShape`] (axes `x`, `y`), its indexing is the shape's
/// row-major strided indexing, and its rings are
/// [`MeshView::ring_along`] over the corresponding axis.
/// [`view`](Torus2d::view) exposes the full algebra — select, flatten,
/// planes — on the same chips.
///
/// A 1D ring of `n` chips (used by the paper's 1D TP and FSDP baselines) is
/// the degenerate torus `Torus2d::new(n, 1)`.
///
/// # Example
///
/// ```
/// use meshslice_mesh::{Coord, LinkDir, Torus2d};
///
/// let mesh = Torus2d::new(2, 3);
/// let c = Coord::new(1, 2);
/// assert_eq!(mesh.neighbor(c, LinkDir::ColPlus), Coord::new(1, 0)); // wraps
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Torus2d {
    shape: MeshShape,
}

impl Torus2d {
    /// Creates a torus with the given number of mesh rows and columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero. Use [`try_new`](Self::try_new)
    /// in fallible code.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::try_new(rows, cols).expect("mesh dimensions must be positive")
    }

    /// Fallible [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// [`MeshError::ZeroAxis`] when a dimension is zero.
    pub fn try_new(rows: usize, cols: usize) -> Result<Self, MeshError> {
        Ok(Torus2d {
            shape: MeshShape::try_new(rows, cols)?,
        })
    }

    /// Creates a torus from a rank-2 [`MeshShape`].
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 2. Use
    /// [`try_from_shape`](Self::try_from_shape) in fallible code.
    pub fn from_shape(shape: MeshShape) -> Self {
        Self::try_from_shape(shape).expect("Torus2d needs a rank-2 shape")
    }

    /// Fallible [`from_shape`](Self::from_shape).
    ///
    /// # Errors
    ///
    /// [`MeshError::NotRank2`] for shapes of any other rank.
    pub fn try_from_shape(shape: MeshShape) -> Result<Self, MeshError> {
        if shape.rank() != 2 {
            return Err(MeshError::NotRank2 { got: shape.rank() });
        }
        Ok(Torus2d { shape })
    }

    /// The mesh shape.
    pub fn shape(&self) -> MeshShape {
        self.shape
    }

    /// The identity [`MeshView`] of this torus — the door into the N-D
    /// algebra (select, slice, flatten, planes, …).
    pub fn view(&self) -> MeshView {
        MeshView::full(self.shape)
    }

    /// Number of mesh rows `Pr`.
    pub fn rows(&self) -> usize {
        self.shape.rows()
    }

    /// Number of mesh columns `Pc`.
    pub fn cols(&self) -> usize {
        self.shape.cols()
    }

    /// Total number of chips.
    pub fn num_chips(&self) -> usize {
        self.shape.num_chips()
    }

    /// The chip id at a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh. Use
    /// [`try_chip_at`](Self::try_chip_at) in fallible code.
    pub fn chip_at(&self, coord: Coord) -> ChipId {
        match self.try_chip_at(coord) {
            Ok(chip) => chip,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`chip_at`](Self::chip_at).
    ///
    /// # Errors
    ///
    /// [`MeshError::CoordOutOfRange`] or [`MeshError::RankMismatch`].
    pub fn try_chip_at(&self, coord: Coord) -> Result<ChipId, MeshError> {
        self.shape.index_of(coord).map(ChipId)
    }

    /// The coordinate of a chip id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range. Use
    /// [`try_coord_of`](Self::try_coord_of) in fallible code.
    pub fn coord_of(&self, chip: ChipId) -> Coord {
        match self.try_coord_of(chip) {
            Ok(coord) => coord,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`coord_of`](Self::coord_of).
    ///
    /// # Errors
    ///
    /// [`MeshError::ChipOutOfRange`].
    pub fn try_coord_of(&self, chip: ChipId) -> Result<Coord, MeshError> {
        self.shape.coord_at(chip.index())
    }

    /// All chips, in row-major order.
    pub fn chips(&self) -> impl Iterator<Item = ChipId> {
        (0..self.num_chips()).map(ChipId)
    }

    /// The neighbor of `coord` across the given link (with torus wrap).
    pub fn neighbor(&self, coord: Coord, dir: LinkDir) -> Coord {
        let (r, c) = (coord.row(), coord.col());
        match dir {
            LinkDir::RowPlus => Coord::new((r + 1) % self.rows(), c),
            LinkDir::RowMinus => Coord::new((r + self.rows() - 1) % self.rows(), c),
            LinkDir::ColPlus => Coord::new(r, (c + 1) % self.cols()),
            LinkDir::ColMinus => Coord::new(r, (c + self.cols() - 1) % self.cols()),
        }
    }

    /// The neighbor chip id across the given link.
    pub fn neighbor_chip(&self, chip: ChipId, dir: LinkDir) -> ChipId {
        self.chip_at(self.neighbor(self.coord_of(chip), dir))
    }

    /// The ring a collective on `axis` would use from the point of view of
    /// `coord`:
    ///
    /// - [`CommAxis::InterRow`]: the chips of `coord`'s mesh **column**, in
    ///   increasing row order (a vertical ring of length `Pr`).
    /// - [`CommAxis::InterCol`]: the chips of `coord`'s mesh **row**, in
    ///   increasing column order (a horizontal ring of length `Pc`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    pub fn ring_through(&self, coord: Coord, axis: CommAxis) -> Ring {
        // Fix the *other* axis at this coordinate's position and walk the
        // ring axis — `select` + `ring_along` on the identity view.
        let (ring_axis, fixed_axis, fixed_at) = match axis {
            CommAxis::InterRow => (AxisName::X, AxisName::Y, coord.col()),
            CommAxis::InterCol => (AxisName::Y, AxisName::X, coord.row()),
        };
        // Validate the full coordinate (not just the fixed component) to
        // keep the historical out-of-mesh panic.
        self.chip_at(coord);
        let line = self
            .view()
            .select(fixed_axis, fixed_at)
            .expect("coordinate validated above");
        let mut rings = line.ring_along(ring_axis).expect("ring axis remains");
        debug_assert_eq!(rings.len(), 1);
        rings.remove(0)
    }

    /// All distinct rings on `axis`: one per mesh column for
    /// [`CommAxis::InterRow`], one per mesh row for [`CommAxis::InterCol`].
    pub fn rings(&self, axis: CommAxis) -> Vec<Ring> {
        self.view()
            .ring_along(axis.axis_name())
            .expect("2D axes always exist")
    }

    /// The ring length of a collective on `axis` (`Pr` for inter-row, `Pc`
    /// for inter-col).
    pub fn ring_len(&self, axis: CommAxis) -> usize {
        match axis {
            CommAxis::InterRow => self.rows(),
            CommAxis::InterCol => self.cols(),
        }
    }
}

impl fmt::Debug for Torus2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Torus2d({})", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_coord_round_trip() {
        let mesh = Torus2d::new(3, 4);
        for chip in mesh.chips() {
            assert_eq!(mesh.chip_at(mesh.coord_of(chip)), chip);
        }
        assert_eq!(mesh.chip_at(Coord::new(2, 3)), ChipId(11));
    }

    #[test]
    fn neighbors_wrap_around() {
        let mesh = Torus2d::new(2, 3);
        assert_eq!(
            mesh.neighbor(Coord::new(1, 0), LinkDir::RowPlus),
            Coord::new(0, 0)
        );
        assert_eq!(
            mesh.neighbor(Coord::new(0, 0), LinkDir::RowMinus),
            Coord::new(1, 0)
        );
        assert_eq!(
            mesh.neighbor(Coord::new(0, 2), LinkDir::ColPlus),
            Coord::new(0, 0)
        );
        assert_eq!(
            mesh.neighbor(Coord::new(0, 0), LinkDir::ColMinus),
            Coord::new(0, 2)
        );
    }

    #[test]
    fn opposite_links_invert() {
        let mesh = Torus2d::new(4, 4);
        for chip in mesh.chips() {
            let c = mesh.coord_of(chip);
            for d in LinkDir::ALL {
                assert_eq!(mesh.neighbor(mesh.neighbor(c, d), d.opposite()), c);
            }
        }
    }

    #[test]
    fn vertical_ring_is_the_column() {
        let mesh = Torus2d::new(4, 2);
        let ring = mesh.ring_through(Coord::new(2, 1), CommAxis::InterRow);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.axis(), CommAxis::InterRow);
        let coords: Vec<_> = ring.members().iter().map(|&c| mesh.coord_of(c)).collect();
        assert!(coords.iter().all(|c| c.col() == 1));
        assert_eq!(coords[0].row(), 0);
        assert_eq!(coords[3].row(), 3);
    }

    #[test]
    fn horizontal_ring_is_the_row() {
        let mesh = Torus2d::new(4, 3);
        let ring = mesh.ring_through(Coord::new(2, 1), CommAxis::InterCol);
        assert_eq!(ring.len(), 3);
        assert!(ring.members().iter().all(|&c| mesh.coord_of(c).row() == 2));
    }

    #[test]
    fn ring_neighbors_are_torus_neighbors() {
        // Member order of a ring must follow physical links: the forward
        // neighbor on an inter-row ring is the RowPlus neighbor.
        let mesh = Torus2d::new(4, 4);
        for axis in [CommAxis::InterRow, CommAxis::InterCol] {
            let ring = mesh.ring_through(Coord::new(0, 0), axis);
            for &chip in ring.members() {
                assert_eq!(
                    ring.next(chip),
                    mesh.neighbor_chip(chip, axis.forward_link())
                );
            }
        }
    }

    #[test]
    fn rings_partition_the_mesh() {
        let mesh = Torus2d::new(3, 5);
        for axis in [CommAxis::InterRow, CommAxis::InterCol] {
            let rings = mesh.rings(axis);
            let mut all: Vec<_> = rings
                .iter()
                .flat_map(|r| r.members().iter().copied())
                .collect();
            all.sort_unstable();
            assert_eq!(all, mesh.chips().collect::<Vec<_>>());
        }
    }

    #[test]
    fn one_d_ring_as_degenerate_torus() {
        let ring = Torus2d::new(8, 1);
        assert_eq!(ring.ring_len(CommAxis::InterRow), 8);
        assert_eq!(ring.ring_len(CommAxis::InterCol), 1);
        let r = ring.ring_through(Coord::new(0, 0), CommAxis::InterRow);
        assert_eq!(r.len(), 8);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_mesh_coordinate_panics() {
        Torus2d::new(2, 2).chip_at(Coord::new(2, 0));
    }

    #[test]
    fn typed_errors_replace_panics() {
        assert!(matches!(
            Torus2d::try_new(0, 2),
            Err(MeshError::ZeroAxis { .. })
        ));
        let mesh = Torus2d::new(2, 2);
        assert!(matches!(
            mesh.try_chip_at(Coord::new(2, 0)),
            Err(MeshError::CoordOutOfRange { .. })
        ));
        assert!(matches!(
            mesh.try_coord_of(ChipId(4)),
            Err(MeshError::ChipOutOfRange { .. })
        ));
        let pod = MeshShape::nd(&[("x", 2), ("y", 2), ("z", 2)]).unwrap();
        assert!(matches!(
            Torus2d::try_from_shape(pod),
            Err(MeshError::NotRank2 { got: 3 })
        ));
    }

    #[test]
    fn torus_rings_match_view_algebra() {
        let mesh = Torus2d::new(3, 4);
        for axis in [CommAxis::InterRow, CommAxis::InterCol] {
            let via_view = mesh.view().ring_along(axis.axis_name()).unwrap();
            assert_eq!(mesh.rings(axis), via_view);
        }
    }
}
