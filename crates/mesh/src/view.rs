//! Views over N-D meshes: sub-meshes, permutations, folds, and factorings.
//!
//! A [`MeshView`] is a logical N-D index space laid over a physical
//! [`MeshShape`]. Every view operation — [`select`](MeshView::select),
//! [`slice`](MeshView::slice), [`permute`](MeshView::permute),
//! [`transpose`](MeshView::transpose), [`flatten`](MeshView::flatten), and
//! [`split`](MeshView::split) — produces another view that still resolves
//! to physical [`ChipId`]s, and [`ring_hops`](MeshView::ring_hops) resolves
//! each ring hop of a view axis to the physical link(s) it crosses.
//!
//! Internally each view axis tabulates the physical-index contribution of
//! every coordinate along it (`physical = offset + Σ contrib[axis][i]`).
//! Tabulation makes every operation closed under composition: flattening a
//! pod's `z` axis into its `x` rings, then splitting the fold back apart,
//! is exact index arithmetic rather than a stride special-case.
//!
//! # Example: carving a 2D plane out of a 3D pod
//!
//! ```
//! use meshslice_mesh::{AxisName, MeshShape, MeshView};
//!
//! let pod = MeshShape::nd(&[("x", 4), ("y", 4), ("z", 2)]).unwrap();
//! let plane = MeshView::full(pod).select(AxisName::Z, 1).unwrap();
//! assert_eq!(plane.rank(), 2);
//! assert_eq!(plane.num_chips(), 16);
//! // Chips resolve to the physical z = 1 half of the pod.
//! assert!(plane.chips().iter().all(|c| c.index() % 2 == 1));
//! ```

use std::fmt;

use crate::{AxisName, ChipId, Coord, MeshError, MeshShape, Ring, MAX_AXES};

/// One logical axis of a view: a name plus the physical-index contribution
/// of each coordinate along it.
#[derive(Clone, PartialEq, Eq)]
struct ViewAxis {
    name: AxisName,
    /// `contrib[i]` is added to the physical index when this axis is at
    /// coordinate `i`. Invariant: `contrib[0] == 0` (rebased into `offset`).
    contrib: Vec<i64>,
}

impl ViewAxis {
    fn len(&self) -> usize {
        self.contrib.len()
    }
}

/// A logical N-D window onto a physical mesh.
///
/// See the crate-level docs for the operation set and an example.
#[derive(Clone, PartialEq, Eq)]
pub struct MeshView {
    base: MeshShape,
    offset: i64,
    axes: Vec<ViewAxis>,
}

/// How one ring hop of a view axis maps onto the physical fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HopLink {
    /// A single physical link: the hop moves ±1 (with wrap) along one base
    /// axis, like every hop of a native torus ring.
    Direct {
        /// The physical axis the link belongs to.
        axis: AxisName,
        /// `true` for the `+` direction of that axis.
        forward: bool,
        /// Whether the hop uses the wrap-around link.
        wraps: bool,
    },
    /// A multi-link route (e.g. the turn hop where a flattened ring jumps
    /// to the next physical row): the minimum number of physical links the
    /// payload must cross.
    Route {
        /// Torus Manhattan distance in links.
        hops: usize,
    },
}

impl HopLink {
    /// The number of physical links this hop crosses.
    pub fn link_count(&self) -> usize {
        match self {
            HopLink::Direct { .. } => 1,
            HopLink::Route { hops } => *hops,
        }
    }
}

/// One hop of a ring over a view axis, resolved to physical chips and links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingHop {
    /// The sending chip.
    pub from: ChipId,
    /// The receiving chip.
    pub to: ChipId,
    /// The physical link assignment.
    pub link: HopLink,
}

/// A 2D plane carved out of an N-D mesh: two spanning axes plus fixed
/// coordinates for every remaining axis.
///
/// Produced by [`MeshView::planes`]; the embedded rank-2
/// [`view`](MeshPlane::view) resolves the plane's chips, and
/// [`as_torus2d`](MeshView::as_torus2d) relabels them as a dense logical
/// torus for the 2D engine and algorithms.
#[derive(Clone, PartialEq, Eq)]
pub struct MeshPlane {
    /// The axis that becomes the plane's mesh rows.
    pub row_axis: AxisName,
    /// The axis that becomes the plane's mesh columns.
    pub col_axis: AxisName,
    /// `(axis, index)` for every non-spanning axis, in base axis order.
    pub fixed: Vec<(AxisName, usize)>,
    /// The rank-2 view of the plane's chips.
    pub view: MeshView,
}

impl fmt::Debug for MeshPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plane({}×{}", self.row_axis, self.col_axis)?;
        for (name, i) in &self.fixed {
            write!(f, ", {name}={i}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for MeshPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\u{d7}{}", self.row_axis, self.col_axis)?;
        for (name, i) in &self.fixed {
            write!(f, "@{name}={i}")?;
        }
        Ok(())
    }
}

impl MeshView {
    /// The identity view of a whole physical mesh.
    pub fn full(shape: MeshShape) -> MeshView {
        let strides = shape.strides();
        let axes = shape
            .axes()
            .iter()
            .enumerate()
            .map(|(i, a)| ViewAxis {
                name: a.name(),
                contrib: (0..a.size()).map(|c| (c * strides[i]) as i64).collect(),
            })
            .collect();
        MeshView {
            base: shape,
            offset: 0,
            axes,
        }
    }

    /// The physical mesh this view indexes into.
    pub fn base(&self) -> MeshShape {
        self.base
    }

    /// Number of view axes.
    pub fn rank(&self) -> usize {
        self.axes.len()
    }

    /// The view's logical shape (named axes and their extents).
    pub fn shape(&self) -> MeshShape {
        let axes: Vec<crate::Axis> = self
            .axes
            .iter()
            .map(|a| crate::Axis::new(a.name, a.len()).expect("view axes are non-empty"))
            .collect();
        MeshShape::from_axes(&axes).expect("view invariants imply a valid shape")
    }

    /// The names of the view axes, in order.
    pub fn axis_names(&self) -> Vec<AxisName> {
        self.axes.iter().map(|a| a.name).collect()
    }

    /// The extent of the view axis named `name`.
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`].
    pub fn axis_len(&self, name: AxisName) -> Result<usize, MeshError> {
        Ok(self.axes[self.axis_pos(name)?].len())
    }

    /// Number of chips the view covers.
    pub fn num_chips(&self) -> usize {
        self.axes.iter().map(|a| a.len()).product()
    }

    fn axis_pos(&self, name: AxisName) -> Result<usize, MeshError> {
        self.axes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| MeshError::UnknownAxis {
                axis: name.as_str().into(),
            })
    }

    fn resolve(&self, components: &[usize]) -> i64 {
        let mut index = self.offset;
        for (axis, &c) in self.axes.iter().zip(components) {
            index += axis.contrib[c];
        }
        index
    }

    /// The physical chip at a view coordinate.
    ///
    /// # Errors
    ///
    /// [`MeshError::RankMismatch`] or [`MeshError::CoordOutOfRange`].
    pub fn chip_at(&self, coord: Coord) -> Result<ChipId, MeshError> {
        if coord.rank() != self.rank() {
            return Err(MeshError::RankMismatch {
                expected: self.rank(),
                got: coord.rank(),
            });
        }
        for (axis, &c) in self.axes.iter().zip(coord.components()) {
            if c as usize >= axis.len() {
                return Err(MeshError::CoordOutOfRange {
                    coord: coord.to_string(),
                    shape: self.shape().to_string(),
                });
            }
        }
        let components: Vec<usize> = coord.components().iter().map(|&c| c as usize).collect();
        let index = self.resolve(&components);
        debug_assert!(index >= 0 && (index as usize) < self.base.num_chips());
        Ok(ChipId(index as usize))
    }

    /// All physical chips of the view, in row-major view order.
    pub fn chips(&self) -> Vec<ChipId> {
        let mut out = Vec::with_capacity(self.num_chips());
        let mut components = vec![0usize; self.rank()];
        loop {
            out.push(ChipId(self.resolve(&components) as usize));
            // Row-major odometer increment.
            let mut axis = self.rank();
            loop {
                if axis == 0 {
                    return out;
                }
                axis -= 1;
                components[axis] += 1;
                if components[axis] < self.axes[axis].len() {
                    break;
                }
                components[axis] = 0;
            }
        }
    }

    /// The view coordinate of a physical chip, if the view covers it.
    pub fn coord_of(&self, chip: ChipId) -> Option<Coord> {
        let chips = self.chips();
        let flat = chips.iter().position(|&c| c == chip)?;
        // Un-flatten the row-major position.
        let mut components = vec![0usize; self.rank()];
        let mut rest = flat;
        for i in (0..self.rank()).rev() {
            components[i] = rest % self.axes[i].len();
            rest /= self.axes[i].len();
        }
        Some(Coord::nd(&components).expect("view rank is bounded"))
    }

    /// Fixes `axis` at `index`, dropping it from the view (a sub-mesh of
    /// one rank lower).
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`] or [`MeshError::CoordOutOfRange`].
    pub fn select(&self, axis: AxisName, index: usize) -> Result<MeshView, MeshError> {
        let pos = self.axis_pos(axis)?;
        if index >= self.axes[pos].len() {
            return Err(MeshError::CoordOutOfRange {
                coord: format!("{axis}={index}"),
                shape: self.shape().to_string(),
            });
        }
        let mut next = self.clone();
        next.offset += next.axes[pos].contrib[index];
        next.axes.remove(pos);
        Ok(next)
    }

    /// Restricts `axis` to `start..end` (rebased to start at zero).
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`] or [`MeshError::BadRange`].
    pub fn slice(&self, axis: AxisName, start: usize, end: usize) -> Result<MeshView, MeshError> {
        let pos = self.axis_pos(axis)?;
        let size = self.axes[pos].len();
        if start >= end || end > size {
            return Err(MeshError::BadRange {
                axis: axis.as_str().into(),
                start,
                end,
                size,
            });
        }
        let mut next = self.clone();
        let base_contrib = next.axes[pos].contrib[start];
        next.offset += base_contrib;
        next.axes[pos].contrib = next.axes[pos].contrib[start..end]
            .iter()
            .map(|c| c - base_contrib)
            .collect();
        Ok(next)
    }

    /// Reorders the view axes to the given name order (each current axis
    /// named exactly once).
    ///
    /// # Errors
    ///
    /// [`MeshError::BadPermutation`].
    pub fn permute(&self, order: &[AxisName]) -> Result<MeshView, MeshError> {
        if order.len() != self.rank() {
            return Err(MeshError::BadPermutation {
                reason: format!("{} names for {} axes", order.len(), self.rank()),
            });
        }
        let mut axes = Vec::with_capacity(order.len());
        for name in order {
            match self.axes.iter().find(|a| a.name == *name) {
                Some(a) => {
                    if axes.iter().any(|b: &ViewAxis| b.name == *name) {
                        return Err(MeshError::BadPermutation {
                            reason: format!("axis '{name}' named twice"),
                        });
                    }
                    axes.push(a.clone());
                }
                None => {
                    return Err(MeshError::BadPermutation {
                        reason: format!("axis '{name}' not in view"),
                    })
                }
            }
        }
        Ok(MeshView {
            base: self.base,
            offset: self.offset,
            axes,
        })
    }

    /// Reverses the axis order (the matrix transpose for rank-2 views).
    pub fn transpose(&self) -> MeshView {
        let mut next = self.clone();
        next.axes.reverse();
        next
    }

    /// Folds the named axes (row-major, in the given order) into one
    /// logical axis named `new_name`, placed where the first named axis
    /// was. The classic use: fold a 3D torus's `z` axis into its `x` rings
    /// so a 2D algorithm sees one long ring.
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`], [`MeshError::BadPermutation`] (an axis
    /// named twice or no axes named), or [`MeshError::DuplicateAxis`] when
    /// `new_name` collides with a remaining axis.
    pub fn flatten(&self, axes: &[AxisName], new_name: AxisName) -> Result<MeshView, MeshError> {
        if axes.is_empty() {
            return Err(MeshError::BadPermutation {
                reason: "flatten of zero axes".into(),
            });
        }
        let mut positions = Vec::with_capacity(axes.len());
        for name in axes {
            let pos = self.axis_pos(*name)?;
            if positions.contains(&pos) {
                return Err(MeshError::BadPermutation {
                    reason: format!("axis '{name}' named twice"),
                });
            }
            positions.push(pos);
        }
        if self
            .axes
            .iter()
            .enumerate()
            .any(|(i, a)| !positions.contains(&i) && a.name == new_name)
        {
            return Err(MeshError::DuplicateAxis {
                axis: new_name.as_str().into(),
            });
        }
        // Row-major tabulation over the folded axes, in the given order.
        let mut contrib = vec![0i64];
        for &pos in &positions {
            let axis = &self.axes[pos];
            let mut next = Vec::with_capacity(contrib.len() * axis.len());
            for &outer in &contrib {
                for &inner in &axis.contrib {
                    next.push(outer + inner);
                }
            }
            contrib = next;
        }
        let insert_at = positions[0];
        let mut next_axes = Vec::with_capacity(self.rank() - axes.len() + 1);
        for (i, a) in self.axes.iter().enumerate() {
            if i == insert_at {
                next_axes.push(ViewAxis {
                    name: new_name,
                    contrib: contrib.clone(),
                });
            }
            if !positions.contains(&i) {
                next_axes.push(a.clone());
            }
        }
        Ok(MeshView {
            base: self.base,
            offset: self.offset,
            axes: next_axes,
        })
    }

    /// Factors `axis` into the given `(name, size)` axes (row-major), the
    /// inverse of [`flatten`](Self::flatten) with the same sizes.
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`], [`MeshError::SplitSizeMismatch`] when
    /// the factor sizes do not multiply back to the axis size,
    /// [`MeshError::TooManyAxes`] past [`MAX_AXES`],
    /// [`MeshError::DuplicateAxis`] on a name collision, and
    /// [`MeshError::NotSeparable`] when the axis's physical layout cannot
    /// be factored that way (e.g. splitting against the grain of a fold).
    pub fn split(
        &self,
        axis: AxisName,
        factors: &[(AxisName, usize)],
    ) -> Result<MeshView, MeshError> {
        let pos = self.axis_pos(axis)?;
        let size = self.axes[pos].len();
        let product: usize = factors.iter().map(|(_, s)| s).product();
        if factors.is_empty() || product != size {
            return Err(MeshError::SplitSizeMismatch {
                axis: axis.as_str().into(),
                size,
                product,
            });
        }
        if self.rank() - 1 + factors.len() > MAX_AXES {
            return Err(MeshError::TooManyAxes {
                got: self.rank() - 1 + factors.len(),
            });
        }
        for (i, (name, _)) in factors.iter().enumerate() {
            let dup_in_factors = factors[..i].iter().any(|(n, _)| n == name);
            let dup_in_rest = self
                .axes
                .iter()
                .enumerate()
                .any(|(j, a)| j != pos && a.name == *name);
            if dup_in_factors || dup_in_rest {
                return Err(MeshError::DuplicateAxis {
                    axis: name.as_str().into(),
                });
            }
        }
        let contrib = &self.axes[pos].contrib;
        // Factor contributions row-major: axis t (trailing stride = product
        // of later factor sizes) takes contrib[i * stride_t].
        let mut strides = vec![1usize; factors.len()];
        for t in (0..factors.len().saturating_sub(1)).rev() {
            strides[t] = strides[t + 1] * factors[t + 1].1;
        }
        let split_axes: Vec<ViewAxis> = factors
            .iter()
            .zip(&strides)
            .map(|((name, s), stride)| ViewAxis {
                name: *name,
                contrib: (0..*s).map(|i| contrib[i * stride]).collect(),
            })
            .collect();
        // Separability: the tabulated sum must reproduce every entry.
        for (flat, &expect) in contrib.iter().enumerate() {
            let mut sum = 0i64;
            let mut rest = flat;
            for (t, (_, s)) in factors.iter().enumerate().rev() {
                sum += split_axes[t].contrib[rest % s];
                rest /= s;
            }
            if sum != expect {
                return Err(MeshError::NotSeparable {
                    axis: axis.as_str().into(),
                });
            }
        }
        let mut next_axes = Vec::with_capacity(self.rank() - 1 + factors.len());
        for (i, a) in self.axes.iter().enumerate() {
            if i == pos {
                next_axes.extend(split_axes.iter().cloned());
            } else {
                next_axes.push(a.clone());
            }
        }
        Ok(MeshView {
            base: self.base,
            offset: self.offset,
            axes: next_axes,
        })
    }

    /// All rings along the view axis named `name`: one ring per combination
    /// of the other axes (row-major), members in coordinate order.
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`].
    pub fn ring_along(&self, name: AxisName) -> Result<Vec<Ring>, MeshError> {
        let pos = self.axis_pos(name)?;
        // Enumerate the other axes row-major by selecting the ring axis
        // last: permute it to the back, then chunk the chip list.
        let mut order: Vec<AxisName> = self
            .axes
            .iter()
            .filter(|a| a.name != name)
            .map(|a| a.name)
            .collect();
        order.push(self.axes[pos].name);
        let ring_len = self.axes[pos].len();
        let chips = self.permute(&order)?.chips();
        Ok(chips
            .chunks(ring_len)
            .map(|members| Ring::along(name, members.to_vec()))
            .collect())
    }

    /// The per-hop physical link assignment of every ring along `name`:
    /// `result[ring][hop]` describes the link(s) carrying hop `hop` of ring
    /// `ring` (in [`ring_along`](Self::ring_along) order).
    ///
    /// # Errors
    ///
    /// [`MeshError::UnknownAxis`].
    pub fn ring_hops(&self, name: AxisName) -> Result<Vec<Vec<RingHop>>, MeshError> {
        let rings = self.ring_along(name)?;
        Ok(rings
            .iter()
            .map(|ring| {
                let members = ring.members();
                (0..members.len())
                    .map(|i| {
                        let from = members[i];
                        let to = members[(i + 1) % members.len()];
                        RingHop {
                            from,
                            to,
                            link: self.classify_hop(from, to),
                        }
                    })
                    .collect()
            })
            .collect())
    }

    fn classify_hop(&self, from: ChipId, to: ChipId) -> HopLink {
        let a = self
            .base
            .coord_at(from.index())
            .expect("view chips are in range");
        let b = self
            .base
            .coord_at(to.index())
            .expect("view chips are in range");
        let mut moved: Vec<(AxisName, usize, usize, usize)> = Vec::new(); // (axis, from, to, size)
        for (i, axis) in self.base.axes().iter().enumerate() {
            if a.get(i) != b.get(i) {
                moved.push((axis.name(), a.get(i), b.get(i), axis.size()));
            }
        }
        if let [(axis, f, t, size)] = moved[..] {
            let fwd = (f + 1) % size == t;
            let bwd = (t + 1) % size == f;
            if fwd || bwd {
                return HopLink::Direct {
                    axis,
                    forward: fwd,
                    // A self-hop on a size-1 or size-2 axis never wraps
                    // "around" distinct links; flag only true wraps.
                    wraps: if fwd { f + 1 == size } else { t + 1 == size },
                };
            }
        }
        let hops = moved
            .iter()
            .map(|&(_, f, t, size)| {
                let d = f.abs_diff(t);
                d.min(size - d)
            })
            .sum();
        HopLink::Route { hops }
    }

    /// All 2D planes of the view: every ordered pair of spanning axes ×
    /// every combination of fixed coordinates on the remaining axes. A
    /// rank-2 view yields its two orientations; a 4×4×4 pod yields
    /// `3·2·4 = 24` planes.
    pub fn planes(&self) -> Vec<MeshPlane> {
        let names = self.axis_names();
        let mut out = Vec::new();
        for &row_axis in &names {
            for &col_axis in &names {
                if row_axis == col_axis {
                    continue;
                }
                let others: Vec<AxisName> = names
                    .iter()
                    .copied()
                    .filter(|n| *n != row_axis && *n != col_axis)
                    .collect();
                let sizes: Vec<usize> = others
                    .iter()
                    .map(|n| self.axis_len(*n).expect("axis exists"))
                    .collect();
                // Row-major cartesian product of the fixed coordinates
                // (one empty combination when no axes remain).
                let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
                for &size in &sizes {
                    combos = combos
                        .into_iter()
                        .flat_map(|prefix| {
                            (0..size).map(move |i| {
                                let mut c = prefix.clone();
                                c.push(i);
                                c
                            })
                        })
                        .collect();
                }
                for fixed in combos {
                    let mut view = self.clone();
                    for (n, &i) in others.iter().zip(&fixed) {
                        view = view.select(*n, i).expect("fixed coordinate in range");
                    }
                    let view = view
                        .permute(&[row_axis, col_axis])
                        .expect("two spanning axes remain");
                    out.push(MeshPlane {
                        row_axis,
                        col_axis,
                        fixed: others.iter().copied().zip(fixed.iter().copied()).collect(),
                        view,
                    });
                }
            }
        }
        out
    }

    /// Relabels a rank-2 view as a dense logical torus plus the mapping
    /// from logical chip id to physical chip — how 2D algorithms and the
    /// 2D engine run on a plane of a bigger mesh.
    ///
    /// # Errors
    ///
    /// [`MeshError::NotRank2`].
    pub fn as_torus2d(&self) -> Result<(crate::Torus2d, Vec<ChipId>), MeshError> {
        if self.rank() != 2 {
            return Err(MeshError::NotRank2 { got: self.rank() });
        }
        let torus = crate::Torus2d::try_new(self.axes[0].len(), self.axes[1].len())
            .expect("view axes are non-empty");
        Ok((torus, self.chips()))
    }
}

impl fmt::Debug for MeshView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MeshView(")?;
        for (i, a) in self.axes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}={}", a.name, a.len())?;
        }
        write!(f, " over {})", self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod() -> MeshShape {
        MeshShape::nd(&[("x", 4), ("y", 4), ("z", 2)]).unwrap()
    }

    #[test]
    fn full_view_matches_shape_indexing() {
        let shape = pod();
        let view = MeshView::full(shape);
        assert_eq!(view.num_chips(), 32);
        for i in 0..shape.num_chips() {
            let c = shape.coord_at(i).unwrap();
            assert_eq!(view.chip_at(c).unwrap(), ChipId(i));
            assert_eq!(view.coord_of(ChipId(i)), Some(c));
        }
        assert_eq!(view.chips(), (0..32).map(ChipId).collect::<Vec<_>>());
    }

    #[test]
    fn select_fixes_an_axis() {
        let view = MeshView::full(pod()).select(AxisName::Z, 1).unwrap();
        assert_eq!(view.rank(), 2);
        assert_eq!(view.num_chips(), 16);
        // z has stride 1 in a 4x4x2 pod, so z = 1 chips are the odd ids.
        assert!(view.chips().iter().all(|c| c.index() % 2 == 1));
        assert!(matches!(
            MeshView::full(pod()).select(AxisName::Z, 2),
            Err(MeshError::CoordOutOfRange { .. })
        ));
    }

    #[test]
    fn slice_takes_a_window() {
        let view = MeshView::full(pod()).slice(AxisName::X, 1, 3).unwrap();
        assert_eq!(view.axis_len(AxisName::X).unwrap(), 2);
        assert_eq!(view.num_chips(), 16);
        // x strides by 8; the window starts at physical x = 1.
        assert_eq!(
            view.chip_at(Coord::nd(&[0, 0, 0]).unwrap()).unwrap(),
            ChipId(8)
        );
        assert!(view.slice(AxisName::X, 1, 1).is_err());
        assert!(view.slice(AxisName::X, 0, 3).is_err());
    }

    #[test]
    fn permute_and_transpose_preserve_chip_sets() {
        let view = MeshView::full(pod());
        let permuted = view
            .permute(&[AxisName::Z, AxisName::X, AxisName::Y])
            .unwrap();
        let mut a = view.chips();
        let mut b = permuted.chips();
        assert_ne!(a, b, "order changes");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "chip set is invariant");
        let t = view.transpose();
        assert_eq!(t.axis_names(), vec![AxisName::Z, AxisName::Y, AxisName::X]);
        assert!(view
            .permute(&[AxisName::X, AxisName::X, AxisName::Y])
            .is_err());
    }

    #[test]
    fn flatten_folds_row_major_and_split_inverts() {
        let view = MeshView::full(pod());
        let folded = view
            .flatten(&[AxisName::X, AxisName::Z], AxisName::W)
            .unwrap();
        assert_eq!(folded.rank(), 2);
        assert_eq!(folded.axis_len(AxisName::W).unwrap(), 8);
        // Fold order is row-major over (x, z): w = x * 2 + z.
        for x in 0..4 {
            for z in 0..2 {
                for y in 0..4 {
                    let via_fold = folded.chip_at(Coord::nd(&[x * 2 + z, y]).unwrap()).unwrap();
                    let direct = view.chip_at(Coord::nd(&[x, y, z]).unwrap()).unwrap();
                    assert_eq!(via_fold, direct);
                }
            }
        }
        let back = folded
            .split(AxisName::W, &[(AxisName::X, 4), (AxisName::Z, 2)])
            .unwrap();
        let reordered = view
            .permute(&[AxisName::X, AxisName::Z, AxisName::Y])
            .unwrap();
        assert_eq!(back.chips(), reordered.chips(), "flatten ∘ split == id");
    }

    #[test]
    fn split_rejects_bad_factorings() {
        let view = MeshView::full(MeshShape::new(4, 4));
        assert!(matches!(
            view.split(AxisName::X, &[(AxisName::Z, 3), (AxisName::W, 2)]),
            Err(MeshError::SplitSizeMismatch { .. })
        ));
        assert!(matches!(
            view.split(AxisName::X, &[(AxisName::Y, 2), (AxisName::Z, 2)]),
            Err(MeshError::DuplicateAxis { .. })
        ));
        // Splitting against the grain of a fold is not separable: fold
        // (x, z) of the pod, then carve a window that straddles the fold
        // boundary — the surviving index pattern no longer factors.
        let folded = MeshView::full(pod())
            .flatten(&[AxisName::X, AxisName::Z], AxisName::W)
            .unwrap();
        let window = folded.slice(AxisName::W, 1, 7).unwrap();
        assert!(matches!(
            window.split(AxisName::W, &[(AxisName::Z, 2), (AxisName::X, 3)]),
            Err(MeshError::NotSeparable { .. })
        ));
        // A with-the-grain regrouping of the same fold stays exact.
        assert!(folded
            .split(AxisName::W, &[(AxisName::Z, 2), (AxisName::X, 4)])
            .is_ok());
    }

    #[test]
    fn rings_along_each_axis_partition_the_view() {
        let view = MeshView::full(pod());
        for name in [AxisName::X, AxisName::Y, AxisName::Z] {
            let rings = view.ring_along(name).unwrap();
            let expect_len = view.axis_len(name).unwrap();
            assert_eq!(rings.len(), 32 / expect_len);
            let mut all: Vec<ChipId> = rings
                .iter()
                .flat_map(|r| r.members().iter().copied())
                .collect();
            assert!(rings.iter().all(|r| r.len() == expect_len));
            all.sort_unstable();
            assert_eq!(all, (0..32).map(ChipId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn native_ring_hops_are_direct_links() {
        let view = MeshView::full(pod());
        let hops = view.ring_hops(AxisName::X).unwrap();
        for ring in &hops {
            assert_eq!(ring.len(), 4);
            for (i, hop) in ring.iter().enumerate() {
                match &hop.link {
                    HopLink::Direct {
                        axis,
                        forward,
                        wraps,
                    } => {
                        assert_eq!(*axis, AxisName::X);
                        assert!(*forward);
                        assert_eq!(*wraps, i == ring.len() - 1);
                    }
                    other => panic!("native hop should be direct, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn flattened_ring_hops_mix_direct_and_turns() {
        // Fold z into x: the long ring advances along z, then turns to the
        // next x row.
        let folded = MeshView::full(pod())
            .flatten(&[AxisName::X, AxisName::Z], AxisName::W)
            .unwrap();
        let hops = folded.ring_hops(AxisName::W).unwrap();
        for ring in &hops {
            assert_eq!(ring.len(), 8);
            let direct = ring
                .iter()
                .filter(|h| matches!(h.link, HopLink::Direct { .. }))
                .count();
            let turns = ring
                .iter()
                .filter(|h| matches!(h.link, HopLink::Route { .. }))
                .count();
            assert!(direct > 0 && turns > 0, "a fold has both hop kinds");
            assert!(ring.iter().all(|h| h.link.link_count() >= 1));
        }
    }

    #[test]
    fn planes_enumerate_orientations_and_offsets() {
        let planes = MeshView::full(pod()).planes();
        // 3 ordered axis pairs * 2 orientations = 6; fixed coords: z has 2,
        // y has 4, x has 4 → 2+2+4+4+4+4 ... per pair: (x,y): z in 0..2 → 2
        // each orientation; (x,z): y in 0..4; (y,z): x in 0..4.
        assert_eq!(planes.len(), 2 * (2 + 4 + 4));
        // Every plane resolves to distinct physical chips.
        for p in &planes {
            let mut chips = p.view.chips();
            chips.sort_unstable();
            chips.dedup();
            assert_eq!(chips.len(), p.view.num_chips());
        }
        // A rank-2 mesh yields its two orientations.
        let flat = MeshView::full(MeshShape::new(4, 2)).planes();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[0].view.num_chips(), 8);
    }

    #[test]
    fn plane_as_torus_relabels_densely() {
        let plane = MeshView::full(pod()).select(AxisName::Z, 1).unwrap();
        let (torus, mapping) = plane.as_torus2d().unwrap();
        assert_eq!((torus.rows(), torus.cols()), (4, 4));
        assert_eq!(mapping.len(), 16);
        for logical in torus.chips() {
            let coord = torus.coord_of(logical);
            let physical = plane.chip_at(Coord::new(coord.row(), coord.col())).unwrap();
            assert_eq!(mapping[logical.index()], physical);
        }
        assert!(matches!(
            MeshView::full(pod()).as_torus2d(),
            Err(MeshError::NotRank2 { got: 3 })
        ));
    }
}
