//! Property-based tests for the torus topology and the N-D view algebra.

use meshslice_mesh::{
    AxisName, ChipId, CommAxis, Coord, LinkDir, MeshShape, MeshView, Torus2d, MAX_AXES,
};
use proptest::prelude::*;

fn mesh_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..9, 1usize..9)
}

/// Random N-D axis sizes: rank 1..=MAX_AXES, each axis 1..=4 chips.
fn nd_sizes() -> impl Strategy<Value = Vec<usize>> {
    (
        1usize..=MAX_AXES,
        (1usize..5, 1usize..5, 1usize..5, 1usize..5),
    )
        .prop_map(|(rank, (a, b, c, d))| [a, b, c, d][..rank].to_vec())
}

proptest! {
    #[test]
    fn chip_ids_and_coords_are_bijective((r, c) in mesh_dims()) {
        let mesh = Torus2d::new(r, c);
        for chip in mesh.chips() {
            prop_assert_eq!(mesh.chip_at(mesh.coord_of(chip)), chip);
        }
        for i in 0..r {
            for j in 0..c {
                let coord = Coord::new(i, j);
                prop_assert_eq!(mesh.coord_of(mesh.chip_at(coord)), coord);
            }
        }
    }

    #[test]
    fn walking_a_full_ring_returns_home(
        (r, c) in mesh_dims(),
        dir_idx in 0usize..4,
    ) {
        let mesh = Torus2d::new(r, c);
        let dir = LinkDir::ALL[dir_idx];
        let steps = match dir.axis() {
            CommAxis::InterRow => r,
            CommAxis::InterCol => c,
        };
        for chip in mesh.chips() {
            let mut cur = mesh.coord_of(chip);
            for _ in 0..steps {
                cur = mesh.neighbor(cur, dir);
            }
            prop_assert_eq!(cur, mesh.coord_of(chip));
        }
    }

    #[test]
    fn opposite_directions_cancel((r, c) in mesh_dims(), chip in 0usize..64) {
        let mesh = Torus2d::new(r, c);
        let chip = ChipId(chip % mesh.num_chips());
        let coord = mesh.coord_of(chip);
        for dir in LinkDir::ALL {
            prop_assert_eq!(mesh.neighbor(mesh.neighbor(coord, dir), dir.opposite()), coord);
        }
    }

    #[test]
    fn rings_partition_chips_and_follow_links((r, c) in mesh_dims()) {
        let mesh = Torus2d::new(r, c);
        for axis in [CommAxis::InterRow, CommAxis::InterCol] {
            let rings = mesh.rings(axis);
            let mut seen: Vec<ChipId> =
                rings.iter().flat_map(|r| r.members().iter().copied()).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, mesh.chips().collect::<Vec<_>>());
            for ring in rings {
                for &chip in ring.members() {
                    prop_assert_eq!(
                        ring.next(chip),
                        mesh.neighbor_chip(chip, axis.forward_link())
                    );
                    prop_assert_eq!(ring.prev(ring.next(chip)), chip);
                }
            }
        }
    }

    #[test]
    fn factorizations_multiply_back(n in 1usize..2049) {
        for shape in MeshShape::factorizations(n) {
            prop_assert_eq!(shape.num_chips(), n);
            prop_assert_eq!(shape.transposed().transposed(), shape);
        }
        // A square shape exists iff n is a perfect square.
        let root = (n as f64).sqrt().round() as usize;
        prop_assert_eq!(MeshShape::square(n).is_some(), root * root == n);
    }

    #[test]
    fn ring_positions_are_consistent((r, c) in mesh_dims(), steps in 0usize..20) {
        let mesh = Torus2d::new(r, c);
        let ring = mesh.ring_through(Coord::new(0, 0), CommAxis::InterRow);
        let start = ring.members()[0];
        let direct = ring.step_from(start, steps);
        let mut walked = start;
        for _ in 0..steps {
            walked = ring.next(walked);
        }
        prop_assert_eq!(direct, walked);
    }

    #[test]
    fn nd_index_and_coord_round_trip(sizes in nd_sizes()) {
        let shape = MeshShape::from_sizes(&sizes).unwrap();
        prop_assert_eq!(shape.num_chips(), sizes.iter().product::<usize>());
        for idx in 0..shape.num_chips() {
            let coord = shape.coord_at(idx).unwrap();
            prop_assert_eq!(coord.rank(), shape.rank());
            for (i, axis) in shape.axes().iter().enumerate() {
                prop_assert!(coord.get(i) < axis.size());
            }
            prop_assert_eq!(shape.index_of(coord).unwrap(), idx);
        }
        // Out-of-range lookups are typed errors, not panics.
        prop_assert!(shape.coord_at(shape.num_chips()).is_err());
    }

    #[test]
    fn flatten_then_split_is_identity(sizes in nd_sizes()) {
        let shape = MeshShape::from_sizes(&sizes).unwrap();
        let full = MeshView::full(shape);
        let names = full.axis_names();
        // Fold everything into one logical ring, then factor it back.
        let folded = full.flatten(&names, AxisName::new("fold").unwrap()).unwrap();
        prop_assert_eq!(folded.rank(), 1);
        prop_assert_eq!(folded.chips(), full.chips());
        let factors: Vec<(AxisName, usize)> = names
            .iter()
            .zip(&sizes)
            .map(|(&n, &s)| (n, s))
            .collect();
        let back = folded.split(AxisName::new("fold").unwrap(), &factors).unwrap();
        prop_assert_eq!(back.axis_names(), names);
        prop_assert_eq!(back.shape(), shape);
        prop_assert_eq!(back.chips(), full.chips());
    }

    #[test]
    fn permute_preserves_the_chip_set(sizes in nd_sizes(), rot in 0usize..4) {
        let shape = MeshShape::from_sizes(&sizes).unwrap();
        let full = MeshView::full(shape);
        let mut order = full.axis_names();
        let shift = rot % order.len();
        order.rotate_left(shift);
        let permuted = full.permute(&order).unwrap();
        prop_assert_eq!(permuted.axis_names(), order);
        let mut got = permuted.chips();
        got.sort_unstable();
        let mut want = full.chips();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Permuting back restores the original view order exactly.
        let back = permuted.permute(&full.axis_names()).unwrap();
        prop_assert_eq!(back.chips(), full.chips());
    }

    #[test]
    fn nd_factorizations_are_complete_and_duplicate_free(n in 1usize..129) {
        // Rank 2 degenerates to the historical 2D enumeration.
        let d2 = MeshShape::factorizations_nd(n, 2).unwrap();
        prop_assert_eq!(d2, MeshShape::factorizations(n));
        // Rank 3: complete (every ordered triple), duplicate-free.
        let d3 = MeshShape::factorizations_nd(n, 3).unwrap();
        let mut expected = 0usize;
        for a in 1..=n {
            if n % a != 0 { continue; }
            for b in 1..=n / a {
                if (n / a) % b == 0 { expected += 1; }
            }
        }
        prop_assert_eq!(d3.len(), expected);
        for shape in &d3 {
            prop_assert_eq!(shape.rank(), 3);
            prop_assert_eq!(shape.num_chips(), n);
        }
        let mut dedup = d3.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), d3.len());
    }
}
