//! Property-based tests for the torus topology.

use meshslice_mesh::{ChipId, CommAxis, Coord, LinkDir, MeshShape, Torus2d};
use proptest::prelude::*;

fn mesh_dims() -> impl Strategy<Value = (usize, usize)> {
    (1usize..9, 1usize..9)
}

proptest! {
    #[test]
    fn chip_ids_and_coords_are_bijective((r, c) in mesh_dims()) {
        let mesh = Torus2d::new(r, c);
        for chip in mesh.chips() {
            prop_assert_eq!(mesh.chip_at(mesh.coord_of(chip)), chip);
        }
        for i in 0..r {
            for j in 0..c {
                let coord = Coord::new(i, j);
                prop_assert_eq!(mesh.coord_of(mesh.chip_at(coord)), coord);
            }
        }
    }

    #[test]
    fn walking_a_full_ring_returns_home(
        (r, c) in mesh_dims(),
        dir_idx in 0usize..4,
    ) {
        let mesh = Torus2d::new(r, c);
        let dir = LinkDir::ALL[dir_idx];
        let steps = match dir.axis() {
            CommAxis::InterRow => r,
            CommAxis::InterCol => c,
        };
        for chip in mesh.chips() {
            let mut cur = mesh.coord_of(chip);
            for _ in 0..steps {
                cur = mesh.neighbor(cur, dir);
            }
            prop_assert_eq!(cur, mesh.coord_of(chip));
        }
    }

    #[test]
    fn opposite_directions_cancel((r, c) in mesh_dims(), chip in 0usize..64) {
        let mesh = Torus2d::new(r, c);
        let chip = ChipId(chip % mesh.num_chips());
        let coord = mesh.coord_of(chip);
        for dir in LinkDir::ALL {
            prop_assert_eq!(mesh.neighbor(mesh.neighbor(coord, dir), dir.opposite()), coord);
        }
    }

    #[test]
    fn rings_partition_chips_and_follow_links((r, c) in mesh_dims()) {
        let mesh = Torus2d::new(r, c);
        for axis in [CommAxis::InterRow, CommAxis::InterCol] {
            let rings = mesh.rings(axis);
            let mut seen: Vec<ChipId> =
                rings.iter().flat_map(|r| r.members().iter().copied()).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, mesh.chips().collect::<Vec<_>>());
            for ring in rings {
                for &chip in ring.members() {
                    prop_assert_eq!(
                        ring.next(chip),
                        mesh.neighbor_chip(chip, axis.forward_link())
                    );
                    prop_assert_eq!(ring.prev(ring.next(chip)), chip);
                }
            }
        }
    }

    #[test]
    fn factorizations_multiply_back(n in 1usize..2049) {
        for shape in MeshShape::factorizations(n) {
            prop_assert_eq!(shape.num_chips(), n);
            prop_assert_eq!(shape.transposed().transposed(), shape);
        }
        // A square shape exists iff n is a perfect square.
        let root = (n as f64).sqrt().round() as usize;
        prop_assert_eq!(MeshShape::square(n).is_some(), root * root == n);
    }

    #[test]
    fn ring_positions_are_consistent((r, c) in mesh_dims(), steps in 0usize..20) {
        let mesh = Torus2d::new(r, c);
        let ring = mesh.ring_through(Coord::new(0, 0), CommAxis::InterRow);
        let start = ring.members()[0];
        let direct = ring.step_from(start, steps);
        let mut walked = start;
        for _ in 0..steps {
            walked = ring.next(walked);
        }
        prop_assert_eq!(direct, walked);
    }
}
