//! A vendored, dependency-free subset of the `proptest` API.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the slice of `proptest` the test suites actually use is implemented
//! here and wired in via Cargo dependency renaming (`proptest = { path =
//! "crates/proptest-shim", package = "meshslice-proptest-shim" }`). Test
//! files keep writing `use proptest::prelude::*` unchanged.
//!
//! Differences from upstream, by design:
//!
//! - **Deterministic**: every case is derived from a hash of the test's
//!   module path and name plus the case index, so a failure reproduces
//!   on every run and in CI, with no persistence files.
//! - **No shrinking**: a failing case reports the case index; since
//!   generation is deterministic the inputs can be recovered by
//!   re-running.
//! - **Smaller combinator set**: ranges, tuples, [`Just`], [`any`],
//!   [`prop_oneof!`], and function-returning-`impl Strategy` patterns —
//!   exactly what the suites use.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is interpreted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion, carrying its rendered message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a rendered failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic per-case generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the generator for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the fully-qualified test name, mixed with the index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        // One warm-up step so near-identical seeds decorrelate.
        rng.next_u64();
        rng
    }

    /// Returns the next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

/// A source of values for one property argument.
///
/// Unlike upstream proptest there is no value tree: strategies draw a
/// concrete value directly, and reproduction relies on deterministic
/// seeding rather than shrinking.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`, like upstream `Strategy::prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        (**self).pick(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning many magnitudes, occasionally negative.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * unit * 2f64.powi(exp)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the entire domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice between boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].pick(rng)
    }
}

/// Boxes a strategy, for heterogeneous collections ([`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniformly picks one of several strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declares deterministic property tests.
///
/// Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in (0u64..5, 0u64..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::pick(&($strategy), &mut __proptest_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at deterministic case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
}

/// Rough equivalent of `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..5, 1usize..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Range strategies stay within bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in 1u64..512) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..512).contains(&y));
        }

        #[test]
        fn tuples_and_helpers(
            (a, b) in pair(),
            flag in prop_oneof![Just(true), Just(false)],
            seed in any::<u64>(),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(flag, flag);
            prop_assert_eq!(seed.wrapping_add(1).wrapping_sub(1), seed);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("mod::test", 3);
        let mut b = crate::TestRng::for_case("mod::test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("mod::test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at deterministic case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
