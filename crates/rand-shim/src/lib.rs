//! A vendored, dependency-free subset of the `rand` crate API.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the handful of `rand` features the project needs are implemented
//! here and wired in via Cargo dependency renaming (`rand = { path =
//! "crates/rand-shim", package = "meshslice-rand-shim" }`). Call sites
//! keep writing `use rand::prelude::*` unchanged.
//!
//! The generators are xoshiro256++ (seeded through SplitMix64), which is
//! the same family `rand`'s `SmallRng` uses. Everything here is fully
//! deterministic given a seed, which is exactly the property the fault
//! model relies on.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used to expand small seeds into full generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 256-bit state.
#[derive(Clone, Debug)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_bytes(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256PlusPlus { s }
    }

    fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// Ranges (and other distributions) that can be sampled by an RNG.
pub trait SampleRange {
    /// The type of values produced.
    type Output;

    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a canonical "uniform over the whole domain" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw(rng: &mut dyn RngCore) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// The workspace's standard deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(Xoshiro256PlusPlus::from_bytes(seed))
        }
    }

    /// A small fast generator; identical construction to [`StdRng`] here.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256PlusPlus);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            SmallRng(Xoshiro256PlusPlus::from_bytes(seed))
        }
    }
}

/// Rough equivalent of `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use rngs::{SmallRng, StdRng};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_draws_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // The mean of 4096 uniform draws should be near 0.5.
        assert!((sum / 4096.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..4096).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 4096.0 - 0.25).abs() < 0.05);
    }
}
