//! Checkpoint/restart recovery for MeshSlice training runs.
//!
//! `meshslice-faults` draws *when* chips and links die
//! ([`FailureSpec`]); the sim engine models
//! *how* a run aborts (freeze → stall → neighbor-sync watchdog →
//! [`AbortInfo`](meshslice_sim::AbortInfo)). This crate closes the loop:
//!
//! - [`simulate_recovery`] walks a whole training run against a sampled
//!   [`FailureDraw`], charging checkpoint writes, detection latency,
//!   restore time, and replayed lost work, and continuing on the
//!   degraded torus (rings routed around the dead chip) after the first
//!   failure. The result is a [`RecoveryReport`] whose buckets account
//!   every wall-clock second and whose [`goodput`](RecoveryReport::goodput)
//!   is exactly 1 for a failure-free, checkpoint-free run.
//! - [`ResilientTuning`] extends the
//!   [`Autotuner`] with
//!   [`tune_resilient`](ResilientTuning::tune_resilient): jointly pick
//!   the (mesh, slice count) plan *and* the checkpoint interval that
//!   maximize expected goodput under a failure spec, reusing the
//!   deterministic parallel-sweep infrastructure (results are placed by
//!   input index, so plans are bit-identical at any thread count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use meshslice::autotuner::Autotuner;
use meshslice::checkpoint::{expected_goodput, young_daly_interval, CheckpointModel};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::par;
use meshslice_faults::{FailureDraw, FailureSpec};
use meshslice_mesh::{MeshShape, Torus2d};
use meshslice_sim::{degraded_torus_profile, Duration, RunScratch};

/// Default failure-detection latency, seconds: the neighbor-sync timeout
/// a survivor waits before declaring a silent peer dead.
pub const DEFAULT_DETECT_SECS: f64 = 1.0;

/// One training run's recovery parameters, all in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryParams {
    /// Nominal (failure-free) time of one training step.
    pub step_secs: f64,
    /// Step time on the degraded torus after a permanent failure (rings
    /// route around the dead chip at the extra-hop bandwidth cost); at
    /// least `step_secs`.
    pub degraded_step_secs: f64,
    /// Training steps the run must commit.
    pub num_steps: usize,
    /// Steps between checkpoints; `0` disables checkpointing (a failure
    /// then replays the run from the start).
    pub checkpoint_every: usize,
    /// Time to write one checkpoint.
    pub checkpoint_secs: f64,
    /// Time to restore model state from the last checkpoint.
    pub restore_secs: f64,
    /// Failure-detection latency charged per failure.
    pub detect_secs: f64,
}

impl RecoveryParams {
    fn validate(&self) {
        for (name, v) in [
            ("step time", self.step_secs),
            ("degraded step time", self.degraded_step_secs),
            ("checkpoint cost", self.checkpoint_secs),
            ("restore cost", self.restore_secs),
            ("detection latency", self.detect_secs),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} {v} must be finite and non-negative"
            );
        }
        assert!(
            self.degraded_step_secs >= self.step_secs,
            "degraded step time {} cannot beat the nominal step time {}",
            self.degraded_step_secs,
            self.step_secs
        );
    }
}

/// Wall-clock accounting of one recovered training run. Every second of
/// [`wall_clock`](Self::wall_clock) lands in exactly one bucket:
/// `useful + degraded_excess + checkpoint + lost + detection + restore`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Total wall-clock seconds from start to the last committed step.
    pub wall_clock: f64,
    /// Useful work: the committed steps at their *nominal* step time.
    pub useful: f64,
    /// Extra time the committed steps took because they ran on the
    /// degraded torus.
    pub degraded_excess: f64,
    /// Committed checkpoint writes.
    pub checkpoint: f64,
    /// Replayed work: everything between the last safe point and each
    /// failure (discarded steps, partial steps, torn checkpoint writes).
    pub lost: f64,
    /// Failure-detection latency across all failures.
    pub detection: f64,
    /// Checkpoint-restore time across all failures.
    pub restore: f64,
    /// Failures that actually interrupted the run.
    pub failures_hit: usize,
    /// Steps committed (always `num_steps` — the run retries to completion).
    pub steps: usize,
}

impl RecoveryReport {
    /// Useful compute divided by wall-clock; exactly 1 for a failure-free,
    /// checkpoint-free run, and in `[0, 1]` always.
    pub fn goodput(&self) -> f64 {
        if self.wall_clock <= 0.0 {
            return 1.0;
        }
        (self.useful / self.wall_clock).clamp(0.0, 1.0)
    }

    /// Wall-clock seconds that were not useful work.
    pub fn downtime(&self) -> f64 {
        (self.wall_clock - self.useful).max(0.0)
    }
}

/// Walks a training run of `params.num_steps` steps through the failures
/// of `draw`, modeling checkpoint/restart: a failure discards everything
/// since the last committed checkpoint, costs `detect_secs` to notice and
/// `restore_secs` to restore, and leaves the cluster on the degraded
/// torus (every later step runs at `degraded_step_secs`).
///
/// Failure instants that land while the run is already down (inside a
/// detection or restore window) are absorbed into the ongoing recovery —
/// the restored configuration replaces the one they targeted.
///
/// The walk is a pure function of its inputs: the same `(params, draw)`
/// produces a bit-identical report.
///
/// # Panics
///
/// Panics if a cost field of `params` is negative, NaN, or infinite, or
/// if `degraded_step_secs < step_secs`.
pub fn simulate_recovery(params: &RecoveryParams, draw: &FailureDraw) -> RecoveryReport {
    params.validate();
    let events = draw.event_times();
    let mut fi = 0usize;

    let mut wall = 0.0f64;
    let mut step = 0usize;
    let mut since_ckpt = 0usize;
    let mut ckpt_step = 0usize; // committed step count at the last safe point
    let mut last_safe = 0.0f64; // wall time of the last safe point
    let mut checkpoint = 0.0f64;
    let mut lost = 0.0f64;
    let mut detection = 0.0f64;
    let mut restore = 0.0f64;
    let mut degraded = false;
    let mut failures_hit = 0usize;

    // The next failure instant inside `[wall, wall + secs)`, consuming
    // (without counting) instants the run already slept through.
    let next_failure = |fi: &mut usize, wall: f64, secs: f64| -> Option<f64> {
        while let Some(&at) = events.get(*fi) {
            if at < wall {
                *fi += 1; // struck while already down: absorbed
                continue;
            }
            if at < wall + secs {
                *fi += 1;
                return Some(at);
            }
            return None;
        }
        None
    };

    while step < params.num_steps {
        let step_secs = if degraded {
            params.degraded_step_secs
        } else {
            params.step_secs
        };
        if let Some(at) = next_failure(&mut fi, wall, step_secs) {
            failures_hit += 1;
            lost += at - last_safe;
            wall = at + params.detect_secs + params.restore_secs;
            detection += params.detect_secs;
            restore += params.restore_secs;
            step = ckpt_step;
            since_ckpt = 0;
            degraded = true;
            last_safe = wall;
            continue;
        }
        wall += step_secs;
        step += 1;
        since_ckpt += 1;

        if params.checkpoint_every > 0
            && since_ckpt >= params.checkpoint_every
            && step < params.num_steps
        {
            if let Some(at) = next_failure(&mut fi, wall, params.checkpoint_secs) {
                // The write tore: the checkpoint never commits.
                failures_hit += 1;
                lost += at - last_safe;
                wall = at + params.detect_secs + params.restore_secs;
                detection += params.detect_secs;
                restore += params.restore_secs;
                step = ckpt_step;
                since_ckpt = 0;
                degraded = true;
                last_safe = wall;
                continue;
            }
            wall += params.checkpoint_secs;
            checkpoint += params.checkpoint_secs;
            since_ckpt = 0;
            ckpt_step = step;
            last_safe = wall;
        }
    }

    let useful = params.num_steps as f64 * params.step_secs;
    let committed = wall - checkpoint - detection - restore - lost;
    RecoveryReport {
        wall_clock: wall,
        useful,
        degraded_excess: (committed - useful).max(0.0),
        checkpoint,
        lost,
        detection,
        restore,
        failures_hit,
        steps: params.num_steps,
    }
}

/// The outage a serving replica takes when a chip dies mid-request:
/// detection (neighbor-sync watchdog), then a weights-only restore from a
/// checkpointed peer replica — no optimizer state, and the KV cache is
/// rebuilt by re-running prefill, not restored. After the outage the
/// replica keeps serving on the degraded torus (rings routed around the
/// dead chip), so fleet goodput drops but never hits zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingFailover {
    /// Failure-detection latency, seconds.
    pub detect_secs: f64,
    /// Weights-only restore from the checkpointed replica, seconds.
    pub restore_secs: f64,
}

impl ServingFailover {
    /// Prices the failover of `model` served on `mesh`:
    /// [`DEFAULT_DETECT_SECS`] of detection plus the
    /// [`CheckpointModel::for_inference`] restore time.
    pub fn for_model(model: &LlmConfig, mesh: MeshShape) -> ServingFailover {
        ServingFailover {
            detect_secs: DEFAULT_DETECT_SECS,
            restore_secs: CheckpointModel::for_inference(model, mesh).restore_secs(),
        }
    }

    /// Total wall-clock seconds the replica is out of service per failure.
    pub fn outage_secs(&self) -> f64 {
        self.detect_secs + self.restore_secs
    }
}

/// Repair/replacement time model for chaos-mode serving: after a chip
/// death's failover outage, the dead chip is swapped and the replica
/// returns to nominal pricing once the repair completes. Repair times
/// are exponential with the given mean; the *draw* itself is exposed as
/// a pure map from a uniform variate so callers (the serving chaos
/// scheduler) own the RNG stream and stay deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepairModel {
    /// Mean repair/replacement time, seconds.
    pub mean_secs: f64,
}

impl RepairModel {
    /// An exponential repair model with the given mean, seconds.
    pub fn exponential(mean_secs: f64) -> RepairModel {
        RepairModel { mean_secs }
    }

    /// Checks field ranges.
    ///
    /// # Errors
    ///
    /// Describes the invalid mean.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mean_secs.is_finite() && self.mean_secs > 0.0) {
            return Err(format!(
                "repair mean {} s must be finite and positive",
                self.mean_secs
            ));
        }
        Ok(())
    }

    /// Maps a uniform variate `u ∈ [0, 1)` to an exponential repair-time
    /// draw (inverse-CDF), seconds. Deterministic in `(self, u)`.
    pub fn repair_secs(&self, u: f64) -> f64 {
        -self.mean_secs * (1.0 - u.clamp(0.0, 1.0 - f64::EPSILON)).ln()
    }
}

/// One (mesh, slice count, checkpoint interval) candidate of
/// [`ResilientTuning::tune_resilient`], scored by expected goodput.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilientCandidate {
    /// The cluster mesh shape.
    pub mesh_shape: MeshShape,
    /// The requested slice count `S`.
    pub requested_s: usize,
    /// Failure-free makespan of one FC block.
    pub nominal_block: Duration,
    /// Block makespan on the degraded torus (one dead chip).
    pub degraded_block: Duration,
    /// The chosen checkpoint interval, seconds (infinite when failures
    /// are impossible: never checkpoint).
    pub checkpoint_interval_secs: f64,
    /// Per-checkpoint write time, seconds.
    pub checkpoint_secs: f64,
    /// Expected goodput of the candidate under the failure spec, in
    /// `(0, 1]`.
    pub expected_goodput: f64,
}

impl ResilientCandidate {
    /// Degraded-over-nominal block slowdown (`>= 1`).
    pub fn degraded_ratio(&self) -> f64 {
        self.degraded_block.as_secs() / self.nominal_block.as_secs()
    }
}

/// The ranked outcome of [`ResilientTuning::tune_resilient`].
#[derive(Clone, Debug, PartialEq)]
pub struct ResilientPlan {
    /// Every feasible candidate, best (highest expected goodput) first.
    pub candidates: Vec<ResilientCandidate>,
}

impl ResilientPlan {
    /// The goodput-maximizing candidate.
    pub fn best(&self) -> &ResilientCandidate {
        &self.candidates[0]
    }
}

/// Goodput-aware autotuning under a permanent-failure spec.
pub trait ResilientTuning {
    /// Jointly picks the (mesh shape, slice count) plan and the
    /// checkpoint interval maximizing expected goodput under `spec`,
    /// sweeping [`Autotuner::candidate_meshes`] × `s_values`.
    ///
    /// Per candidate: one fault-free and one degraded-torus block
    /// simulation (sharing schedules and run scratch, as
    /// [`Autotuner::simulate_block_draws`] does), a
    /// [`CheckpointModel`] priced from the candidate's own memory
    /// footprint, and a Young–Daly interval refined over a small
    /// neighborhood. The expected goodput folds in the probability-
    /// weighted degraded-mode slowdown over the spec's horizon.
    ///
    /// # Panics
    ///
    /// Panics if `spec` is invalid or no candidate is feasible.
    fn tune_resilient(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        s_values: &[usize],
        spec: &FailureSpec,
    ) -> ResilientPlan;

    /// [`tune_resilient`](Self::tune_resilient) with an explicit worker
    /// count. Candidates are evaluated independently and placed by input
    /// index, so the plan is bit-identical at any thread count.
    fn tune_resilient_threads(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        s_values: &[usize],
        spec: &FailureSpec,
        threads: usize,
    ) -> ResilientPlan;
}

impl ResilientTuning for Autotuner {
    fn tune_resilient(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        s_values: &[usize],
        spec: &FailureSpec,
    ) -> ResilientPlan {
        self.tune_resilient_threads(model, setup, chips, s_values, spec, par::threads())
    }

    fn tune_resilient_threads(
        &self,
        model: &LlmConfig,
        setup: TrainingSetup,
        chips: usize,
        s_values: &[usize],
        spec: &FailureSpec,
        threads: usize,
    ) -> ResilientPlan {
        if let Err(e) = spec.validate() {
            panic!("{e}");
        }
        let mut pairs = Vec::new();
        for mesh in Autotuner::candidate_meshes(chips) {
            for &s in s_values {
                pairs.push((mesh, s));
            }
        }
        let evaluated =
            par::parallel_map_with(threads, &pairs, RunScratch::new, |scratch, &(mesh, s)| {
                eval_resilient_candidate(self, model, setup, mesh, s, spec, scratch)
            });
        let mut candidates: Vec<ResilientCandidate> = evaluated.into_iter().flatten().collect();
        assert!(
            !candidates.is_empty(),
            "no feasible (mesh, slice count) candidate for this model"
        );
        candidates.sort_by(|a, b| {
            b.expected_goodput
                .total_cmp(&a.expected_goodput)
                .then(a.nominal_block.cmp(&b.nominal_block))
                .then(a.mesh_shape.rows().cmp(&b.mesh_shape.rows()))
                .then(a.requested_s.cmp(&b.requested_s))
        });
        ResilientPlan { candidates }
    }
}

/// The chip whose death the degraded-torus pricing assumes: a fixed,
/// parameter-free choice (the middle chip) keeps the sweep deterministic.
fn priced_dead_chip(num_chips: usize) -> usize {
    num_chips / 2
}

fn eval_resilient_candidate(
    tuner: &Autotuner,
    model: &LlmConfig,
    setup: TrainingSetup,
    mesh: MeshShape,
    s: usize,
    spec: &FailureSpec,
    scratch: &mut RunScratch,
) -> Option<ResilientCandidate> {
    let torus = Torus2d::from_shape(mesh);
    let degraded_profile = degraded_torus_profile(&torus, priced_dead_chip(mesh.num_chips()));
    let (nominal, per_draw) =
        tuner.simulate_block_draws(model, setup, mesh, s, &[degraded_profile], scratch)?;
    let degraded = per_draw[0];

    // A training step touches every transformer block once.
    let step_secs = nominal.as_secs() * model.layers as f64;
    let degraded_step_secs = degraded.as_secs() * model.layers as f64;

    let ckpt = CheckpointModel::for_training(model, setup, mesh, s);
    let c = ckpt.write_secs();
    let r = ckpt.restore_secs();
    let mtbf = spec.cluster_mtbf(mesh.num_chips());

    // Expected fraction of the horizon spent on the degraded torus: the
    // first failure arrives Exp(1/M), so over horizon H the mean degraded
    // fraction is 1 − (M/H)(1 − e^{−H/M}).
    let degraded_frac = if mtbf.is_infinite() {
        0.0
    } else {
        1.0 - (mtbf / spec.horizon) * (1.0 - (-spec.horizon / mtbf).exp())
    };
    let step_ratio = if step_secs > 0.0 {
        degraded_step_secs / step_secs
    } else {
        1.0
    };
    let degraded_slowdown = 1.0 + degraded_frac * (step_ratio - 1.0);

    // Young–Daly optimum, refined over a small neighborhood (the
    // first-order formula ignores detection/restore); intervals shorter
    // than one step are meaningless.
    let tau = young_daly_interval(c, mtbf).max(step_secs.max(f64::MIN_POSITIVE));
    let mut best_interval = tau;
    let mut best_goodput = f64::NEG_INFINITY;
    for factor in [0.5, 1.0, 2.0] {
        let interval = (tau * factor).max(step_secs.max(f64::MIN_POSITIVE));
        let g = expected_goodput(interval, c, r, DEFAULT_DETECT_SECS, mtbf) / degraded_slowdown;
        if g > best_goodput {
            best_goodput = g;
            best_interval = interval;
        }
    }

    Some(ResilientCandidate {
        mesh_shape: mesh,
        requested_s: s,
        nominal_block: nominal,
        degraded_block: degraded,
        checkpoint_interval_secs: best_interval,
        checkpoint_secs: c,
        expected_goodput: best_goodput,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RecoveryParams {
        RecoveryParams {
            step_secs: 1.0,
            degraded_step_secs: 1.25,
            num_steps: 100,
            checkpoint_every: 10,
            checkpoint_secs: 2.0,
            restore_secs: 2.0,
            detect_secs: 0.5,
        }
    }

    fn draw_at(times: &[f64]) -> FailureDraw {
        FailureDraw {
            chip_failures: times
                .iter()
                .map(|&at| meshslice_sim::ChipFailure { chip: 0, at })
                .collect(),
            link_failures: Vec::new(),
        }
    }

    #[test]
    fn failure_free_run_has_goodput_one_without_checkpoints() {
        let p = RecoveryParams {
            checkpoint_every: 0,
            ..params()
        };
        let r = simulate_recovery(&p, &FailureDraw::default());
        assert_eq!(r.wall_clock, 100.0);
        assert_eq!(r.goodput(), 1.0);
        assert_eq!(r.failures_hit, 0);
        assert_eq!(r.downtime(), 0.0);
    }

    #[test]
    fn checkpoints_alone_cost_their_write_time() {
        let r = simulate_recovery(&params(), &FailureDraw::default());
        // 100 steps, a checkpoint after every 10th except the last.
        assert_eq!(r.checkpoint, 9.0 * 2.0);
        assert_eq!(r.wall_clock, 100.0 + 18.0);
        assert!(r.goodput() < 1.0);
        assert_eq!(r.lost, 0.0);
    }

    #[test]
    fn a_failure_replays_work_since_the_last_checkpoint() {
        // Fail mid-step-16: steps 11..15 plus half a step are lost.
        let r = simulate_recovery(&params(), &draw_at(&[17.5]));
        assert_eq!(r.failures_hit, 1);
        // Last safe point: step 10 + 1 checkpoint = t 12.
        assert!((r.lost - 5.5).abs() < 1e-9, "lost {}", r.lost);
        assert_eq!(r.detection, 0.5);
        assert_eq!(r.restore, 2.0);
        assert!(r.goodput() < 1.0);
        // Replayed steps run degraded afterwards.
        assert!(r.degraded_excess > 0.0);
        assert_eq!(r.steps, 100);
    }

    #[test]
    fn buckets_account_every_wall_clock_second() {
        for times in [
            vec![],
            vec![17.5],
            vec![17.5, 40.0, 41.0],
            vec![0.0],
            vec![111.9],
        ] {
            let r = simulate_recovery(&params(), &draw_at(&times));
            let sum =
                r.useful + r.degraded_excess + r.checkpoint + r.lost + r.detection + r.restore;
            assert!(
                (sum - r.wall_clock).abs() < 1e-9,
                "buckets {sum} vs wall {} for {times:?}",
                r.wall_clock
            );
        }
    }

    #[test]
    fn failure_during_downtime_is_absorbed() {
        // Second failure strikes during the first one's restore window.
        let r = simulate_recovery(&params(), &draw_at(&[17.5, 18.0]));
        assert_eq!(r.failures_hit, 1);
    }

    #[test]
    fn without_checkpoints_a_failure_replays_from_the_start() {
        let p = RecoveryParams {
            checkpoint_every: 0,
            ..params()
        };
        let r = simulate_recovery(&p, &draw_at(&[50.0]));
        assert_eq!(r.lost, 50.0);
        assert_eq!(r.failures_hit, 1);
    }

    #[test]
    fn more_failures_mean_lower_goodput() {
        let one = simulate_recovery(&params(), &draw_at(&[30.0]));
        let three = simulate_recovery(&params(), &draw_at(&[30.0, 60.0, 90.0]));
        assert!(three.goodput() < one.goodput());
        assert!(one.goodput() < 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot beat the nominal")]
    fn degraded_faster_than_nominal_panics() {
        let p = RecoveryParams {
            degraded_step_secs: 0.5,
            ..params()
        };
        simulate_recovery(&p, &FailureDraw::default());
    }

    #[test]
    fn serving_failover_is_cheaper_than_a_training_restore() {
        let model = LlmConfig::gpt3();
        let mesh = MeshShape::new(4, 4);
        let failover = ServingFailover::for_model(&model, mesh);
        assert_eq!(failover.detect_secs, DEFAULT_DETECT_SECS);
        assert!(failover.restore_secs > 0.0);
        assert!(failover.outage_secs() > failover.restore_secs);
        let training =
            CheckpointModel::for_training(&model, TrainingSetup::weak_scaling(16), mesh, 8);
        assert!(failover.restore_secs < training.restore_secs());
    }

    #[test]
    fn tune_resilient_prefers_checkpointing_and_reports_sub_unity_goodput() {
        let model = LlmConfig {
            name: "Tiny".to_string(),
            hidden: 256,
            heads: 4,
            layers: 2,
            ffn_mult: 4,
        };
        let setup = TrainingSetup::weak_scaling(4);
        let tuner = Autotuner::new(meshslice_sim::SimConfig::tpu_v4());
        let spec = FailureSpec::chip_mtbf(3600.0, 86_400.0);
        let plan = tuner.tune_resilient(&model, setup, 4, &[1, 2], &spec);
        let best = plan.best();
        assert!(best.expected_goodput > 0.0 && best.expected_goodput < 1.0);
        assert!(best.checkpoint_interval_secs.is_finite());
        assert!(best.degraded_ratio() >= 1.0);

        // No failures -> goodput exactly 1, never checkpoint.
        let calm = tuner.tune_resilient(&model, setup, 4, &[1, 2], &FailureSpec::none());
        assert_eq!(calm.best().expected_goodput, 1.0);
        assert!(calm.best().checkpoint_interval_secs.is_infinite());
    }

    #[test]
    fn repair_model_draws_are_deterministic_and_mean_scaled() {
        let fast = RepairModel::exponential(10.0);
        let slow = RepairModel::exponential(100.0);
        fast.validate().expect("positive mean is valid");
        assert!(RepairModel::exponential(0.0).validate().is_err());
        assert!(RepairModel::exponential(f64::NAN).validate().is_err());
        // Inverse-CDF: u = 0 draws 0, the median draw is mean·ln 2, and
        // the same u under a 10x mean is exactly the 10x draw.
        assert_eq!(fast.repair_secs(0.0), 0.0);
        assert!((fast.repair_secs(0.5) - 10.0 * 2.0_f64.ln()).abs() < 1e-12);
        assert!((slow.repair_secs(0.7) - 10.0 * fast.repair_secs(0.7)).abs() < 1e-12);
        // u -> 1 stays finite (clamped off the singularity).
        assert!(fast.repair_secs(1.0).is_finite());
    }
}
