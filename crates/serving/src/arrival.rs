//! Seeded request-arrival processes.
//!
//! A serving fleet is driven by an *offered load*: requests arriving at
//! stochastic times with stochastic prompt and output lengths. This
//! module generates such traces deterministically from a seed, so every
//! fleet simulation — and therefore every latency percentile and
//! goodput figure — is reproducible bit-for-bit.
//!
//! Two load shapes are supported:
//!
//! - [`LoadShape::Steady`]: a homogeneous Poisson process at the mean
//!   rate (exponential inter-arrival times).
//! - [`LoadShape::Replay`]: a non-homogeneous Poisson process whose rate
//!   follows a piecewise-constant multiplier trace replayed cyclically —
//!   this is how bursty and diurnal workloads are expressed (and how
//!   `--trace FILE` replays an operator-supplied rate profile).
//!
//! Draw structure is parameter-independent, following the
//! `meshslice-faults` convention: every request consumes exactly three
//! uniform draws (inter-arrival, prompt length, output length) in a
//! fixed order, so changing only the rate or the token ranges rescales
//! the same underlying randomness instead of re-rolling it.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// One inference request of the offered-load trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Request {
    /// Position in the trace (0-based); also the dispatch key.
    pub id: usize,
    /// Arrival time, seconds from the start of the simulation.
    pub arrival_secs: f64,
    /// Prompt tokens to prefill.
    pub prompt_tokens: usize,
    /// Tokens to generate (including the first token produced by
    /// prefill).
    pub output_tokens: usize,
}

impl Request {
    /// Peak KV-cache tokens this request pins when fully generated.
    pub fn peak_kv_tokens(&self) -> usize {
        self.prompt_tokens + self.output_tokens
    }
}

/// The time profile of the offered load.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadShape {
    /// Homogeneous Poisson arrivals at the mean rate.
    Steady,
    /// Piecewise-constant rate multipliers replayed cyclically, one per
    /// [`ArrivalSpec::segment_secs`] window. Multipliers are normalized
    /// to mean 1 at generation time, so the configured QPS stays the
    /// *average* rate whatever the shape.
    Replay(Vec<f64>),
}

impl LoadShape {
    /// A built-in two-level burst profile: alternating quiet and 3x-hot
    /// segments.
    pub fn bursty() -> LoadShape {
        LoadShape::Replay(vec![0.5, 0.5, 3.0, 0.5, 0.5])
    }

    /// A built-in smooth day-shaped profile (trough, ramp, peak, ramp).
    pub fn diurnal() -> LoadShape {
        LoadShape::Replay(vec![0.4, 0.6, 1.0, 1.5, 1.9, 1.5, 1.0, 0.6])
    }
}

/// A seeded offered-load description; [`ArrivalSpec::generate`] draws a
/// concrete request trace from it.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalSpec {
    /// Mean arrival rate, requests per second.
    pub qps: f64,
    /// Rate profile over time.
    pub shape: LoadShape,
    /// Duration of one [`LoadShape::Replay`] multiplier segment, seconds.
    pub segment_secs: f64,
    /// Inclusive prompt-length range, tokens.
    pub prompt_range: (usize, usize),
    /// Inclusive output-length range, tokens.
    pub output_range: (usize, usize),
}

/// Default inclusive prompt-length range, tokens.
pub const DEFAULT_PROMPT_RANGE: (usize, usize) = (32, 1024);
/// Default inclusive output-length range, tokens.
pub const DEFAULT_OUTPUT_RANGE: (usize, usize) = (16, 256);
/// Default [`LoadShape::Replay`] segment length, seconds.
pub const DEFAULT_SEGMENT_SECS: f64 = 30.0;

impl ArrivalSpec {
    /// Steady Poisson arrivals at `qps` with the default token ranges.
    pub fn poisson(qps: f64) -> ArrivalSpec {
        ArrivalSpec {
            qps,
            shape: LoadShape::Steady,
            segment_secs: DEFAULT_SEGMENT_SECS,
            prompt_range: DEFAULT_PROMPT_RANGE,
            output_range: DEFAULT_OUTPUT_RANGE,
        }
    }

    /// Trace-replay arrivals averaging `qps`, cycling through
    /// `multipliers` (one per `segment_secs` window).
    pub fn replay(qps: f64, multipliers: Vec<f64>, segment_secs: f64) -> ArrivalSpec {
        ArrivalSpec {
            qps,
            shape: LoadShape::Replay(multipliers),
            segment_secs,
            ..ArrivalSpec::poisson(qps)
        }
    }

    /// Validates the spec, returning the first problem found.
    ///
    /// # Errors
    ///
    /// Describes the offending field: non-positive or non-finite rate,
    /// empty or non-positive multiplier trace, non-positive segment
    /// length, or an empty/inverted token range.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.qps.is_finite() && self.qps > 0.0) {
            return Err(format!("qps {} must be finite and positive", self.qps));
        }
        if let LoadShape::Replay(m) = &self.shape {
            if m.is_empty() {
                return Err("rate trace must have at least one segment".into());
            }
            if let Some(bad) = m.iter().find(|x| !(x.is_finite() && **x > 0.0)) {
                return Err(format!("rate multiplier {bad} must be finite and positive"));
            }
            if !(self.segment_secs.is_finite() && self.segment_secs > 0.0) {
                return Err(format!(
                    "segment length {} must be finite and positive",
                    self.segment_secs
                ));
            }
        }
        for (name, (lo, hi)) in [("prompt", self.prompt_range), ("output", self.output_range)] {
            if lo == 0 || hi < lo {
                return Err(format!("{name} token range [{lo}, {hi}] is empty"));
            }
        }
        Ok(())
    }

    /// Draws a trace of `n` requests, sorted by arrival time (ties
    /// impossible: inter-arrival draws exclude zero).
    ///
    /// Deterministic: the same `(spec, n, seed)` always yields the same
    /// trace, and the draw structure does not depend on the continuous
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not [`validate`](Self::validate).
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Request> {
        self.validate().expect("invalid arrival spec");
        let mut rng = StdRng::seed_from_u64(seed);
        // Normalize Replay multipliers to mean 1 so `qps` is the average
        // rate of any shape.
        let multipliers: Vec<f64> = match &self.shape {
            LoadShape::Steady => vec![1.0],
            LoadShape::Replay(m) => {
                let mean = m.iter().sum::<f64>() / m.len() as f64;
                m.iter().map(|x| x / mean).collect()
            }
        };
        let segment_secs = match self.shape {
            LoadShape::Steady => f64::INFINITY,
            LoadShape::Replay(_) => self.segment_secs,
        };

        let mut requests = Vec::with_capacity(n);
        let mut t = 0.0_f64;
        let mut segment = 0usize; // index into the cyclic multiplier trace
        let mut segment_end = segment_secs;
        for id in 0..n {
            // Unit-rate exponential, thinned through the piecewise-constant
            // rate by inverting the cumulative intensity segment by
            // segment: a draw of `e` units of "expected arrivals" at rate
            // r covers e / r seconds of wall-clock.
            let mut budget = -unit_open(&mut rng).ln();
            loop {
                let rate = self.qps * multipliers[segment % multipliers.len()];
                let dt = budget / rate;
                if t + dt <= segment_end {
                    t += dt;
                    break;
                }
                budget -= (segment_end - t) * rate;
                t = segment_end;
                segment += 1;
                segment_end += segment_secs;
            }
            let prompt_tokens = range_draw(&mut rng, self.prompt_range);
            let output_tokens = range_draw(&mut rng, self.output_range);
            requests.push(Request {
                id,
                arrival_secs: t,
                prompt_tokens,
                output_tokens,
            });
        }
        requests
    }
}

/// A uniform draw in the open interval `(0, 1)` — the `meshslice-faults`
/// idiom, safe to pass to `ln()`.
fn unit_open(rng: &mut StdRng) -> f64 {
    loop {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

/// A uniform integer draw in the inclusive range.
fn range_draw(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    let span = (hi - lo + 1) as u64;
    lo + (rng.next_u64() % span) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let spec = ArrivalSpec::poisson(10.0);
        assert_eq!(spec.generate(100, 7), spec.generate(100, 7));
        assert_ne!(spec.generate(100, 7), spec.generate(100, 8));
    }

    #[test]
    fn arrivals_are_sorted_and_lengths_in_range() {
        let spec = ArrivalSpec::poisson(25.0);
        let trace = spec.generate(500, 3);
        for w in trace.windows(2) {
            assert!(w[0].arrival_secs < w[1].arrival_secs);
        }
        for r in &trace {
            assert!((32..=1024).contains(&r.prompt_tokens));
            assert!((16..=256).contains(&r.output_tokens));
        }
    }

    #[test]
    fn mean_rate_is_respected() {
        let spec = ArrivalSpec::poisson(40.0);
        let trace = spec.generate(4000, 11);
        let rate = trace.len() as f64 / trace.last().unwrap().arrival_secs;
        assert!((rate - 40.0).abs() / 40.0 < 0.1, "rate {rate}");
    }

    #[test]
    fn replay_normalizes_to_the_same_mean_rate() {
        let steady = ArrivalSpec::poisson(40.0).generate(4000, 11);
        // Short segments so the ~100 s trace spans many whole cycles and
        // the partial final cycle cannot bias the average.
        let diurnal = ArrivalSpec {
            shape: LoadShape::diurnal(),
            segment_secs: 2.0,
            ..ArrivalSpec::poisson(40.0)
        }
        .generate(4000, 11);
        let r_s = steady.len() as f64 / steady.last().unwrap().arrival_secs;
        let r_d = diurnal.len() as f64 / diurnal.last().unwrap().arrival_secs;
        assert!((r_s - r_d).abs() / r_s < 0.1, "{r_s} vs {r_d}");
    }

    #[test]
    fn bursty_trace_concentrates_arrivals_in_hot_segments() {
        let spec = ArrivalSpec {
            shape: LoadShape::bursty(),
            segment_secs: 10.0,
            ..ArrivalSpec::poisson(20.0)
        };
        let trace = spec.generate(2000, 5);
        // Hot segment (index 2 of 5, 3x rate) vs quiet (index 0, 0.5x).
        let cycle = 50.0;
        let in_segment = |r: &Request, k: usize| {
            let phase = r.arrival_secs % cycle;
            phase >= 10.0 * k as f64 && phase < 10.0 * (k + 1) as f64
        };
        let hot = trace.iter().filter(|r| in_segment(r, 2)).count();
        let quiet = trace.iter().filter(|r| in_segment(r, 0)).count();
        assert!(hot > 3 * quiet, "hot {hot} vs quiet {quiet}");
    }

    #[test]
    fn rate_only_rescales_the_draws() {
        // Parameter independence: doubling the rate halves every
        // inter-arrival gap but preserves token lengths draw-for-draw.
        let slow = ArrivalSpec::poisson(10.0).generate(50, 9);
        let fast = ArrivalSpec::poisson(20.0).generate(50, 9);
        for (a, b) in slow.iter().zip(&fast) {
            assert_eq!(a.prompt_tokens, b.prompt_tokens);
            assert_eq!(a.output_tokens, b.output_tokens);
            assert!((a.arrival_secs - 2.0 * b.arrival_secs).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(ArrivalSpec::poisson(0.0).validate().is_err());
        assert!(ArrivalSpec::replay(10.0, vec![], 30.0).validate().is_err());
        assert!(ArrivalSpec::replay(10.0, vec![1.0, -1.0], 30.0)
            .validate()
            .is_err());
        assert!(ArrivalSpec::replay(10.0, vec![1.0], 0.0)
            .validate()
            .is_err());
        let mut bad = ArrivalSpec::poisson(1.0);
        bad.prompt_range = (8, 4);
        assert!(bad.validate().is_err());
    }
}
